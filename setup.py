"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access, so
PEP 660 editable installs (which must build a wheel) cannot run.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (or plain
``pip install -e .`` on modern toolchains) fall back to the classic
``setup.py develop`` code path.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
