"""Planar geometry kernel.

Pure-math helpers shared by the BQS structures, the baselines and the
evaluation harness.  Everything operates on plain ``(x, y)`` float pairs so
the module has no dependency on the data model; distances are Euclidean and
in the same unit as the inputs (metres throughout this library).

The paper's deviation metric (Section IV) is the distance from a point to
the *infinite line* through a segment's start and end points; the
point-to-line-segment variant (Section V-G) is also provided, as are the
convex-hull and wedge-clipping utilities used by the bound-validation tests.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

Vec2 = tuple[float, float]

__all__ = [
    "Vec2",
    "cross",
    "dot",
    "norm",
    "normalize_angle",
    "angle_of",
    "angle_diff",
    "rotate",
    "point_line_distance",
    "point_line_distance_origin",
    "point_segment_distance",
    "max_deviation_to_line",
    "max_deviation_to_segment",
    "convex_hull",
    "point_in_convex_polygon",
    "clip_polygon_halfplane",
    "rectangle_corners",
    "ray_direction",
    "wedge_box_polygon",
    "max_distance_to_line_origin",
    "min_distance_on_segment_to_line_origin",
]


def cross(a: Vec2, b: Vec2) -> float:
    """2-D cross product ``a × b`` (z-component)."""
    return a[0] * b[1] - a[1] * b[0]


def dot(a: Vec2, b: Vec2) -> float:
    """2-D dot product."""
    return a[0] * b[0] + a[1] * b[1]


def norm(a: Vec2) -> float:
    """Euclidean norm of a 2-vector."""
    return math.hypot(a[0], a[1])


def normalize_angle(theta: float) -> float:
    """Wrap an angle into ``[0, 2π)``."""
    wrapped = math.fmod(theta, 2.0 * math.pi)
    if wrapped < 0.0:
        wrapped += 2.0 * math.pi
    return wrapped


def angle_of(p: Vec2) -> float:
    """Polar angle of ``p`` in ``[0, 2π)``; 0 for the origin itself."""
    if p[0] == 0.0 and p[1] == 0.0:
        return 0.0
    return normalize_angle(math.atan2(p[1], p[0]))


def angle_diff(a: float, b: float) -> float:
    """Smallest absolute difference between two angles, in ``[0, π]``."""
    d = abs(math.fmod(a - b, 2.0 * math.pi))
    if d > math.pi:
        d = 2.0 * math.pi - d
    return d


def rotate(p: Vec2, theta: float) -> Vec2:
    """Rotate ``p`` counter-clockwise about the origin by ``theta`` radians."""
    c = math.cos(theta)
    s = math.sin(theta)
    return (p[0] * c - p[1] * s, p[0] * s + p[1] * c)


def point_line_distance(p: Vec2, a: Vec2, b: Vec2) -> float:
    """Distance from ``p`` to the infinite line through ``a`` and ``b``.

    Degenerates gracefully: when ``a == b`` the "line" collapses to a point
    and the point-to-point distance is returned, which matches how the paper
    treats zero-length path lines (the deviation of anything from a single
    location is its distance to that location).
    """
    ab = (b[0] - a[0], b[1] - a[1])
    ap = (p[0] - a[0], p[1] - a[1])
    denom = norm(ab)
    if denom == 0.0:
        return norm(ap)
    return abs(cross(ab, ap)) / denom


def point_line_distance_origin(p: Vec2, direction: Vec2) -> float:
    """Distance from ``p`` to the line through the origin along ``direction``.

    This is the hot path inside the BQS bound computation, where every path
    line passes through the (possibly rotated) segment origin.
    """
    denom = norm(direction)
    if denom == 0.0:
        return norm(p)
    return abs(cross(direction, p)) / denom


def point_segment_distance(p: Vec2, a: Vec2, b: Vec2) -> float:
    """Distance from ``p`` to the closed line segment ``ab``."""
    ab = (b[0] - a[0], b[1] - a[1])
    ap = (p[0] - a[0], p[1] - a[1])
    denom = dot(ab, ab)
    if denom == 0.0:
        return norm(ap)
    t = dot(ap, ab) / denom
    if t <= 0.0:
        return norm(ap)
    if t >= 1.0:
        return math.hypot(p[0] - b[0], p[1] - b[1])
    proj = (a[0] + t * ab[0], a[1] + t * ab[1])
    return math.hypot(p[0] - proj[0], p[1] - proj[1])


def max_deviation_to_line(
    points: Iterable[Vec2], a: Vec2, b: Vec2
) -> float:
    """Maximum point-to-line distance over ``points`` (0 for no points).

    This is the paper's deviation ``â(τ)`` for a segment whose interior
    points are ``points`` and whose compressed representation is the line
    through ``a`` and ``b``.
    """
    best = 0.0
    for p in points:
        d = point_line_distance(p, a, b)
        if d > best:
            best = d
    return best


def max_deviation_to_segment(
    points: Iterable[Vec2], a: Vec2, b: Vec2
) -> float:
    """Maximum point-to-line-segment distance over ``points``."""
    best = 0.0
    for p in points:
        d = point_segment_distance(p, a, b)
        if d > best:
            best = d
    return best


def convex_hull(points: Sequence[Vec2]) -> list[Vec2]:
    """Convex hull by Andrew's monotone chain, counter-clockwise.

    Collinear points on the hull boundary are dropped.  Returns the input
    for fewer than 3 distinct points.
    """
    pts = sorted(set((float(x), float(y)) for x, y in points))
    if len(pts) <= 2:
        return pts

    def half(chain_pts: Iterable[Vec2]) -> list[Vec2]:
        chain: list[Vec2] = []
        for p in chain_pts:
            while len(chain) >= 2:
                o, q = chain[-2], chain[-1]
                if cross((q[0] - o[0], q[1] - o[1]), (p[0] - o[0], p[1] - o[1])) <= 0:
                    chain.pop()
                else:
                    break
            chain.append(p)
        return chain

    lower = half(pts)
    upper = half(reversed(pts))
    return lower[:-1] + upper[:-1]


def point_in_convex_polygon(p: Vec2, polygon: Sequence[Vec2]) -> bool:
    """Whether ``p`` lies inside (or on) a counter-clockwise convex polygon.

    Degenerate polygons (fewer than 3 vertices) only contain their own
    vertices and the segment between them; that case is handled through the
    same cross-product test (collinearity plus a bounding check).
    """
    n = len(polygon)
    if n == 0:
        return False
    if n == 1:
        return p == polygon[0]
    if n == 2:
        a, b = polygon
        return point_segment_distance(p, a, b) <= 1e-12
    for i in range(n):
        a = polygon[i]
        b = polygon[(i + 1) % n]
        if cross((b[0] - a[0], b[1] - a[1]), (p[0] - a[0], p[1] - a[1])) < -1e-12:
            return False
    return True


def clip_polygon_halfplane(
    polygon: Sequence[Vec2], a: Vec2, b: Vec2
) -> list[Vec2]:
    """Clip a polygon to the half-plane left of the directed line ``a → b``.

    Sutherland–Hodgman single-edge step.  Used by the validation tooling to
    compute the exact box∩wedge region that Theorems 5.3–5.5 bound.
    """
    if not polygon:
        return []
    direction = (b[0] - a[0], b[1] - a[1])

    def side(p: Vec2) -> float:
        return cross(direction, (p[0] - a[0], p[1] - a[1]))

    out: list[Vec2] = []
    n = len(polygon)
    for i in range(n):
        cur = polygon[i]
        nxt = polygon[(i + 1) % n]
        cur_in = side(cur) >= -1e-12
        nxt_in = side(nxt) >= -1e-12
        if cur_in:
            out.append(cur)
        if cur_in != nxt_in:
            # Edge crosses the clip line: add the intersection point.
            s_cur = side(cur)
            s_nxt = side(nxt)
            t = s_cur / (s_cur - s_nxt)
            out.append(
                (
                    cur[0] + t * (nxt[0] - cur[0]),
                    cur[1] + t * (nxt[1] - cur[1]),
                )
            )
    return out


def rectangle_corners(
    min_x: float, min_y: float, max_x: float, max_y: float
) -> list[Vec2]:
    """The four corners of an axis-aligned rectangle, counter-clockwise."""
    return [
        (min_x, min_y),
        (max_x, min_y),
        (max_x, max_y),
        (min_x, max_y),
    ]


def ray_direction(theta: float) -> Vec2:
    """Unit direction vector of the ray from the origin at angle ``theta``."""
    return (math.cos(theta), math.sin(theta))


def wedge_box_polygon(
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    theta_lo: float,
    theta_hi: float,
) -> list[Vec2]:
    """The bounded area of one BQS quadrant: box ∩ wedge, about the origin.

    The wedge is the set of points whose polar angle lies in
    ``[theta_lo, theta_hi]``; the box is axis-aligned.  Both are expressed in
    anchor-relative coordinates (the anchor is the origin), matching how the
    Bounded Quadrant System keeps per-quadrant state.  The angular span must
    be at most π — always true inside a single quadrant, which spans π/2 —
    otherwise the two half-plane clips below would not describe the wedge.

    Every point recorded in the quadrant lies inside the returned convex
    polygon, so the maximum distance from any recorded point to a line
    through the origin is bounded by the maximum over the polygon's vertices
    (Theorems 5.3–5.5 of the paper).  Returns ``[]`` when box and wedge do
    not intersect (numerically possible with degenerate boxes).
    """
    poly: list[Vec2] = rectangle_corners(min_x, min_y, max_x, max_y)
    # Keep angle >= theta_lo: the half-plane to the left of origin -> lo ray.
    poly = clip_polygon_halfplane(poly, (0.0, 0.0), ray_direction(theta_lo))
    # Keep angle <= theta_hi: the half-plane to the left of hi ray -> origin.
    poly = clip_polygon_halfplane(poly, ray_direction(theta_hi), (0.0, 0.0))
    return poly


def max_distance_to_line_origin(
    points: Iterable[Vec2], direction: Vec2
) -> float:
    """Max distance from ``points`` to the origin line along ``direction``.

    This is the vertex scan used for both BQS bounds: applied to a bounded
    area polygon it yields the upper bound; applied to the quadrant's
    significant points (which are actual trajectory points) it yields the
    lower bound.
    """
    best = 0.0
    for p in points:
        d = point_line_distance_origin(p, direction)
        if d > best:
            best = d
    return best


def min_distance_on_segment_to_line_origin(
    a: Vec2, b: Vec2, direction: Vec2
) -> float:
    """Min distance from any point of segment ``ab`` to the origin line.

    Zero when the segment crosses the line.  A bounding-box edge is touched
    by at least one actual trajectory point, so this is a valid per-edge
    lower bound on the quadrant's maximum deviation.
    """
    denom = norm(direction)
    if denom == 0.0:
        return min(norm(a), norm(b))
    sa = cross(direction, a) / denom
    sb = cross(direction, b) / denom
    if (sa <= 0.0 <= sb) or (sb <= 0.0 <= sa):
        return 0.0
    return min(abs(sa), abs(sb))
