"""Planar geometry kernel.

Pure-math helpers shared by the BQS structures, the baselines and the
evaluation harness.  Everything operates on plain ``(x, y)`` float pairs so
the module has no dependency on the data model; distances are Euclidean and
in the same unit as the inputs (metres throughout this library).

The paper's deviation metric (Section IV) is the distance from a point to
the *infinite line* through a segment's start and end points; the
point-to-line-segment variant (Section V-G) is also provided, as are the
convex-hull and wedge-clipping utilities used by the bound-validation tests.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Sequence

Vec2 = tuple[float, float]

__all__ = [
    "Vec2",
    "cross",
    "dot",
    "norm",
    "normalize_angle",
    "angle_of",
    "angle_diff",
    "rotate",
    "point_line_distance",
    "point_line_distance_origin",
    "point_segment_distance",
    "segments_intersect",
    "segment_segment_distance",
    "segment_rect_distance",
    "max_deviation_to_line",
    "max_deviation_to_segment",
    "convex_hull",
    "IncrementalHull",
    "point_in_convex_polygon",
    "clip_polygon_halfplane",
    "rectangle_corners",
    "ray_direction",
    "wedge_box_polygon",
    "max_distance_to_line_origin",
    "max_abs_cross",
    "min_distance_on_segment_to_line_origin",
]


def cross(a: Vec2, b: Vec2) -> float:
    """2-D cross product ``a × b`` (z-component)."""
    return a[0] * b[1] - a[1] * b[0]


def dot(a: Vec2, b: Vec2) -> float:
    """2-D dot product."""
    return a[0] * b[0] + a[1] * b[1]


def norm(a: Vec2) -> float:
    """Euclidean norm of a 2-vector."""
    return math.hypot(a[0], a[1])


def normalize_angle(theta: float) -> float:
    """Wrap an angle into ``[0, 2π)``."""
    wrapped = math.fmod(theta, 2.0 * math.pi)
    if wrapped < 0.0:
        wrapped += 2.0 * math.pi
    return wrapped


def angle_of(p: Vec2) -> float:
    """Polar angle of ``p`` in ``[0, 2π)``; 0 for the origin itself."""
    if p[0] == 0.0 and p[1] == 0.0:
        return 0.0
    return normalize_angle(math.atan2(p[1], p[0]))


def angle_diff(a: float, b: float) -> float:
    """Smallest absolute difference between two angles, in ``[0, π]``."""
    d = abs(math.fmod(a - b, 2.0 * math.pi))
    if d > math.pi:
        d = 2.0 * math.pi - d
    return d


def rotate(p: Vec2, theta: float) -> Vec2:
    """Rotate ``p`` counter-clockwise about the origin by ``theta`` radians."""
    c = math.cos(theta)
    s = math.sin(theta)
    return (p[0] * c - p[1] * s, p[0] * s + p[1] * c)


def point_line_distance(p: Vec2, a: Vec2, b: Vec2) -> float:
    """Distance from ``p`` to the infinite line through ``a`` and ``b``.

    Degenerates gracefully: when ``a == b`` the "line" collapses to a point
    and the point-to-point distance is returned, which matches how the paper
    treats zero-length path lines (the deviation of anything from a single
    location is its distance to that location).
    """
    ab = (b[0] - a[0], b[1] - a[1])
    ap = (p[0] - a[0], p[1] - a[1])
    denom = norm(ab)
    if denom == 0.0:
        return norm(ap)
    return abs(cross(ab, ap)) / denom


def point_line_distance_origin(p: Vec2, direction: Vec2) -> float:
    """Distance from ``p`` to the line through the origin along ``direction``.

    This is the hot path inside the BQS bound computation, where every path
    line passes through the (possibly rotated) segment origin.
    """
    denom = norm(direction)
    if denom == 0.0:
        return norm(p)
    return abs(cross(direction, p)) / denom


def point_segment_distance(p: Vec2, a: Vec2, b: Vec2) -> float:
    """Distance from ``p`` to the closed line segment ``ab``."""
    ab = (b[0] - a[0], b[1] - a[1])
    ap = (p[0] - a[0], p[1] - a[1])
    denom = dot(ab, ab)
    if denom == 0.0:
        return norm(ap)
    t = dot(ap, ab) / denom
    if t <= 0.0:
        return norm(ap)
    if t >= 1.0:
        return math.hypot(p[0] - b[0], p[1] - b[1])
    proj = (a[0] + t * ab[0], a[1] + t * ab[1])
    return math.hypot(p[0] - proj[0], p[1] - proj[1])


def segments_intersect(a: Vec2, b: Vec2, c: Vec2, d: Vec2) -> bool:
    """Whether closed segments ``ab`` and ``cd`` share a point.

    The standard orientation test, with collinear overlap handled via
    bounding-interval checks — exact for the query layer's crossing tests
    because every orientation is a sign of a cross product.
    """
    d1 = cross((b[0] - a[0], b[1] - a[1]), (c[0] - a[0], c[1] - a[1]))
    d2 = cross((b[0] - a[0], b[1] - a[1]), (d[0] - a[0], d[1] - a[1]))
    d3 = cross((d[0] - c[0], d[1] - c[1]), (a[0] - c[0], a[1] - c[1]))
    d4 = cross((d[0] - c[0], d[1] - c[1]), (b[0] - c[0], b[1] - c[1]))
    if ((d1 > 0) != (d2 > 0) or d1 == 0 or d2 == 0) and (
        (d3 > 0) != (d4 > 0) or d3 == 0 or d4 == 0
    ):
        # Signs straddle (or touch) on both segments; rule out the
        # collinear-but-disjoint case with interval overlap.
        if d1 == 0 and d2 == 0 and d3 == 0 and d4 == 0:
            return (
                min(a[0], b[0]) <= max(c[0], d[0])
                and min(c[0], d[0]) <= max(a[0], b[0])
                and min(a[1], b[1]) <= max(c[1], d[1])
                and min(c[1], d[1]) <= max(a[1], b[1])
            )
        return True
    return False


def segment_segment_distance(a: Vec2, b: Vec2, c: Vec2, d: Vec2) -> float:
    """Minimum distance between closed segments ``ab`` and ``cd``.

    Zero when they intersect; otherwise the minimum is attained at an
    endpoint of one segment against the other, so four point-segment
    distances cover it.
    """
    if segments_intersect(a, b, c, d):
        return 0.0
    return min(
        point_segment_distance(a, c, d),
        point_segment_distance(b, c, d),
        point_segment_distance(c, a, b),
        point_segment_distance(d, a, b),
    )


def segment_rect_distance(
    a: Vec2,
    b: Vec2,
    x_min: float,
    y_min: float,
    x_max: float,
    y_max: float,
) -> float:
    """Minimum distance from closed segment ``ab`` to an axis-aligned
    rectangle (zero when they touch or the segment enters it).

    The workhorse of the ε-expanded range queries: a stored chord is
    within ε of a query rectangle iff this distance is ≤ ε.
    """
    # Inside (either endpoint) means contact; otherwise the minimum is
    # against one of the four rectangle edges.
    if x_min <= a[0] <= x_max and y_min <= a[1] <= y_max:
        return 0.0
    if x_min <= b[0] <= x_max and y_min <= b[1] <= y_max:
        return 0.0
    c00 = (x_min, y_min)
    c10 = (x_max, y_min)
    c11 = (x_max, y_max)
    c01 = (x_min, y_max)
    return min(
        segment_segment_distance(a, b, c00, c10),
        segment_segment_distance(a, b, c10, c11),
        segment_segment_distance(a, b, c11, c01),
        segment_segment_distance(a, b, c01, c00),
    )


def max_deviation_to_line(
    points: Iterable[Vec2], a: Vec2, b: Vec2
) -> float:
    """Maximum point-to-line distance over ``points`` (0 for no points).

    This is the paper's deviation ``â(τ)`` for a segment whose interior
    points are ``points`` and whose compressed representation is the line
    through ``a`` and ``b``.
    """
    best = 0.0
    for p in points:
        d = point_line_distance(p, a, b)
        if d > best:
            best = d
    return best


def max_deviation_to_segment(
    points: Iterable[Vec2], a: Vec2, b: Vec2
) -> float:
    """Maximum point-to-line-segment distance over ``points``."""
    best = 0.0
    for p in points:
        d = point_segment_distance(p, a, b)
        if d > best:
            best = d
    return best


def convex_hull(points: Sequence[Vec2]) -> list[Vec2]:
    """Convex hull by Andrew's monotone chain, counter-clockwise.

    Collinear points on the hull boundary are dropped.  Returns the input
    for fewer than 3 distinct points.
    """
    pts = sorted(set((float(x), float(y)) for x, y in points))
    if len(pts) <= 2:
        return pts

    def half(chain_pts: Iterable[Vec2]) -> list[Vec2]:
        chain: list[Vec2] = []
        for p in chain_pts:
            while len(chain) >= 2:
                o, q = chain[-2], chain[-1]
                if cross((q[0] - o[0], q[1] - o[1]), (p[0] - o[0], p[1] - o[1])) <= 0:
                    chain.pop()
                else:
                    break
            chain.append(p)
        return chain

    lower = half(pts)
    upper = half(reversed(pts))
    return lower[:-1] + upper[:-1]


class IncrementalHull:
    """Convex hull maintained under point insertion (semi-dynamic).

    The hull is stored as the two monotone chains of Andrew's algorithm,
    each sorted by ``(x, y)``.  Inserting a point locates its position with
    a binary search, rejects it in O(log h) when it falls inside the current
    hull, and otherwise splices it in and repairs convexity locally by
    popping dominated neighbours — the same pops the batch monotone chain
    would perform, so each point is inserted and removed at most once and
    insertion is amortized O(log h) comparisons (plus the list memmove).

    :meth:`vertices` reproduces :func:`convex_hull`'s output exactly — same
    vertex set, same counter-clockwise order, collinear points dropped — a
    correspondence the test suite cross-checks on random point sets.  The
    one exception is *near*-collinear input (points collinear in exact
    arithmetic but not as floats, e.g. GPS fixes along a straight road):
    there the two implementations may keep different boundary-grazing
    vertices, since at ULP scale the hull is ambiguous and insertion order
    matters.  Both remain valid hulls of the input, and the property BQS
    relies on — the max ``|cross|`` over vertices equals the max over all
    inserted points — holds either way (also under test).
    """

    __slots__ = ("_lower", "_upper")

    def __init__(self, points: Iterable[Vec2] = ()) -> None:
        self._lower: list[Vec2] = []
        self._upper: list[Vec2] = []
        for p in points:
            self.add(p)

    def __len__(self) -> int:
        n = len(self._lower)
        if n <= 1:
            return n
        # The chains share their first and last vertices (min and max point).
        return n + len(self._upper) - 2

    def clear(self) -> None:
        """Empty the hull, keeping the chain lists allocated."""
        self._lower.clear()
        self._upper.clear()

    @staticmethod
    def _insert(chain: list[Vec2], p: Vec2, orient: float) -> bool:
        """Insert ``p`` into one monotone chain; ``orient`` is +1 for the
        lower chain (interior triples turn left) and -1 for the upper.
        Returns False when ``p`` lies on or inside the chain."""
        i = bisect_left(chain, p)
        n = len(chain)
        if i < n and chain[i] == p:
            return False
        if 0 < i < n:
            a = chain[i - 1]
            b = chain[i]
            if orient * (
                (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0])
            ) >= 0.0:
                return False  # on or interior-side of the chain edge
        chain.insert(i, p)
        # Pop neighbours to the right of p that stopped being convex.
        while i + 2 < len(chain):
            a, b, c = chain[i], chain[i + 1], chain[i + 2]
            if orient * (
                (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
            ) <= 0.0:
                del chain[i + 1]
            else:
                break
        # Pop neighbours to the left of p likewise.
        while i >= 2:
            a, b, c = chain[i - 2], chain[i - 1], chain[i]
            if orient * (
                (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
            ) <= 0.0:
                del chain[i - 1]
                i -= 1
            else:
                break
        return True

    def add(self, p: Vec2) -> int:
        """Fold one point in; returns the net change in vertex count.

        The delta can be negative (one insertion may pop several dominated
        vertices) or zero even when the hull changed shape, so callers
        tracking memory should accumulate it rather than test it.
        """
        before = len(self)
        self._insert(self._lower, p, 1.0)
        self._insert(self._upper, p, -1.0)
        return len(self) - before

    def vertices(self) -> list[Vec2]:
        """Hull vertices, counter-clockwise, matching :func:`convex_hull`."""
        lower = self._lower
        if len(lower) <= 1:
            return list(lower)
        upper = self._upper
        out = lower[:-1]
        for i in range(len(upper) - 1, 0, -1):
            out.append(upper[i])
        return out

    def max_abs_cross(self, dx: float, dy: float) -> float:
        """``max |dx*y - dy*x|`` over the hull vertices (0 when empty).

        Dividing by ``hypot(dx, dy)`` turns this into the exact maximum
        distance from the hulled points to the origin line along
        ``(dx, dy)`` — the distance is convex in position, so its maximum
        over the original point set is attained at a hull vertex.  Keeping
        the division out of the loop lets callers compare against a
        pre-scaled tolerance.
        """
        best = 0.0
        for x, y in self._lower:
            c = dx * y - dy * x
            if c < 0.0:
                c = -c
            if c > best:
                best = c
        for x, y in self._upper:
            c = dx * y - dy * x
            if c < 0.0:
                c = -c
            if c > best:
                best = c
        return best


def point_in_convex_polygon(p: Vec2, polygon: Sequence[Vec2]) -> bool:
    """Whether ``p`` lies inside (or on) a counter-clockwise convex polygon.

    Degenerate polygons (fewer than 3 vertices) only contain their own
    vertices and the segment between them; that case is handled through the
    same cross-product test (collinearity plus a bounding check).
    """
    n = len(polygon)
    if n == 0:
        return False
    if n == 1:
        return p == polygon[0]
    if n == 2:
        a, b = polygon
        return point_segment_distance(p, a, b) <= 1e-12
    for i in range(n):
        a = polygon[i]
        b = polygon[(i + 1) % n]
        if cross((b[0] - a[0], b[1] - a[1]), (p[0] - a[0], p[1] - a[1])) < -1e-12:
            return False
    return True


def clip_polygon_halfplane(
    polygon: Sequence[Vec2], a: Vec2, b: Vec2
) -> list[Vec2]:
    """Clip a polygon to the half-plane left of the directed line ``a → b``.

    Sutherland–Hodgman single-edge step.  Used by the validation tooling to
    compute the exact box∩wedge region that Theorems 5.3–5.5 bound.
    """
    if not polygon:
        return []
    direction = (b[0] - a[0], b[1] - a[1])

    def side(p: Vec2) -> float:
        return cross(direction, (p[0] - a[0], p[1] - a[1]))

    out: list[Vec2] = []
    n = len(polygon)
    for i in range(n):
        cur = polygon[i]
        nxt = polygon[(i + 1) % n]
        cur_in = side(cur) >= -1e-12
        nxt_in = side(nxt) >= -1e-12
        if cur_in:
            out.append(cur)
        if cur_in != nxt_in:
            # Edge crosses the clip line: add the intersection point.
            s_cur = side(cur)
            s_nxt = side(nxt)
            t = s_cur / (s_cur - s_nxt)
            out.append(
                (
                    cur[0] + t * (nxt[0] - cur[0]),
                    cur[1] + t * (nxt[1] - cur[1]),
                )
            )
    return out


def rectangle_corners(
    min_x: float, min_y: float, max_x: float, max_y: float
) -> list[Vec2]:
    """The four corners of an axis-aligned rectangle, counter-clockwise."""
    return [
        (min_x, min_y),
        (max_x, min_y),
        (max_x, max_y),
        (min_x, max_y),
    ]


def ray_direction(theta: float) -> Vec2:
    """Unit direction vector of the ray from the origin at angle ``theta``."""
    return (math.cos(theta), math.sin(theta))


def _clip_left_of_origin_ray(
    poly: Sequence[Vec2], dx: float, dy: float
) -> list[Vec2]:
    """Clip to ``dx*y - dy*x >= -1e-12`` (left of the origin ray along
    ``(dx, dy)``) — :func:`clip_polygon_halfplane` unrolled for the
    quadrant-rebuild hot path: the side values are computed once per vertex
    and there is no per-vertex closure call."""
    n = len(poly)
    if n == 0:
        return []
    out: list[Vec2] = []
    append = out.append
    cur = poly[n - 1]
    s_cur = dx * cur[1] - dy * cur[0]
    cur_in = s_cur >= -1e-12
    for i in range(n):
        # Same emission rule as clip_polygon_halfplane (vertex, then the
        # intersection on its out-edge); the output may start one edge
        # earlier, which only rotates the cycle — orientation is preserved.
        nxt = poly[i]
        s_nxt = dx * nxt[1] - dy * nxt[0]
        nxt_in = s_nxt >= -1e-12
        if cur_in:
            append(cur)
        if cur_in != nxt_in:
            t = s_cur / (s_cur - s_nxt)
            append(
                (
                    cur[0] + t * (nxt[0] - cur[0]),
                    cur[1] + t * (nxt[1] - cur[1]),
                )
            )
        cur = nxt
        s_cur = s_nxt
        cur_in = nxt_in
    return out


def wedge_box_polygon(
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    theta_lo: float,
    theta_hi: float,
) -> list[Vec2]:
    """The bounded area of one BQS quadrant: box ∩ wedge, about the origin.

    The wedge is the set of points whose polar angle lies in
    ``[theta_lo, theta_hi]``; the box is axis-aligned.  Both are expressed in
    anchor-relative coordinates (the anchor is the origin), matching how the
    Bounded Quadrant System keeps per-quadrant state.  The angular span must
    be at most π — always true inside a single quadrant, which spans π/2 —
    otherwise the two half-plane clips below would not describe the wedge.

    Every point recorded in the quadrant lies inside the returned convex
    polygon, so the maximum distance from any recorded point to a line
    through the origin is bounded by the maximum over the polygon's vertices
    (Theorems 5.3–5.5 of the paper).  Returns ``[]`` when box and wedge do
    not intersect (numerically possible with degenerate boxes).
    """
    # Keep angle >= theta_lo (left of the origin -> lo ray), then angle <=
    # theta_hi (left of the hi ray -> origin, i.e. right of the origin ->
    # hi ray: the same clip with the direction negated).
    poly = _clip_left_of_origin_ray(
        ((min_x, min_y), (max_x, min_y), (max_x, max_y), (min_x, max_y)),
        math.cos(theta_lo),
        math.sin(theta_lo),
    )
    return _clip_left_of_origin_ray(
        poly, -math.cos(theta_hi), -math.sin(theta_hi)
    )


def max_distance_to_line_origin(
    points: Iterable[Vec2], direction: Vec2
) -> float:
    """Max distance from ``points`` to the origin line along ``direction``.

    This is the vertex scan used for both BQS bounds: applied to a bounded
    area polygon it yields the upper bound; applied to the quadrant's
    significant points (which are actual trajectory points) it yields the
    lower bound.
    """
    best = 0.0
    for p in points:
        d = point_line_distance_origin(p, direction)
        if d > best:
            best = d
    return best


def max_abs_cross(points: Iterable[Vec2], dx: float, dy: float) -> float:
    """``max |dx*y - dy*x|`` over ``points`` (0 for no points).

    This is :func:`max_distance_to_line_origin` scaled by ``hypot(dx, dy)``:
    the BQS hot path computes crosses only and compares them against a
    tolerance pre-multiplied by the direction norm, saving one ``hypot`` and
    one division per vertex per arrival.
    """
    best = 0.0
    for x, y in points:
        c = dx * y - dy * x
        if c < 0.0:
            c = -c
        if c > best:
            best = c
    return best


def min_distance_on_segment_to_line_origin(
    a: Vec2, b: Vec2, direction: Vec2
) -> float:
    """Min distance from any point of segment ``ab`` to the origin line.

    Zero when the segment crosses the line.  A bounding-box edge is touched
    by at least one actual trajectory point, so this is a valid per-edge
    lower bound on the quadrant's maximum deviation.
    """
    denom = norm(direction)
    if denom == 0.0:
        return min(norm(a), norm(b))
    sa = cross(direction, a) / denom
    sb = cross(direction, b) / denom
    if (sa <= 0.0 <= sb) or (sb <= 0.0 <= sa):
        return 0.0
    return min(abs(sa), abs(sb))
