"""3-D geometry kernel for the 3-D Bounded Quadrant System (Section V-G).

All helpers operate on plain ``(x, y, z)`` float triples.  The deviation
metric in 3-D is the distance from a point to the infinite 3-D line through
the segment's start and end (the paper extends its 2-D point-to-line metric
verbatim); the point-to-segment variant is provided for completeness.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

Vec3 = tuple[float, float, float]

__all__ = [
    "Vec3",
    "add3",
    "sub3",
    "scale3",
    "dot3",
    "cross3",
    "norm3",
    "point_line_distance3",
    "point_line_distance_origin3",
    "point_segment_distance3",
    "max_deviation_to_line3",
    "plane_from_points",
    "plane_signed_distance",
    "segment_plane_intersection",
    "box_corners3",
]


def add3(a: Vec3, b: Vec3) -> Vec3:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def sub3(a: Vec3, b: Vec3) -> Vec3:
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def scale3(a: Vec3, k: float) -> Vec3:
    return (a[0] * k, a[1] * k, a[2] * k)


def dot3(a: Vec3, b: Vec3) -> float:
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def cross3(a: Vec3, b: Vec3) -> Vec3:
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def norm3(a: Vec3) -> float:
    return math.sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2])


def point_line_distance3(p: Vec3, a: Vec3, b: Vec3) -> float:
    """Distance from ``p`` to the infinite 3-D line through ``a`` and ``b``.

    Collapses to the point-to-point distance when ``a == b`` (degenerate
    path line), mirroring the planar kernel's behaviour.
    """
    ab = sub3(b, a)
    ap = sub3(p, a)
    denom = norm3(ab)
    if denom == 0.0:
        return norm3(ap)
    return norm3(cross3(ab, ap)) / denom


def point_line_distance_origin3(p: Vec3, direction: Vec3) -> float:
    """Distance from ``p`` to the 3-D line through the origin."""
    denom = norm3(direction)
    if denom == 0.0:
        return norm3(p)
    return norm3(cross3(direction, p)) / denom


def point_segment_distance3(p: Vec3, a: Vec3, b: Vec3) -> float:
    """Distance from ``p`` to the closed 3-D segment ``ab``."""
    ab = sub3(b, a)
    ap = sub3(p, a)
    denom = dot3(ab, ab)
    if denom == 0.0:
        return norm3(ap)
    t = dot3(ap, ab) / denom
    if t <= 0.0:
        return norm3(ap)
    if t >= 1.0:
        return norm3(sub3(p, b))
    proj = add3(a, scale3(ab, t))
    return norm3(sub3(p, proj))


def max_deviation_to_line3(points: Iterable[Vec3], a: Vec3, b: Vec3) -> float:
    """Maximum point-to-3-D-line distance over ``points`` (0 if empty)."""
    best = 0.0
    for p in points:
        d = point_line_distance3(p, a, b)
        if d > best:
            best = d
    return best


def plane_from_points(p1: Vec3, p2: Vec3, p3: Vec3) -> tuple[Vec3, float]:
    """The plane through three points as ``(unit normal, offset)``.

    The plane is ``dot(normal, x) = offset``.  Raises ``ValueError`` for
    (near-)collinear inputs, which cannot define a plane.
    """
    n = cross3(sub3(p2, p1), sub3(p3, p1))
    length = norm3(n)
    if length < 1e-12:
        raise ValueError("collinear points do not define a plane")
    unit = scale3(n, 1.0 / length)
    return unit, dot3(unit, p1)


def plane_signed_distance(p: Vec3, normal: Vec3, offset: float) -> float:
    """Signed distance from ``p`` to the plane ``dot(normal, x) = offset``."""
    return dot3(normal, p) - offset


def segment_plane_intersection(
    a: Vec3, b: Vec3, normal: Vec3, offset: float
) -> Vec3 | None:
    """Intersection of segment ``ab`` with a plane, or ``None``.

    Endpoints lying exactly on the plane count as intersections.
    """
    da = plane_signed_distance(a, normal, offset)
    db = plane_signed_distance(b, normal, offset)
    if da == 0.0:
        return a
    if db == 0.0:
        return b
    if (da > 0.0) == (db > 0.0):
        return None
    t = da / (da - db)
    return add3(a, scale3(sub3(b, a), t))


def box_corners3(
    min_corner: Vec3, max_corner: Vec3
) -> list[Vec3]:
    """The 8 corners of an axis-aligned box, in a fixed deterministic order."""
    (x0, y0, z0) = min_corner
    (x1, y1, z1) = max_corner
    return [
        (x0, y0, z0),
        (x1, y0, z0),
        (x1, y1, z0),
        (x0, y1, z0),
        (x0, y0, z1),
        (x1, y0, z1),
        (x1, y1, z1),
        (x0, y1, z1),
    ]
