"""Deviation metrics.

The paper's primary metric is the perpendicular distance from a point to the
infinite line through a compressed segment's endpoints (Section IV: "For
simplicity of the proof and presentation, without loss of generality, we use
point-to-line distance"), with the point-to-line-segment variant explicitly
supported (Section V-G, Eq. 11).  The 3-D BQS additionally supports the
time-sensitive metric of Cao et al. by mapping the timestamp onto the z axis.

This module centralises metric selection so compressors, baselines and the
evaluation auditor all agree on what "deviation" means.
"""

from __future__ import annotations

import enum
from typing import Iterable

from .planar import (
    Vec2,
    point_line_distance,
    point_segment_distance,
)
from .spatial import (
    Vec3,
    point_line_distance3,
    point_segment_distance3,
)

__all__ = ["DistanceMetric", "deviation", "deviation3", "max_deviation", "max_deviation3"]


class DistanceMetric(enum.Enum):
    """How the distance from a point to a compressed segment is measured."""

    #: Distance to the infinite line through the segment endpoints
    #: (the paper's default).
    POINT_TO_LINE = "point_to_line"

    #: Distance to the closed line segment between the endpoints
    #: (Section V-G variant; never smaller than POINT_TO_LINE).
    POINT_TO_SEGMENT = "point_to_segment"


def deviation(p: Vec2, a: Vec2, b: Vec2, metric: DistanceMetric) -> float:
    """Distance from ``p`` to the compressed segment ``(a, b)`` under ``metric``."""
    if metric is DistanceMetric.POINT_TO_LINE:
        return point_line_distance(p, a, b)
    if metric is DistanceMetric.POINT_TO_SEGMENT:
        return point_segment_distance(p, a, b)
    raise ValueError(f"unknown metric: {metric!r}")


def deviation3(p: Vec3, a: Vec3, b: Vec3, metric: DistanceMetric) -> float:
    """3-D counterpart of :func:`deviation`."""
    if metric is DistanceMetric.POINT_TO_LINE:
        return point_line_distance3(p, a, b)
    if metric is DistanceMetric.POINT_TO_SEGMENT:
        return point_segment_distance3(p, a, b)
    raise ValueError(f"unknown metric: {metric!r}")


def max_deviation(
    points: Iterable[Vec2], a: Vec2, b: Vec2, metric: DistanceMetric
) -> float:
    """Maximum deviation over ``points`` (0 when empty)."""
    best = 0.0
    for p in points:
        d = deviation(p, a, b, metric)
        if d > best:
            best = d
    return best


def max_deviation3(
    points: Iterable[Vec3], a: Vec3, b: Vec3, metric: DistanceMetric
) -> float:
    """Maximum 3-D deviation over ``points`` (0 when empty)."""
    best = 0.0
    for p in points:
        d = deviation3(p, a, b, metric)
        if d > best:
            best = d
    return best
