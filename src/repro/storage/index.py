"""Persistent per-segment index sidecars and their mmap'd readers.

A segment file ``seg-XXXXXXXX.log`` holds framed record payloads; its
sidecar ``seg-XXXXXXXX.idx`` holds everything the store's open scan used
to rebuild in RAM — one fixed-width envelope row per trajectory record,
the tombstone positions, a per-device summary, and coarse pruning
structure — so opening a store means reading footers, not re-parsing a
million record envelopes.  The layout (all little-endian, stdlib
``struct`` only)::

    +---------------------------+
    | header  b"BQSIDX1\\n"      |  8 bytes
    | row region                |  n_rows x 80 B  (_ROW)
    | device table              |  per device: u16 len | utf-8 id |
    |                           |    u32 n_rows | u32 first | u32 last
    | tombstone region          |  n_tombstones x 8 B  (_TOMB)
    | grid region               |  grid_nx*grid_ny x 16 B  (_CELL)
    | block region              |  ceil(n_rows/block_rows) x 56 B (_BLOCK)
    | footer                    |  152 B (_FOOTER), CRC'd
    +---------------------------+

The footer carries the segment-level envelope, per-region CRCs and the
CRC of the segment log it was built from, so a reader can decide how
much to trust without touching the log:

* ``footer_crc`` / ``meta_crc`` are verified at open (microseconds —
  the footer plus the small device/tombstone/grid/block regions).
* ``rows_crc`` covers the big row region and is verified **lazily**, on
  the first query that iterates the segment's rows — open time stays
  proportional to segment *count*, not record count.
* ``log_crc`` / ``head_crc`` tie the sidecar to the log content it
  indexed.  Sealed segments are trusted on size plus a 4 KiB head CRC
  (record payloads are re-CRC'd on every read anyway); the *active*
  segment — the one a crash could have damaged — is only trusted after
  a full log-content CRC.

Any validation failure raises :class:`SidecarError` and the store falls
back to the legacy envelope scan for that segment, regenerating the
sidecar afterwards; a corrupt ``.idx`` can cost time, never answers.

Pruning happens at three grains before any per-row test: the footer
envelope (whole segment), an ``8x8`` spatial grid with per-cell time
spans, and per-512-row block envelopes.  Rows are assigned to every
grid cell their ε-expanded bounding box overlaps, and blocks carry
their own max ε, so every prune is conservative: a skipped cell/block
provably contains no row whose ε-expanded box reaches the query
rectangle within the window.
"""

from __future__ import annotations

import math
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Tuple

from .. import fsio
from ..model.projection import UTMProjection

__all__ = [
    "RecordRef",
    "ScannedSegment",
    "SegmentIndex",
    "SidecarError",
    "sidecar_path",
    "write_sidecar",
]

_HEADER = b"BQSIDX1\n"
_FOOTER_MAGIC = b"BQSF"
_VERSION = 1

#: One envelope row: t_min t_max x_min x_max y_min y_max epsilon,
#: device index, key-point count, frame offset, frame length, UTM zone
#: (0 = unstamped), hemisphere flag, 2 pad bytes.  80 bytes.
_ROW = struct.Struct("<7dIIQIBB2x")
#: One tombstone: row marker (trajectory rows preceding it in this
#: segment), device index.
_TOMB = struct.Struct("<II")
#: One grid cell: time span of the rows assigned to it (+inf/-inf when
#: empty — the cell is unmarked).
_CELL = struct.Struct("<2d")
#: One block summary: t/x/y envelope of a run of rows plus their max
#: finite ε.
_BLOCK = struct.Struct("<7d")
#: magic, version, flags, n_rows, n_devices, n_tombstones, dev_bytes,
#: block_rows, grid_nx, grid_ny, segment_size, damaged, log_crc,
#: head_crc, total_key_points, envelope (t0 t1 x0 x1 y0 y1 max_eps),
#: zones_north, zones_south, has_unstamped, rows_crc, meta_crc,
#: footer_crc.  152 bytes at the very end of the file.
_FOOTER = struct.Struct("<4sHHIIIIIHHQQIIQ7dQQB3xIII")

GRID_NX = 8
GRID_NY = 8
BLOCK_ROWS = 512
#: Log-head prefix covered by ``head_crc``.
HEAD_CRC_BYTES = 4096


class SidecarError(Exception):
    """An index sidecar failed validation (treat the segment as unindexed)."""


@dataclass(frozen=True, slots=True)
class RecordRef:
    """Index entry for one stored trajectory (envelope, not the blob)."""

    device_id: str
    segment: str  #: segment file name
    offset: int  #: byte offset of the record frame in the segment
    length: int  #: total framed record length in bytes
    n_key_points: int
    t_min: float
    t_max: float
    x_min: float
    x_max: float
    y_min: float
    y_max: float
    #: The trajectory's declared error bound (``inf`` when unbounded),
    #: mirrored out of the blob header so the query screen never decodes.
    epsilon: float
    #: UTM zone the plane coordinates live in (``None`` for records stored
    #: from already-planar fixes) and its hemisphere — the frame geographic
    #: queries project their lat/lon rectangle into, per record.
    utm_zone: int | None = None
    utm_south: bool = False

    def projection(self) -> UTMProjection | None:
        """The stamped UTM frame, if any (mirrors the blob header)."""
        if self.utm_zone is None:
            return None
        return UTMProjection(zone=self.utm_zone, south=self.utm_south)


def sidecar_path(directory: Path, segment_name: str) -> Path:
    """``seg-XXXXXXXX.log`` -> ``<directory>/seg-XXXXXXXX.idx``."""
    stem = segment_name[:-4] if segment_name.endswith(".log") else segment_name
    return Path(directory) / (stem + ".idx")


def _finite_eps(eps: float) -> float:
    # Matches the query screen: a non-finite ε carries no guarantee to
    # expand by, so it expands nothing.
    return eps if math.isfinite(eps) else 0.0


def _cell_span(lo: float, hi: float, g0: float, g1: float, n: int) -> range:
    """Grid cells a value interval overlaps, clamped to the grid.

    The interval may be unbounded (geographic queries reaching past the
    polar sampling clamp carry infinite northings), so the endpoints are
    compared against the grid edge before any arithmetic that would
    overflow ``int()``.
    """
    span = g1 - g0
    if span <= 0.0:
        return range(0, 1)
    i0 = 0 if lo <= g0 else min(int((lo - g0) / span * n), n - 1)
    i1 = n - 1 if hi >= g1 else max(int((hi - g0) / span * n), 0)
    if i1 < i0:
        i1 = i0
    return range(i0, i1 + 1)


def write_sidecar(
    path: str | os.PathLike,
    segment_name: str,
    refs: Sequence[RecordRef],
    tombstones: Sequence[Tuple[int, str]],
    *,
    segment_size: int,
    log_crc: int,
    head_crc: int,
    damaged: int = 0,
    fsync: bool = False,
    block_rows: int = BLOCK_ROWS,
    grid_nx: int = GRID_NX,
    grid_ny: int = GRID_NY,
) -> None:
    """Build and atomically write one segment's ``.idx`` sidecar.

    ``refs`` are the segment's trajectory rows in offset order;
    ``tombstones`` are ``(marker_row, device_id)`` pairs where the marker
    counts the trajectory rows preceding the tombstone in this segment.
    ``damaged`` preserves the scan report (unreadable trailing bytes) so
    a reopen from the sidecar reports the same recovery state the scan
    did.
    """
    device_idx: Dict[str, int] = {}
    dev_stats: List[List[int]] = []  # [n_rows, first_row, last_row]
    for ref in refs:
        i = device_idx.get(ref.device_id)
        if i is None:
            device_idx[ref.device_id] = len(dev_stats)
            dev_stats.append([0, 0xFFFFFFFF, 0])
    for _, device_id in tombstones:
        if device_id not in device_idx:
            device_idx[device_id] = len(dev_stats)
            dev_stats.append([0, 0xFFFFFFFF, 0])

    n_rows = len(refs)
    # Segment envelope + max finite ε + zone masks, one pass.
    t0 = x0 = y0 = math.inf
    t1 = x1 = y1 = -math.inf
    max_eps = 0.0
    total_keys = 0
    zones_north = 0
    zones_south = 0
    has_unstamped = 0
    for row, ref in enumerate(refs):
        stats = dev_stats[device_idx[ref.device_id]]
        stats[0] += 1
        if stats[1] == 0xFFFFFFFF:
            stats[1] = row
        stats[2] = row
        if ref.t_min < t0:
            t0 = ref.t_min
        if ref.t_max > t1:
            t1 = ref.t_max
        if ref.x_min < x0:
            x0 = ref.x_min
        if ref.x_max > x1:
            x1 = ref.x_max
        if ref.y_min < y0:
            y0 = ref.y_min
        if ref.y_max > y1:
            y1 = ref.y_max
        e = _finite_eps(ref.epsilon)
        if e > max_eps:
            max_eps = e
        total_keys += ref.n_key_points
        if ref.utm_zone is None:
            has_unstamped = 1
        elif ref.utm_south:
            zones_south |= 1 << (ref.utm_zone - 1)
        else:
            zones_north |= 1 << (ref.utm_zone - 1)

    # Grid bounds: the envelope expanded by the segment's max ε, so every
    # row's ε-expanded box lies inside the grid.
    gx0, gx1 = x0 - max_eps, x1 + max_eps
    gy0, gy1 = y0 - max_eps, y1 + max_eps
    cells = [(math.inf, -math.inf)] * (grid_nx * grid_ny)

    rows = bytearray()
    blocks = bytearray()
    b_t0 = b_x0 = b_y0 = math.inf
    b_t1 = b_x1 = b_y1 = -math.inf
    b_eps = 0.0
    for row, ref in enumerate(refs):
        rows += _ROW.pack(
            ref.t_min,
            ref.t_max,
            ref.x_min,
            ref.x_max,
            ref.y_min,
            ref.y_max,
            ref.epsilon,
            device_idx[ref.device_id],
            ref.n_key_points,
            ref.offset,
            ref.length,
            ref.utm_zone or 0,
            1 if ref.utm_south else 0,
        )
        e = _finite_eps(ref.epsilon)
        ex0, ex1 = ref.x_min - e, ref.x_max + e
        ey0, ey1 = ref.y_min - e, ref.y_max + e
        for iy in _cell_span(ey0, ey1, gy0, gy1, grid_ny):
            base = iy * grid_nx
            for ix in _cell_span(ex0, ex1, gx0, gx1, grid_nx):
                c0, c1 = cells[base + ix]
                cells[base + ix] = (
                    ref.t_min if ref.t_min < c0 else c0,
                    ref.t_max if ref.t_max > c1 else c1,
                )
        if ref.t_min < b_t0:
            b_t0 = ref.t_min
        if ref.t_max > b_t1:
            b_t1 = ref.t_max
        if ex0 < b_x0:
            b_x0 = ex0
        if ex1 > b_x1:
            b_x1 = ex1
        if ey0 < b_y0:
            b_y0 = ey0
        if ey1 > b_y1:
            b_y1 = ey1
        if e > b_eps:
            b_eps = e
        if (row + 1) % block_rows == 0 or row + 1 == n_rows:
            # Block envelopes are stored pre-expanded (per-row ε already
            # applied), so the block prune needs no further expansion.
            blocks += _BLOCK.pack(b_t0, b_t1, b_x0, b_x1, b_y0, b_y1, b_eps)
            b_t0 = b_x0 = b_y0 = math.inf
            b_t1 = b_x1 = b_y1 = -math.inf
            b_eps = 0.0

    dev_table = bytearray()
    for device_id, i in device_idx.items():
        encoded = device_id.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise SidecarError(f"device id too long for sidecar: {device_id!r}")
        n, first, last = dev_stats[i]
        dev_table += struct.pack("<H", len(encoded))
        dev_table += encoded
        dev_table += struct.pack("<III", n, first, last)

    tomb_region = bytearray()
    for marker, device_id in tombstones:
        tomb_region += _TOMB.pack(marker, device_idx[device_id])

    grid_region = bytearray()
    for c0, c1 in cells:
        grid_region += _CELL.pack(c0, c1)

    meta = bytes(dev_table) + bytes(tomb_region) + bytes(grid_region) + bytes(
        blocks
    )
    rows_b = bytes(rows)
    footer_head = _FOOTER.pack(
        _FOOTER_MAGIC,
        _VERSION,
        0,
        n_rows,
        len(dev_stats),
        len(tombstones),
        len(dev_table),
        block_rows,
        grid_nx,
        grid_ny,
        segment_size,
        damaged,
        log_crc & 0xFFFFFFFF,
        head_crc & 0xFFFFFFFF,
        total_keys,
        t0,
        t1,
        x0,
        x1,
        y0,
        y1,
        max_eps,
        zones_north,
        zones_south,
        has_unstamped,
        zlib.crc32(rows_b),
        zlib.crc32(meta),
        0,
    )[: _FOOTER.size - 4]
    footer = footer_head + struct.pack("<I", zlib.crc32(footer_head))

    path = Path(path)
    tmp = path.with_suffix(".idx.tmp")
    try:
        with fsio.open_file(tmp, "wb") as handle:
            handle.write(_HEADER)
            handle.write(rows_b)
            handle.write(meta)
            handle.write(footer)
            if fsync:
                handle.flush()
                fsio.fsync(handle.fileno())
        fsio.replace(tmp, path)
    except OSError:
        # A half-written tmp must not outlive the failure: a later rename
        # (or a naive glob) could promote a truncated sidecar.  The store
        # falls back to scan mode either way.
        try:
            fsio.unlink(tmp)
        except OSError:
            pass
        raise


def _row_to_ref(segment: str, devices: List[str], row: tuple) -> RecordRef:
    (t_min, t_max, x_min, x_max, y_min, y_max, eps,
     dev, n_keys, offset, length, zone, south) = row
    return RecordRef(
        device_id=devices[dev],
        segment=segment,
        offset=offset,
        length=length,
        n_key_points=n_keys,
        t_min=t_min,
        t_max=t_max,
        x_min=x_min,
        x_max=x_max,
        y_min=y_min,
        y_max=y_max,
        epsilon=eps,
        utm_zone=zone if zone else None,
        utm_south=bool(south),
    )


class SegmentIndex:
    """A sealed segment's sidecar, served zero-copy through ``mmap``.

    Construction (:meth:`open`) validates the footer, the small metadata
    regions and the tie to the segment log; the row region is only
    CRC-verified by an explicit :meth:`verify_rows` call (the store does
    this lazily, once, before first serving rows).  All failures raise
    :class:`SidecarError`.
    """

    kind = "sidecar"

    def __init__(self) -> None:  # populated by open()
        self.name = ""
        self.n_rows = 0
        self.total_key_points = 0
        self.damaged = 0
        self.log_crc = 0
        self.head_crc = 0
        self.segment_size = 0
        self.has_unstamped = False
        self.tombstones: List[Tuple[int, str]] = []
        self._devices: List[str] = []
        self._dev_stats: List[Tuple[int, int, int]] = []
        self._mm = None
        self._file = None
        self._rows_off = len(_HEADER)
        self._rows_crc = 0
        self._rows_verified = False
        self._envelope: Tuple[float, ...] | None = None
        self._max_eps = 0.0
        self._grid: Tuple[int, int, int] = (0, GRID_NX, GRID_NY)  # off, nx, ny
        self._block_off = 0
        self._block_rows = BLOCK_ROWS
        self._n_blocks = 0
        self._zones_north = 0
        self._zones_south = 0

    @classmethod
    def open(
        cls, path: str | os.PathLike, *, segment_name: str, expected_size: int
    ) -> "SegmentIndex":
        import mmap

        self = cls()
        self.name = segment_name
        file = open(path, "rb")
        try:
            size = os.fstat(file.fileno()).st_size
            if size < len(_HEADER) + _FOOTER.size:
                raise SidecarError(f"{path}: too small to be a sidecar")
            mm = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length mmap
            file.close()
            raise SidecarError(f"{path}: {exc}") from exc
        except SidecarError:
            file.close()
            raise
        self._file = file
        self._mm = mm
        try:
            self._validate(path, size, expected_size)
        except Exception:
            self.close()
            raise
        return self

    def _validate(self, path, size: int, expected_size: int) -> None:
        mm = self._mm
        if mm[: len(_HEADER)] != _HEADER:
            raise SidecarError(f"{path}: bad header magic")
        view = memoryview(mm)
        foot_off = size - _FOOTER.size
        stored_crc = struct.unpack_from("<I", mm, size - 4)[0]
        if zlib.crc32(view[foot_off : size - 4]) != stored_crc:
            raise SidecarError(f"{path}: footer CRC mismatch")
        (magic, version, _flags, n_rows, n_devices, n_tombstones, dev_bytes,
         block_rows, grid_nx, grid_ny, segment_size, damaged, log_crc,
         head_crc, total_keys, t0, t1, x0, x1, y0, y1, max_eps, zones_north,
         zones_south, has_unstamped, rows_crc, meta_crc, _stored,
         ) = _FOOTER.unpack_from(mm, foot_off)
        if magic != _FOOTER_MAGIC:
            raise SidecarError(f"{path}: bad footer magic")
        if version != _VERSION:
            raise SidecarError(f"{path}: unsupported sidecar version {version}")
        if block_rows < 1 or grid_nx < 1 or grid_ny < 1:
            raise SidecarError(f"{path}: corrupt footer geometry")
        rows_end = self._rows_off + n_rows * _ROW.size
        tomb_off = rows_end + dev_bytes
        grid_off = tomb_off + n_tombstones * _TOMB.size
        block_off = grid_off + grid_nx * grid_ny * _CELL.size
        n_blocks = (n_rows + block_rows - 1) // block_rows
        if block_off + n_blocks * _BLOCK.size + _FOOTER.size != size:
            raise SidecarError(f"{path}: region sizes do not add up")
        if segment_size != expected_size:
            raise SidecarError(
                f"{path}: indexed a {segment_size}-byte segment, log is "
                f"{expected_size} bytes (stale sidecar)"
            )
        if zlib.crc32(view[rows_end:foot_off]) != meta_crc:
            raise SidecarError(f"{path}: metadata CRC mismatch")
        # Device table.
        pos = rows_end
        devices: List[str] = []
        stats: List[Tuple[int, int, int]] = []
        for _ in range(n_devices):
            (id_len,) = struct.unpack_from("<H", mm, pos)
            pos += 2
            try:
                devices.append(bytes(view[pos : pos + id_len]).decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise SidecarError(f"{path}: bad device id") from exc
            pos += id_len
            stats.append(struct.unpack_from("<III", mm, pos))
            pos += 12
        if pos != tomb_off:
            raise SidecarError(f"{path}: device table overruns its region")
        tombs: List[Tuple[int, str]] = []
        for marker, dev in _TOMB.iter_unpack(view[tomb_off:grid_off]):
            if dev >= n_devices or marker > n_rows:
                raise SidecarError(f"{path}: tombstone out of range")
            tombs.append((marker, devices[dev]))
        for n, first, last in stats:
            if n and (first >= n_rows or last >= n_rows or first > last):
                raise SidecarError(f"{path}: device summary out of range")
        self.n_rows = n_rows
        self.total_key_points = total_keys
        self.damaged = damaged
        self.log_crc = log_crc
        self.head_crc = head_crc
        self.segment_size = segment_size
        self.has_unstamped = bool(has_unstamped)
        self.tombstones = tombs
        self._devices = devices
        self._dev_stats = stats
        self._rows_crc = rows_crc
        self._envelope = (
            (t0, t1, x0, x1, y0, y1, max_eps) if n_rows else None
        )
        self._max_eps = max_eps
        self._grid = (grid_off, grid_nx, grid_ny)
        self._block_off = block_off
        self._block_rows = block_rows
        self._n_blocks = n_blocks
        self._zones_north = zones_north
        self._zones_south = zones_south

    # -- integrity -----------------------------------------------------------

    def verify_rows(self) -> None:
        """One-time CRC pass over the row region (cheap; done lazily)."""
        if self._rows_verified or self.n_rows == 0:
            self._rows_verified = True
            return
        view = memoryview(self._mm)
        end = self._rows_off + self.n_rows * _ROW.size
        if zlib.crc32(view[self._rows_off : end]) != self._rows_crc:
            raise SidecarError(f"{self.name}: sidecar row region CRC mismatch")
        self._rows_verified = True

    # -- summaries -----------------------------------------------------------

    def device_summary(self) -> Dict[str, Tuple[int, int, int]]:
        """``device_id -> (n_rows, first_row, last_row)`` (0 rows for
        devices present only as tombstones)."""
        return dict(zip(self._devices, self._dev_stats))

    def envelope(self) -> Tuple[float, ...] | None:
        """``(t_min, t_max, x_min, x_max, y_min, y_max, max_eps)`` over
        every row, or ``None`` for an empty segment."""
        return self._envelope

    def stamped_zones(self) -> set:
        zones = set()
        for z in range(60):
            if self._zones_north >> z & 1:
                zones.add((z + 1, False))
            if self._zones_south >> z & 1:
                zones.add((z + 1, True))
        return zones

    # -- row access ----------------------------------------------------------

    def ref(self, row: int) -> RecordRef:
        if not 0 <= row < self.n_rows:
            raise IndexError(row)
        return _row_to_ref(
            self.name,
            self._devices,
            _ROW.unpack_from(self._mm, self._rows_off + row * _ROW.size),
        )

    def iter_refs(
        self, lo: int = 0, hi: int | None = None
    ) -> Iterator[Tuple[int, RecordRef]]:
        if hi is None or hi > self.n_rows:
            hi = self.n_rows
        if lo >= hi:
            return
        view = memoryview(self._mm)
        start = self._rows_off + lo * _ROW.size
        end = self._rows_off + hi * _ROW.size
        name = self.name
        devices = self._devices
        row = lo
        for fields in _ROW.iter_unpack(view[start:end]):
            yield row, _row_to_ref(name, devices, fields)
            row += 1

    def _grid_passes(
        self,
        rect: Tuple[float, float, float, float],
        t0: float | None,
        t1: float | None,
    ) -> bool:
        """Conservative: False only if no marked cell can hold a match."""
        env = self._envelope
        grid_off, nx, ny = self._grid
        gx0, gx1 = env[2] - self._max_eps, env[3] + self._max_eps
        gy0, gy1 = env[4] - self._max_eps, env[5] + self._max_eps
        qx0, qy0, qx1, qy1 = rect
        if qx0 > gx1 or qx1 < gx0 or qy0 > gy1 or qy1 < gy0:
            return False
        mm = self._mm
        windowed = t0 is not None
        for iy in _cell_span(qy0, qy1, gy0, gy1, ny):
            base = grid_off + iy * nx * _CELL.size
            for ix in _cell_span(qx0, qx1, gx0, gx1, nx):
                c0, c1 = _CELL.unpack_from(mm, base + ix * _CELL.size)
                if c0 > c1:
                    continue  # unmarked cell
                if windowed and not (c0 <= t1 and c1 >= t0):
                    continue
                return True
        return False

    def iter_candidates(
        self,
        rect: Tuple[float, float, float, float] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        zone: int | None = None,
        south: bool = False,
    ) -> Iterator[Tuple[int, RecordRef]]:
        """Rows passing the envelope screen, as ``(row, ref)`` in order.

        The per-row test is exactly the legacy query screen (time-span
        overlap, then the ε-expanded bounding-box test with non-finite ε
        expanding nothing), preceded by segment/grid/block pruning that
        can only skip provably-empty row ranges.
        """
        if self.n_rows == 0:
            return
        env = self._envelope
        windowed = t0 is not None
        if windowed and not (env[0] <= t1 and env[1] >= t0):
            return
        if rect is not None:
            qx0, qy0, qx1, qy1 = rect
            if (
                env[2] - self._max_eps > qx1
                or env[3] + self._max_eps < qx0
                or env[4] - self._max_eps > qy1
                or env[5] + self._max_eps < qy0
            ):
                return
            if not self._grid_passes(rect, t0, t1):
                return
        zf = zone if zone is not None else None
        sf = 1 if south else 0
        view = memoryview(self._mm)
        mm = self._mm
        name = self.name
        devices = self._devices
        block_rows = self._block_rows
        for b in range(self._n_blocks):
            (b_t0, b_t1, b_x0, b_x1, b_y0, b_y1, _b_eps) = _BLOCK.unpack_from(
                mm, self._block_off + b * _BLOCK.size
            )
            if windowed and not (b_t0 <= t1 and b_t1 >= t0):
                continue
            if rect is not None and (
                b_x0 > qx1 or b_x1 < qx0 or b_y0 > qy1 or b_y1 < qy0
            ):
                continue
            lo = b * block_rows
            hi = min(lo + block_rows, self.n_rows)
            start = self._rows_off + lo * _ROW.size
            end = self._rows_off + hi * _ROW.size
            row = lo
            for fields in _ROW.iter_unpack(view[start:end]):
                (r_t0, r_t1, r_x0, r_x1, r_y0, r_y1, eps,
                 _dev, _nk, _off, _len, r_zone, r_south) = fields
                if windowed and not (r_t0 <= t1 and r_t1 >= t0):
                    row += 1
                    continue
                if zf is not None and (r_zone != zf or r_south != sf):
                    row += 1
                    continue
                if rect is not None:
                    e = eps if math.isfinite(eps) else 0.0
                    if (
                        r_x0 - e > qx1
                        or r_x1 + e < qx0
                        or r_y0 - e > qy1
                        or r_y1 + e < qy0
                    ):
                        row += 1
                        continue
                yield row, _row_to_ref(name, devices, fields)
                row += 1

    def close(self) -> None:
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # A memoryview still exports the buffer (e.g. held by a
                # traceback after a validation failure, or an abandoned
                # iterator).  The map is reclaimed when the last view
                # dies; dropping our reference is enough.
                pass
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None


class ScannedSegment:
    """The in-memory view of a segment that has no (trusted) sidecar.

    Backed by plain Python lists, it serves the same view protocol as
    :class:`SegmentIndex` — the store's active tail lives here (appends
    mutate it), and so does any segment whose sidecar failed validation.
    """

    kind = "scan"

    def __init__(self, name: str) -> None:
        self.name = name
        self.refs: List[RecordRef] = []
        self.tombstones: List[Tuple[int, str]] = []
        self.damaged = 0

    @property
    def n_rows(self) -> int:
        return len(self.refs)

    @property
    def total_key_points(self) -> int:
        return sum(ref.n_key_points for ref in self.refs)

    @property
    def has_unstamped(self) -> bool:
        return any(ref.utm_zone is None for ref in self.refs)

    def append_ref(self, ref: RecordRef) -> None:
        self.refs.append(ref)

    def add_tombstone(self, device_id: str) -> int:
        """Record a tombstone at the current row position; returns its
        marker (trajectory rows preceding it in this segment)."""
        marker = len(self.refs)
        self.tombstones.append((marker, device_id))
        return marker

    def verify_rows(self) -> None:  # the lists are the source of truth
        return None

    def device_summary(self) -> Dict[str, Tuple[int, int, int]]:
        out: Dict[str, List[int]] = {}
        for row, ref in enumerate(self.refs):
            stats = out.get(ref.device_id)
            if stats is None:
                out[ref.device_id] = [1, row, row]
            else:
                stats[0] += 1
                stats[2] = row
        summary = {d: tuple(s) for d, s in out.items()}
        for _, device_id in self.tombstones:
            summary.setdefault(device_id, (0, 0xFFFFFFFF, 0))
        return summary

    def envelope(self) -> Tuple[float, ...] | None:
        if not self.refs:
            return None
        return (
            min(r.t_min for r in self.refs),
            max(r.t_max for r in self.refs),
            min(r.x_min for r in self.refs),
            max(r.x_max for r in self.refs),
            min(r.y_min for r in self.refs),
            max(r.y_max for r in self.refs),
            max(_finite_eps(r.epsilon) for r in self.refs),
        )

    def stamped_zones(self) -> set:
        return {
            (r.utm_zone, r.utm_south)
            for r in self.refs
            if r.utm_zone is not None
        }

    def ref(self, row: int) -> RecordRef:
        return self.refs[row]

    def iter_refs(
        self, lo: int = 0, hi: int | None = None
    ) -> Iterator[Tuple[int, RecordRef]]:
        if hi is None:
            hi = len(self.refs)
        for row in range(lo, min(hi, len(self.refs))):
            yield row, self.refs[row]

    def iter_candidates(
        self,
        rect: Tuple[float, float, float, float] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        zone: int | None = None,
        south: bool = False,
    ) -> Iterator[Tuple[int, RecordRef]]:
        windowed = t0 is not None
        if rect is not None:
            qx0, qy0, qx1, qy1 = rect
        for row, ref in enumerate(self.refs):
            if windowed and not (ref.t_min <= t1 and ref.t_max >= t0):
                continue
            if zone is not None and (
                ref.utm_zone != zone or ref.utm_south != south
            ):
                continue
            if rect is not None:
                e = ref.epsilon if math.isfinite(ref.epsilon) else 0.0
                if (
                    ref.x_min - e > qx1
                    or ref.x_max + e < qx0
                    or ref.y_min - e > qy1
                    or ref.y_max + e < qy0
                ):
                    continue
            yield row, ref

    def close(self) -> None:
        return None
