"""CLI entry point: ``python -m repro.storage``.

Subcommands::

    # compress a simulated fleet straight to disk (engine -> StoreSink)
    PYTHONPATH=src python -m repro.storage ingest /tmp/fleet --devices 50 --fixes 200

    # raw GPS in: geodetic ingestion, zone-stamped blobs
    PYTHONPATH=src python -m repro.storage ingest /tmp/geo --devices 50 --fixes 200 \\
        --geodetic --multi-zone

    # what's in a store
    PYTHONPATH=src python -m repro.storage stat /tmp/fleet

    # who was active in a window / who entered a rectangle
    PYTHONPATH=src python -m repro.storage query /tmp/fleet --t0 10 --t1 60
    PYTHONPATH=src python -m repro.storage query /tmp/fleet --rect -200,-200,200,200
    PYTHONPATH=src python -m repro.storage query /tmp/fleet --rect -200,-200,200,200 \\
        --t0 0 --t1 100 --mode approximate

    # lat/lon answers out: geographic rectangle over a zone-stamped store
    PYTHONPATH=src python -m repro.storage query /tmp/geo --geo-rect=41.28,11.9,41.32,12.0

    # drop tombstoned data, rewrite live records into fresh segments
    PYTHONPATH=src python -m repro.storage compact /tmp/fleet

    # upgrade an old-format store directory in place (emit sidecars)
    PYTHONPATH=src python -m repro.storage migrate /tmp/old-fleet

    # rebuild every index sidecar from the segment logs
    PYTHONPATH=src python -m repro.storage reindex /tmp/fleet

    # CI guard: synthetic fill, timed lazy reopen, mmap-vs-scan parity
    PYTHONPATH=src python -m repro.storage scale-smoke /tmp/scale \\
        --records 50000 --max-open-seconds 2.0

``ingest`` runs the same seeded fleet simulation as ``python -m
repro.engine`` but streams every sealed trajectory through the
:class:`~repro.storage.store.StoreSink` with ``collect=False`` — the
process holds no compressed output in memory; the store directory is the
result.  With ``--geodetic`` the simulation emits raw GPS fixes and the
:class:`~repro.engine.geodetic.GeoStreamEngine` front-end auto-selects
each device's UTM zone, so every stored blob is zone-stamped and the
store answers ``--geo-rect`` queries.
"""

from __future__ import annotations

import argparse
import functools
import sys
import time
from typing import Sequence

from ..engine.core import StreamEngine
from ..engine.geodetic import GeoStreamEngine
from ..engine.simulate import (
    bqs_fleet_factory,
    fleet_fixes,
    gps_fleet_fixes,
    iter_fix_batches,
    iter_geo_fix_batches,
)
from .query import geo_range_query, range_query, time_window_query
from .store import StoreSink, TrajectoryStore, migrate_store

__all__ = ["main"]


def _parse_rect(text: str, flag: str = "--rect"):
    parts = text.split(",")
    if len(parts) != 4:
        names = (
            "lat_min,lon_min,lat_max,lon_max"
            if flag == "--geo-rect"
            else "x_min,y_min,x_max,y_max"
        )
        raise SystemExit(f"{flag} expects {names}, got {text!r}")
    try:
        rect = tuple(float(p) for p in parts)
    except ValueError:
        raise SystemExit(f"{flag} values must be numeric, got {text!r}")
    return rect


def _cmd_ingest(args) -> int:
    if (args.multi_zone or args.noise_m) and not args.geodetic:
        raise SystemExit("--multi-zone/--noise-m require --geodetic")
    factory = functools.partial(bqs_fleet_factory, args.epsilon)
    sink = StoreSink(args.store)
    engine_kwargs = dict(
        collect=False,
        sink=sink,
        max_devices=args.max_devices,
        idle_timeout=args.idle_timeout,
    )
    if args.geodetic:
        ids, ts, lats, lons = gps_fleet_fixes(
            args.devices,
            args.fixes,
            seed=args.seed,
            multi_zone=args.multi_zone,
            noise_m=args.noise_m,
        )
        batches = iter_geo_fix_batches(ids, ts, lats, lons, args.batch)
        engine = GeoStreamEngine(factory, **engine_kwargs)
    else:
        ids, cols = fleet_fixes(args.devices, args.fixes, seed=args.seed)
        batches = iter_fix_batches(ids, cols, args.batch)
        engine = StreamEngine(factory, **engine_kwargs)
    total = len(ids)
    start = time.perf_counter()
    for batch in batches:
        engine.push_columns(*batch)
    engine.finish_all()
    wall = time.perf_counter() - start
    # Read the summary off the sink's own store before closing it — no
    # reopen-and-rescan of segments we just wrote.
    store = sink.store
    store.flush()
    disk = store.total_bytes()
    keys = store.key_point_count
    records = store.record_count
    zones = (
        sorted(
            {
                (r.utm_zone, r.utm_south)
                for r in store.records()
                if r.utm_zone is not None
            }
        )
        if args.geodetic
        else []
    )
    sink.close()
    print(
        f"{total} fixes -> {records} trajectories, "
        f"{keys} key points, {disk} bytes on disk "
        f"({disk / total:.2f} B/raw fix, {disk / max(keys, 1):.2f} B/key point) "
        f"in {wall:.3f}s = {total / wall:,.0f} fixes/s"
    )
    if args.geodetic:
        print(
            "zones stamped: "
            + (
                ", ".join(f"{z}{'S' if s else 'N'}" for z, s in zones)
                or "none"
            )
        )
    return 0


def _cmd_stat(args) -> int:
    with TrajectoryStore(args.store) as store:
        span = store.time_span()
        box = store.bbox()
        print(f"store      {store.directory}")
        print(
            f"segments   {len(store.segment_names)} "
            f"({store.total_bytes()} bytes)"
        )
        print(f"devices    {len(store.devices())}")
        print(f"records    {store.record_count}")
        print(f"key points {store.key_point_count}")
        if span is not None:
            print(f"time span  [{span[0]:.3f}, {span[1]:.3f}]")
        if box is not None:
            print(
                f"bbox       [{box[0]:.2f}, {box[1]:.2f}] .. "
                f"[{box[2]:.2f}, {box[3]:.2f}]"
            )
        coverage = store.index_report()
        print(
            f"index      {coverage['sidecar_segments']}/"
            f"{coverage['segments']} segments sidecar-indexed "
            f"({coverage['sidecar_rows']}/{coverage['rows']} rows "
            "served via mmap)"
        )
        if store.scan_report:
            for segment, dropped in sorted(store.scan_report.items()):
                print(
                    f"warning    {segment}: {dropped} trailing bytes "
                    f"unreadable (truncated/corrupt tail)",
                    file=sys.stderr,
                )
    return 0


def _cmd_query(args) -> int:
    if args.rect is None and args.geo_rect is None and args.t0 is None:
        raise SystemExit("query needs --rect, --geo-rect and/or --t0/--t1")
    if args.rect is not None and args.geo_rect is not None:
        raise SystemExit("--rect and --geo-rect are mutually exclusive")
    if (args.t0 is None) != (args.t1 is None):
        raise SystemExit("--t0 and --t1 must be given together")
    with TrajectoryStore(args.store) as store:
        try:
            if args.geo_rect is not None:
                matches = geo_range_query(
                    store,
                    _parse_rect(args.geo_rect, "--geo-rect"),
                    mode=args.mode,
                    t0=args.t0,
                    t1=args.t1,
                )
            elif args.rect is not None:
                matches = range_query(
                    store,
                    _parse_rect(args.rect),
                    mode=args.mode,
                    t0=args.t0,
                    t1=args.t1,
                )
            else:
                matches = time_window_query(store, args.t0, args.t1)
        except ValueError as exc:
            # Degenerate/out-of-range rectangles and windows: a usage
            # error, reported like every other one (not a traceback).
            raise SystemExit(str(exc))
        for m in sorted(matches, key=lambda m: (m.device_id, m.ref.t_min)):
            flag = "definite" if m.definite else "possible"
            where = f"{m.ref.segment}@{m.ref.offset}"
            if m.geo_envelope is not None:
                where = (
                    f"lat=[{m.geo_envelope[0]:.5f}, {m.geo_envelope[2]:.5f}] "
                    f"lon=[{m.geo_envelope[1]:.5f}, {m.geo_envelope[3]:.5f}] "
                    f"zone={m.ref.utm_zone}{'S' if m.ref.utm_south else 'N'}  "
                    + where
                )
            print(
                f"{m.device_id}  {flag}  t=[{m.ref.t_min:.3f}, "
                f"{m.ref.t_max:.3f}]  keys={m.ref.n_key_points}  {where}"
            )
        devices = sorted({m.device_id for m in matches})
        print(
            f"{len(matches)} record(s), {len(devices)} device(s)",
            file=sys.stderr,
        )
    return 0


def _cmd_compact(args) -> int:
    with TrajectoryStore(args.store) as store:
        stats = store.compact()
    print(
        f"compacted: {stats['records']} live records, "
        f"{stats['bytes_before']} -> {stats['bytes_after']} bytes"
    )
    return 0


def _cmd_migrate(args) -> int:
    try:
        stats = migrate_store(args.store)
    except ValueError as exc:
        raise SystemExit(str(exc))
    action = (
        f"migrated from format {stats['from_format']}"
        if stats["migrated"]
        else "already current format"
    )
    print(
        f"{args.store}: {action}; {stats['records']} records in "
        f"{stats['segments']} segment(s), {stats['sidecars']} sidecar(s) "
        "written"
    )
    if stats["dropped_bytes"]:
        print(
            f"warning    {stats['dropped_bytes']} unreadable trailing "
            "bytes dropped (damaged tails)",
            file=sys.stderr,
        )
    return 0


def _cmd_reindex(args) -> int:
    with TrajectoryStore(args.store) as store:
        count = store.reindex()
        records = store.record_count
    print(f"reindexed: {count} sidecar(s) rewritten, {records} records")
    return 0


def synthetic_fill(store: TrajectoryStore, records: int, devices: int) -> None:
    """Append deterministic tiny zone-stamped trajectories, fast.

    Two key points each, spread over a ~50x50 km patch of UTM zone 33N so
    the grid pruning has structure to bite on; no randomness, so every
    run of the smoke lays down byte-identical stores.
    """
    from ..model.point import PlanePoint
    from ..model.projection import UTMProjection
    from ..model.trajectory import CompressedTrajectory

    projection = UTMProjection(zone=33, south=False)
    start = store.record_count
    for i in range(start, start + records):
        device = i % devices
        t = float(i // devices) * 60.0
        x = 350_000.0 + (device * 37 % 997) * 50.0 + (i % 97) * 2.0
        y = 4_600_000.0 + (device * 61 % 997) * 50.0 + (i % 89) * 2.0
        store.append(
            f"dev-{device:05d}",
            CompressedTrajectory(
                key_points=(
                    PlanePoint(x, y, t),
                    PlanePoint(x + 25.0, y + 18.0, t + 30.0),
                ),
                original_count=30,
                tolerance=10.0,
                algorithm="bqs",
                frame=projection,
            ),
        )


def _cmd_scale_smoke(args) -> int:
    build_start = time.perf_counter()
    with TrajectoryStore(args.store) as store:
        missing = args.records - store.record_count
        if missing > 0:
            synthetic_fill(store, missing, args.devices)
        total = store.record_count
    build_wall = time.perf_counter() - build_start

    open_start = time.perf_counter()
    store = TrajectoryStore(args.store)
    open_wall = time.perf_counter() - open_start
    try:
        coverage = store.index_report()
        box = store.bbox()
        (zone, south) = sorted(store.stamped_frames())[0]
        from ..model.projection import UTMProjection

        projection = UTMProjection(zone=zone, south=south)
        # The middle ninth of the covered plane, unprojected: a realistic
        # geographic rectangle derived from the data itself.
        corners = [
            projection.inverse(
                box[0] + (box[2] - box[0]) / 3.0,
                box[1] + (box[3] - box[1]) / 3.0,
            ),
            projection.inverse(
                box[0] + 2.0 * (box[2] - box[0]) / 3.0,
                box[1] + 2.0 * (box[3] - box[1]) / 3.0,
            ),
        ]
        geo_rect = (
            min(c[0] for c in corners),
            min(c[1] for c in corners),
            max(c[0] for c in corners),
            max(c[1] for c in corners),
        )
        fast_start = time.perf_counter()
        fast = geo_range_query(store, geo_rect, mode="approximate")
        fast_wall = time.perf_counter() - fast_start
    finally:
        store.close()

    # The same question answered without sidecars: full envelope scan on
    # open, linear candidate selection — the fallback path must agree
    # record for record.
    scan_start = time.perf_counter()
    scan_store = TrajectoryStore(args.store, index_sidecars=False)
    scan_open_wall = time.perf_counter() - scan_start
    try:
        slow = geo_range_query(scan_store, geo_rect, mode="approximate")
    finally:
        scan_store.close()

    fast_key = [(m.ref.segment, m.ref.offset, m.device_id) for m in fast]
    slow_key = [(m.ref.segment, m.ref.offset, m.device_id) for m in slow]
    print(
        f"{total} records ({build_wall:.2f}s build): open {open_wall*1e3:.1f}ms "
        f"indexed vs {scan_open_wall*1e3:.1f}ms scan "
        f"({scan_open_wall / max(open_wall, 1e-9):.0f}x), "
        f"{coverage['sidecar_segments']}/{coverage['segments']} segments via "
        f"sidecar, geo query {len(fast)} matches in {fast_wall*1e3:.1f}ms"
    )
    if fast_key != slow_key:
        print(
            f"FAIL: mmap path returned {len(fast)} matches, fallback scan "
            f"{len(slow)} — the paths disagree",
            file=sys.stderr,
        )
        return 1
    if coverage["scanned_segments"]:
        print(
            f"FAIL: {coverage['scanned_segments']} segment(s) fell back to "
            "the envelope scan on a clean reopen",
            file=sys.stderr,
        )
        return 1
    if open_wall > args.max_open_seconds:
        print(
            f"FAIL: indexed open took {open_wall:.3f}s "
            f"(budget {args.max_open_seconds:.3f}s)",
            file=sys.stderr,
        )
        return 1
    print(
        "scale-smoke: PASS (mmap and scan paths agree; open within budget)"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.storage",
        description="Persist, inspect and query compressed trajectories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("ingest", help="stream a simulated fleet into a store")
    p.add_argument("store", help="store directory (created if missing)")
    p.add_argument("--devices", type=int, default=50)
    p.add_argument("--fixes", type=int, default=200, help="fixes per device")
    p.add_argument("--epsilon", type=float, default=10.0, help="metres")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--batch", type=int, default=4096, help="fixes per batch")
    p.add_argument("--max-devices", type=int, default=None)
    p.add_argument("--idle-timeout", type=float, default=None)
    p.add_argument(
        "--geodetic",
        action="store_true",
        help="simulate raw GPS fixes and ingest through the geodetic "
        "front-end (zone-stamped blobs)",
    )
    p.add_argument(
        "--multi-zone",
        action="store_true",
        help="with --geodetic: fleet straddles two UTM zone boundaries",
    )
    p.add_argument(
        "--noise-m",
        type=float,
        default=0.0,
        help="with --geodetic: Gaussian GPS noise sigma in metres",
    )
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser("stat", help="summarize a store")
    p.add_argument("store")
    p.set_defaults(func=_cmd_stat)

    p = sub.add_parser("query", help="time-window / spatial-range query")
    p.add_argument("store")
    p.add_argument("--rect", default=None, metavar="XMIN,YMIN,XMAX,YMAX")
    p.add_argument(
        "--geo-rect",
        default=None,
        metavar="LATMIN,LONMIN,LATMAX,LONMAX",
        help="geographic rectangle in degrees (zone-stamped records are "
        "each tested in their own UTM frame); use --geo-rect=... when "
        "the first value is negative",
    )
    p.add_argument("--t0", type=float, default=None)
    p.add_argument("--t1", type=float, default=None)
    p.add_argument(
        "--mode",
        choices=("exact", "approximate"),
        default="exact",
        help="range mode: exact decodes candidates, approximate is index-only",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("compact", help="rewrite live records, drop dead data")
    p.add_argument("store")
    p.set_defaults(func=_cmd_compact)

    p = sub.add_parser(
        "migrate",
        help="upgrade a format-1/format-2 store directory in place",
    )
    p.add_argument("store")
    p.set_defaults(func=_cmd_migrate)

    p = sub.add_parser(
        "reindex", help="rebuild every index sidecar from the segment logs"
    )
    p.add_argument("store")
    p.set_defaults(func=_cmd_reindex)

    p = sub.add_parser(
        "scale-smoke",
        help="CI guard: synthetic fill, timed lazy reopen, mmap-vs-scan "
        "query parity",
    )
    p.add_argument("store", help="store directory (filled on first run)")
    p.add_argument("--records", type=int, default=50_000)
    p.add_argument("--devices", type=int, default=250)
    p.add_argument(
        "--max-open-seconds",
        type=float,
        default=2.0,
        help="hard wall-clock budget for the sidecar-indexed reopen",
    )
    p.set_defaults(func=_cmd_scale_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
