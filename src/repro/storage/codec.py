"""Compact binary codec for compressed trajectories.

Key points are highly compressible even after BQS has discarded most of
the stream: timestamps are near-monotone ramps and coordinates move by
bounded steps, so **delta-encoded fixed-point zig-zag varints** store a
typical key point in a handful of bytes instead of the 24 a raw
``(t, x, y)`` double triple costs.  The layout (all integers are
little-endian; "varint" is the LEB128-style 7-bits-per-byte unsigned
form, "svarint" its zig-zag-mapped signed form):

========================  =====================================================
``magic``                 4 bytes, ``b"BQTC"``
``version``               u8 (currently 1)
``flags``                 u8; bit 0 = a UTM zone follows the quanta
``metric``                u8 (:data:`_METRIC_IDS`)
``algorithm``             u8 length + UTF-8 bytes (the compressor's name)
``epsilon``               f64 (``inf`` for unbounded algorithms)
``original_count``        varint (raw points the trajectory represents)
``n``                     varint (key points)
``xy_quantum``            f64 (metres per coordinate quantum)
``t_quantum``             f64 (seconds per timestamp quantum)
``utm zone, south``       u8 + u8, only when flags bit 0 is set
``ts column``             ``n`` svarints: first absolute quantum count, then deltas
``xs column``             same
``ys column``             same
========================  =====================================================

Values are quantized as ``q = round(v / quantum)`` and decoded as
``q * quantum`` — so decoding is exact *at the quantum* (default 1 cm in
space, 1 ms in time, both far below GPS error and ε), and
encode → decode → encode is byte-identical, which the round-trip fuzz
tests pin.  Columns are delta-encoded against the previous key point;
timestamps being non-decreasing makes their deltas non-negative, but the
signed form is kept for all three columns so one primitive serves.

The codec is the serialization boundary of the storage layer:
:mod:`repro.storage.store` frames these blobs into its segmented log and
:mod:`repro.storage.query` reads them back through
:func:`decode_trajectory`.
"""

from __future__ import annotations

import math
import struct
from array import array
from dataclasses import dataclass
from typing import Tuple

from ..geometry.metrics import DistanceMetric
from ..model.columns import TrajectoryColumns
from ..model.point import PlanePoint, plane_points_from_flat
from ..model.projection import UTMProjection
from ..model.trajectory import CompressedTrajectory

__all__ = [
    "DEFAULT_XY_QUANTUM",
    "DEFAULT_T_QUANTUM",
    "MAGIC",
    "CodecError",
    "DecodedTrajectory",
    "encode_trajectory",
    "decode_trajectory",
    "quantize",
]

MAGIC = b"BQTC"
_VERSION = 1
_FLAG_UTM = 0x01

#: 1 cm spatial resolution: two orders of magnitude below civilian GPS
#: accuracy and three below a typical ε, so quantization error is noise.
DEFAULT_XY_QUANTUM = 0.01
#: 1 ms timestamp resolution (GPS fixes carry at most centisecond stamps).
DEFAULT_T_QUANTUM = 0.001

#: Stable wire ids for the deviation metric — enum *values* are part of the
#: on-disk format, so they are pinned here rather than derived from the
#: enum's definition order.
_METRIC_IDS = {
    DistanceMetric.POINT_TO_LINE: 0,
    DistanceMetric.POINT_TO_SEGMENT: 1,
}
_METRIC_BY_ID = {v: k for k, v in _METRIC_IDS.items()}

_F64 = struct.Struct("<d")


class CodecError(ValueError):
    """The byte stream is not a valid encoded trajectory."""


def quantize(value: float, quantum: float) -> int:
    """The quantum count a value encodes as; ``quantize(v, q) * q`` is the
    exact coordinate decoding will reproduce."""
    return round(value / quantum)


# -- varint primitives -------------------------------------------------------


def _append_uvarint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _append_svarint(buf: bytearray, value: int) -> None:
    # Zig-zag: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...
    _append_uvarint(buf, (value << 1) if value >= 0 else ((-value << 1) - 1))


#: Longest legal varint: 10 bytes encode up to 70 payload bits, enough for
#: any value this codec produces (quantum counts fit i64 by construction).
#: Without the cap, a hostile run of continuation bytes (``b"\x80" * k``)
#: would manufacture an arbitrarily large bigint — and downstream float
#: arithmetic on it would escape as ``OverflowError`` instead of
#: :class:`CodecError`.
_MAX_VARINT_BYTES = 10


def _read_uvarint(data, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    n = len(data)
    while True:
        if pos >= n:
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift >= 7 * _MAX_VARINT_BYTES:
            raise CodecError(
                f"varint longer than {_MAX_VARINT_BYTES} bytes"
            )


def _read_svarint(data, pos: int) -> Tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos


# -- encode ------------------------------------------------------------------


#: Signed range a column value (absolute or delta) may occupy on the wire:
#: zig-zag into the decoder's 10-byte (70-bit) varint cap.  The encoder
#: enforces it so every blob it produces is decodable — without the guard,
#: an extreme coordinate/quantum combination would encode fine and then be
#: rejected by its own reader.
_SVARINT_MIN = -(1 << 69)
_SVARINT_MAX = (1 << 69) - 1


def _encode_column(buf: bytearray, values, quantum: float) -> Tuple[int, int]:
    """Delta-encode one column; returns its ``(min, max)`` quantum counts
    (``(0, 0)`` for an empty column) so callers can derive the envelope
    from the same quantization pass."""
    prev = 0
    first = True
    q_min = q_max = 0
    for v in values:
        q = round(v / quantum)  # quantize() inlined — keep the two in sync
        if first:
            delta = q
            first = False
            q_min = q_max = q
        else:
            delta = q - prev
            if q < q_min:
                q_min = q
            elif q > q_max:
                q_max = q
        if not _SVARINT_MIN <= delta <= _SVARINT_MAX:
            raise ValueError(
                f"value {v!r} at quantum {quantum!r} needs {delta} quanta "
                "of delta — beyond the codec's 70-bit wire range"
            )
        _append_svarint(buf, delta)
        prev = q
    return q_min, q_max


def encode_trajectory(
    trajectory: CompressedTrajectory,
    *,
    xy_quantum: float = DEFAULT_XY_QUANTUM,
    t_quantum: float = DEFAULT_T_QUANTUM,
    projection: UTMProjection | None = None,
) -> bytes:
    """Encode a compressed trajectory to its binary form.

    ``projection`` optionally stamps the UTM zone/hemisphere the plane
    coordinates live in, so a reader can unproject decoded key points back
    to GPS without out-of-band context; when omitted, the trajectory's own
    :attr:`~repro.model.trajectory.CompressedTrajectory.frame` (stamped by
    the geodetic engine front-end) is used.  ``z`` is not stored (the
    codec covers the 2-D hot path).
    """
    return _encode_with_bounds(
        trajectory,
        xy_quantum=xy_quantum,
        t_quantum=t_quantum,
        projection=projection,
    )[0]


def _encode_with_bounds(
    trajectory: CompressedTrajectory,
    *,
    xy_quantum: float,
    t_quantum: float,
    projection: UTMProjection | None,
) -> Tuple[bytes, Tuple[int, int, int, int, int, int]]:
    """:func:`encode_trajectory` plus the per-column quantum-count bounds
    ``(t_min, t_max, x_min, x_max, y_min, y_max)`` — the store derives its
    index envelope from the same quantization pass that produced the
    bytes, so the two can never disagree."""
    if projection is None:
        projection = trajectory.frame
    if not (xy_quantum > 0.0 and math.isfinite(xy_quantum)):
        raise ValueError(f"xy_quantum must be positive and finite, got {xy_quantum!r}")
    if not (t_quantum > 0.0 and math.isfinite(t_quantum)):
        raise ValueError(f"t_quantum must be positive and finite, got {t_quantum!r}")
    metric_id = _METRIC_IDS.get(trajectory.metric)
    if metric_id is None:
        raise ValueError(f"metric {trajectory.metric!r} has no wire id")
    name = trajectory.algorithm.encode("utf-8")
    if len(name) > 0xFF:
        raise ValueError(f"algorithm name too long to encode ({len(name)} bytes)")

    buf = bytearray(MAGIC)
    buf.append(_VERSION)
    buf.append(_FLAG_UTM if projection is not None else 0)
    buf.append(metric_id)
    buf.append(len(name))
    buf += name
    buf += _F64.pack(trajectory.tolerance)
    _append_uvarint(buf, trajectory.original_count)
    _append_uvarint(buf, len(trajectory.key_points))
    buf += _F64.pack(xy_quantum)
    buf += _F64.pack(t_quantum)
    if projection is not None:
        buf.append(projection.zone)
        buf.append(1 if projection.south else 0)
    cols = trajectory.to_columns()
    t_min, t_max = _encode_column(buf, cols.ts, t_quantum)
    x_min, x_max = _encode_column(buf, cols.xs, xy_quantum)
    y_min, y_max = _encode_column(buf, cols.ys, xy_quantum)
    return bytes(buf), (t_min, t_max, x_min, x_max, y_min, y_max)


# -- decode ------------------------------------------------------------------


@dataclass(frozen=True)
class DecodedTrajectory:
    """A decoded trajectory: header fields plus columnar key points."""

    columns: TrajectoryColumns
    algorithm: str
    epsilon: float
    metric: DistanceMetric
    original_count: int
    xy_quantum: float
    t_quantum: float
    utm_zone: int | None
    utm_south: bool
    encoded_bytes: int  #: size of the blob this was decoded from

    def __len__(self) -> int:
        return len(self.columns)

    @property
    def bytes_per_key_point(self) -> float:
        """Encoded bytes per stored key point."""
        n = len(self.columns)
        return self.encoded_bytes / n if n else float(self.encoded_bytes)

    @property
    def bytes_per_raw_point(self) -> float:
        """Encoded bytes per *original* GPS point — the end-to-end figure."""
        n = self.original_count
        return self.encoded_bytes / n if n else float(self.encoded_bytes)

    def projection(self) -> UTMProjection | None:
        """The UTM projection stamped at encode time, if any."""
        if self.utm_zone is None:
            return None
        return UTMProjection(zone=self.utm_zone, south=self.utm_south)

    def key_points(self) -> list[PlanePoint]:
        """Materialize the decoded key points (``z`` = 0)."""
        flat: list = []
        push = flat.extend
        for t, x, y in self.columns:
            push((x, y, t, 0.0))
        return plane_points_from_flat(flat)

    def to_trajectory(self) -> CompressedTrajectory:
        """Rebuild the :class:`CompressedTrajectory` (at quantum precision).

        The stamped UTM frame, if any, comes back as the trajectory's
        ``frame``, so re-encoding a decoded blob stays byte-identical even
        for zone-stamped blobs.
        """
        return CompressedTrajectory(
            key_points=tuple(self.key_points()),
            original_count=self.original_count,
            metric=self.metric,
            tolerance=self.epsilon,
            algorithm=self.algorithm,
            frame=self.projection(),
        )


def _decode_column(data, pos: int, n: int, quantum: float):
    out = array("d")
    append = out.append
    q = 0
    try:
        for i in range(n):
            delta, pos = _read_svarint(data, pos)
            q = delta if i == 0 else q + delta
            append(q * quantum)
    except OverflowError as exc:
        # Capped varints still admit quantum counts up to ~2^70, and the
        # quantum itself is an arbitrary f64 from the header — a corrupt
        # combination can overflow the float product.  That is bad input,
        # not an arithmetic bug.
        raise CodecError(f"column value overflows a float: {exc}") from exc
    return out, pos


def decode_trajectory(data: bytes | bytearray | memoryview) -> DecodedTrajectory:
    """Decode one encoded trajectory; raises :class:`CodecError` on bad input."""
    data = memoryview(data)
    if len(data) < 8:
        raise CodecError(f"blob too short ({len(data)} bytes)")
    if bytes(data[:4]) != MAGIC:
        raise CodecError(f"bad magic {bytes(data[:4])!r}")
    version = data[4]
    if version != _VERSION:
        raise CodecError(f"unsupported codec version {version}")
    flags = data[5]
    metric_id = data[6]
    metric = _METRIC_BY_ID.get(metric_id)
    if metric is None:
        raise CodecError(f"unknown metric id {metric_id}")
    name_len = data[7]
    pos = 8
    if pos + name_len + 8 > len(data):
        raise CodecError("truncated header")
    try:
        algorithm = bytes(data[pos : pos + name_len]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"algorithm name is not valid UTF-8: {exc}") from exc
    pos += name_len
    epsilon = _F64.unpack_from(data, pos)[0]
    pos += 8
    original_count, pos = _read_uvarint(data, pos)
    n, pos = _read_uvarint(data, pos)
    if pos + 16 > len(data):
        raise CodecError("truncated header")
    xy_quantum = _F64.unpack_from(data, pos)[0]
    t_quantum = _F64.unpack_from(data, pos + 8)[0]
    pos += 16
    if not (xy_quantum > 0.0 and t_quantum > 0.0):
        raise CodecError(
            f"non-positive quanta (xy={xy_quantum!r}, t={t_quantum!r})"
        )
    utm_zone: int | None = None
    utm_south = False
    if flags & _FLAG_UTM:
        if pos + 2 > len(data):
            raise CodecError("truncated header")
        utm_zone = data[pos]
        utm_south = bool(data[pos + 1])
        pos += 2
        if not 1 <= utm_zone <= 60:
            raise CodecError(f"UTM zone out of range: {utm_zone}")
    # A key point costs at least one varint byte per column, so a claimed
    # count beyond a third of the remaining bytes cannot be honest — catch
    # it here instead of looping over a fabricated multi-gigabyte n.
    if 3 * n > len(data) - pos:
        raise CodecError(
            f"claimed {n} key points but only {len(data) - pos} column "
            "bytes remain"
        )
    ts, pos = _decode_column(data, pos, n, t_quantum)
    xs, pos = _decode_column(data, pos, n, xy_quantum)
    ys, pos = _decode_column(data, pos, n, xy_quantum)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after columns")
    cols = TrajectoryColumns()
    cols.ts, cols.xs, cols.ys = ts, xs, ys
    return DecodedTrajectory(
        columns=cols,
        algorithm=algorithm,
        epsilon=epsilon,
        metric=metric,
        original_count=original_count,
        xy_quantum=xy_quantum,
        t_quantum=t_quantum,
        utm_zone=utm_zone,
        utm_south=utm_south,
        encoded_bytes=len(data),
    )
