"""The append-only segmented trajectory store.

:class:`TrajectoryStore` persists codec blobs in numbered segment files
under one directory, with the durability story of a write-ahead log:

* **Crash-safe appends.**  Every record is framed ``u32 payload length |
  u32 CRC-32 | payload`` and appends go to the tail of the active
  segment only.  A crash mid-write leaves a truncated or corrupt tail;
  opening the store tolerates it — the scan keeps every record up to the
  first bad frame in each segment and reports what it dropped, exactly
  the contract of a log-structured store.
* **Segment manifest.**  ``manifest.json`` names the live segment files
  and is replaced atomically (write-new + ``os.replace``), so compaction
  has a single commit point; segment files not in the manifest are
  compaction leftovers and are ignored on open, removed by the next
  :meth:`compact`.
* **In-memory index.**  Opening scans only the fixed-size record
  *envelopes* (device id, key-point count, time span, bounding box —
  computed at append time with the codec's own quantization, so they
  agree bit-for-bit with decoded coordinates) and builds per-device
  manifests plus the global record list :mod:`repro.storage.query` runs
  on.  Blobs are only read back by :meth:`read`.
* **Deletes and compaction.**  :meth:`delete_device` appends a tombstone
  record; the device's earlier records drop from the index immediately
  and from disk at the next :meth:`compact`, which rewrites live records
  into fresh segments and commits via the manifest.

The store is **single-writer** (one open handle appends; any number of
processes may read sealed segments).  For a sharded fleet, give each
shard its own store directory — :func:`shard_store_sink` builds exactly
that for :class:`~repro.engine.sharded.ShardedStreamEngine`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from ..model.projection import UTMProjection
from ..model.trajectory import CompressedTrajectory
from .codec import (
    DEFAULT_T_QUANTUM,
    DEFAULT_XY_QUANTUM,
    CodecError,
    DecodedTrajectory,
    _append_uvarint,
    _encode_with_bounds,
    _read_uvarint,
    decode_trajectory,
)

__all__ = ["RecordRef", "TrajectoryStore", "StoreSink", "shard_store_sink"]

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
# t_min t_max x_min x_max y_min y_max epsilon, then the UTM frame the
# coordinates live in: zone (0 = unstamped / already planar) and
# hemisphere.  Keeping the frame in the envelope — not just the blob
# header — lets geographic queries project a lat/lon rectangle into each
# candidate record's own zone without decoding a single blob.
_ENVELOPE = struct.Struct("<7d2B")

_RT_TRAJECTORY = 1
_RT_TOMBSTONE = 2

_MANIFEST = "manifest.json"
_SEGMENT_FMT = "seg-{:08d}.log"
#: On-disk record format.  2 added the UTM zone/hemisphere bytes to the
#: envelope; stores written at format 1 must be re-ingested (the store is
#: a derived artifact of its input stream, so there is no migration).
_FORMAT = 2

#: Default segment roll threshold; small enough that compaction and tail
#: damage touch bounded data, large enough that a fleet run stays in a
#: handful of files.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class RecordRef:
    """Index entry for one stored trajectory (envelope, not the blob)."""

    device_id: str
    segment: str  #: segment file name
    offset: int  #: byte offset of the record frame in the segment
    length: int  #: total framed record length in bytes
    n_key_points: int
    t_min: float
    t_max: float
    x_min: float
    x_max: float
    y_min: float
    y_max: float
    #: The trajectory's declared error bound (``inf`` when unbounded),
    #: mirrored out of the blob header so the query screen never decodes.
    epsilon: float
    #: UTM zone the plane coordinates live in (``None`` for records stored
    #: from already-planar fixes) and its hemisphere — the frame geographic
    #: queries project their lat/lon rectangle into, per record.
    utm_zone: int | None = None
    utm_south: bool = False

    def projection(self) -> UTMProjection | None:
        """The stamped UTM frame, if any (mirrors the blob header)."""
        if self.utm_zone is None:
            return None
        return UTMProjection(zone=self.utm_zone, south=self.utm_south)


class TrajectoryStore:
    """Append-only segmented store of encoded compressed trajectories."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = False,
    ) -> None:
        if segment_max_bytes < 4096:
            raise ValueError(
                f"segment_max_bytes must be >= 4096, got {segment_max_bytes!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_max_bytes = segment_max_bytes
        self._fsync = fsync
        self._records: List[RecordRef] = []
        self._by_device: Dict[str, List[RecordRef]] = {}
        self._segments: List[str] = []
        self._next_segment = 1
        self._handle = None
        self._active: str | None = None
        self._active_size = 0
        self._read_handle = None
        self._read_segment: str | None = None
        self._closed = False
        #: Records dropped by the open scan: damaged tail frames (count)
        #: per segment — non-empty after recovering from a crash.
        self.scan_report: Dict[str, int] = {}
        self._load()

    # -- open-time scan ------------------------------------------------------

    def _load(self) -> None:
        manifest_path = self.directory / _MANIFEST
        if manifest_path.exists():
            with open(manifest_path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            fmt = int(doc.get("format", 1))
            if fmt != _FORMAT:
                raise ValueError(
                    f"{self.directory}: store format {fmt} is not supported "
                    f"(this build reads/writes format {_FORMAT}; re-ingest "
                    "the source stream)"
                )
            self._segments = [
                name for name in doc.get("segments", [])
                if (self.directory / name).exists()
            ]
            self._next_segment = int(doc.get("next_segment", 1))
        else:
            self._segments = sorted(
                p.name for p in self.directory.glob("seg-*.log")
            )
            if self._segments:
                self._next_segment = (
                    int(self._segments[-1][4:-4], 10) + 1
                )
        for name in self._segments:
            self._scan_segment(name)
        if self._segments:
            self._active = self._segments[-1]
            self._active_size = (self.directory / self._active).stat().st_size

    def _scan_segment(self, name: str) -> None:
        path = self.directory / name
        with open(path, "rb") as handle:
            data = handle.read()
        pos = 0
        end = len(data)
        while pos + _FRAME.size <= end:
            length, crc = _FRAME.unpack_from(data, pos)
            if length == 0:
                break  # zeroed tail (crc32(b"") == 0 would pass the check)
            payload_start = pos + _FRAME.size
            payload_end = payload_start + length
            if payload_end > end:
                break  # truncated tail: a crash mid-append
            payload = data[payload_start:payload_end]
            if zlib.crc32(payload) != crc:
                break  # corrupt tail: stop trusting this segment here
            try:
                self._index_payload(name, pos, _FRAME.size + length, payload)
            except (CodecError, IndexError, UnicodeDecodeError):
                # Unparseable envelope (CRC collisions are possible on
                # arbitrary damage): treat like a bad frame.
                break
            pos = payload_end
        if pos < end:
            self.scan_report[name] = end - pos

    def _index_payload(
        self, segment: str, offset: int, length: int, payload: bytes
    ) -> None:
        rtype = payload[0]
        id_len, p = _read_uvarint(payload, 1)
        device_id = payload[p : p + id_len].decode("utf-8")
        p += id_len
        if rtype == _RT_TOMBSTONE:
            if self._by_device.pop(device_id, None) is not None:
                self._records = [
                    r for r in self._records if r.device_id != device_id
                ]
            return
        if rtype != _RT_TRAJECTORY:
            raise CodecError(f"unknown record type {rtype}")
        if p + _ENVELOPE.size > len(payload):
            raise CodecError("truncated envelope")
        t_min, t_max, x_min, x_max, y_min, y_max, epsilon, zone, south = (
            _ENVELOPE.unpack_from(payload, p)
        )
        p += _ENVELOPE.size
        if zone > 60:
            raise CodecError(f"UTM zone out of range: {zone}")
        n_keys, p = _read_uvarint(payload, p)
        ref = RecordRef(
            device_id=device_id,
            segment=segment,
            offset=offset,
            length=length,
            n_key_points=n_keys,
            t_min=t_min,
            t_max=t_max,
            x_min=x_min,
            x_max=x_max,
            y_min=y_min,
            y_max=y_max,
            epsilon=epsilon,
            utm_zone=zone if zone else None,
            utm_south=bool(south),
        )
        self._records.append(ref)
        self._by_device.setdefault(device_id, []).append(ref)

    # -- writing -------------------------------------------------------------

    def _write_manifest(self) -> None:
        tmp = self.directory / (_MANIFEST + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "format": _FORMAT,
                    "segments": self._segments,
                    "next_segment": self._next_segment,
                },
                handle,
            )
            handle.write("\n")
            if self._fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, self.directory / _MANIFEST)

    def _open_segment(self) -> None:
        name = _SEGMENT_FMT.format(self._next_segment)
        self._next_segment += 1
        self._segments.append(name)
        # Commit the segment to the manifest before any record lands in it,
        # so a crash can never leave indexed-but-unlisted data.
        self._write_manifest()
        # "wb", not "ab": a crashed compaction can leave an orphan file
        # under this name (written but never committed to the manifest);
        # appending would land new frames behind its stale ones while the
        # offset accounting starts at zero.  Truncate whatever is there.
        self._handle = open(self.directory / name, "wb")
        self._active = name
        self._active_size = 0

    def _ensure_writable(self) -> None:
        if self._closed:
            raise RuntimeError("store is closed")
        if self._handle is None:
            # A segment whose tail was damaged is sealed: bytes appended
            # after the bad frame would be unreachable to the open scan,
            # which stops at the first unreadable record.  Roll instead.
            if (
                self._active is not None
                and self._active_size < self._segment_max_bytes
                and self._active not in self.scan_report
            ):
                self._handle = open(self.directory / self._active, "ab")
            else:
                self._open_segment()
        elif self._active_size >= self._segment_max_bytes:
            self._handle.close()
            self._handle = None
            self._open_segment()

    def _append_frame(self, payload: bytes) -> Tuple[str, int, int]:
        self._ensure_writable()
        offset = self._active_size
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        self._handle.write(frame)
        self._handle.write(payload)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._active_size += len(frame) + len(payload)
        return self._active, offset, len(frame) + len(payload)

    def append(
        self,
        device_id: str,
        trajectory: CompressedTrajectory,
        *,
        xy_quantum: float = DEFAULT_XY_QUANTUM,
        t_quantum: float = DEFAULT_T_QUANTUM,
        projection: UTMProjection | None = None,
    ) -> RecordRef:
        """Encode and append one trajectory; returns its index entry.

        The envelope is computed from the *quantized* coordinates, so the
        index agrees exactly with what :meth:`read` will decode.  The UTM
        frame — ``projection`` when given, else the trajectory's own
        ``frame`` (stamped by the geodetic engine) — goes into both the
        blob header and the index envelope.
        """
        key_points = trajectory.key_points
        if not key_points:
            raise ValueError("cannot store an empty trajectory (no key points)")
        if projection is None:
            projection = trajectory.frame
        blob, bounds = _encode_with_bounds(
            trajectory,
            xy_quantum=xy_quantum,
            t_quantum=t_quantum,
            projection=projection,
        )
        # The envelope comes from the same quantization pass that produced
        # the bytes, so index and decoded coordinates agree exactly.
        t_min = bounds[0] * t_quantum
        t_max = bounds[1] * t_quantum
        x_min = bounds[2] * xy_quantum
        x_max = bounds[3] * xy_quantum
        y_min = bounds[4] * xy_quantum
        y_max = bounds[5] * xy_quantum

        device_bytes = device_id.encode("utf-8")
        payload = bytearray()
        payload.append(_RT_TRAJECTORY)
        _append_uvarint(payload, len(device_bytes))
        payload += device_bytes
        payload += _ENVELOPE.pack(
            t_min,
            t_max,
            x_min,
            x_max,
            y_min,
            y_max,
            trajectory.tolerance,
            projection.zone if projection is not None else 0,
            1 if projection is not None and projection.south else 0,
        )
        _append_uvarint(payload, len(key_points))
        _append_uvarint(payload, len(blob))
        payload += blob

        segment, offset, length = self._append_frame(bytes(payload))
        ref = RecordRef(
            device_id=device_id,
            segment=segment,
            offset=offset,
            length=length,
            n_key_points=len(key_points),
            t_min=t_min,
            t_max=t_max,
            x_min=x_min,
            x_max=x_max,
            y_min=y_min,
            y_max=y_max,
            epsilon=trajectory.tolerance,
            utm_zone=projection.zone if projection is not None else None,
            utm_south=projection.south if projection is not None else False,
        )
        self._records.append(ref)
        self._by_device.setdefault(device_id, []).append(ref)
        return ref

    def delete_device(self, device_id: str) -> int:
        """Tombstone a device: drop its records from the index now, from
        disk at the next :meth:`compact`.  Returns how many records died."""
        dead = self._by_device.pop(device_id, [])
        if dead:
            self._records = [
                r for r in self._records if r.device_id != device_id
            ]
        payload = bytearray()
        payload.append(_RT_TOMBSTONE)
        device_bytes = device_id.encode("utf-8")
        _append_uvarint(payload, len(device_bytes))
        payload += device_bytes
        self._append_frame(bytes(payload))
        return len(dead)

    # -- reading -------------------------------------------------------------

    @staticmethod
    def _parse_frame(frame: bytes, ref: RecordRef) -> bytes:
        if len(frame) != ref.length:
            raise CodecError(
                f"{ref.segment}@{ref.offset}: record extends past segment end"
            )
        length, crc = _FRAME.unpack_from(frame, 0)
        payload = frame[_FRAME.size :]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise CodecError(f"{ref.segment}@{ref.offset}: CRC mismatch")
        return payload

    def _close_read_handle(self) -> None:
        if self._read_handle is not None:
            self._read_handle.close()
            self._read_handle = None
            self._read_segment = None

    def _read_payload(self, ref: RecordRef) -> bytes:
        # Cache the open segment across reads: exact-mode range queries and
        # iter_decoded() visit many records per segment, and one open/seek
        # per record would dominate their cost.
        if ref.segment != self._read_segment:
            self._close_read_handle()
            self._read_handle = open(self.directory / ref.segment, "rb")
            self._read_segment = ref.segment
        self._read_handle.seek(ref.offset)
        frame = self._read_handle.read(ref.length)
        return self._parse_frame(frame, ref)

    def read(self, ref: RecordRef) -> DecodedTrajectory:
        """Decode the stored trajectory behind an index entry."""
        payload = self._read_payload(ref)
        id_len, p = _read_uvarint(payload, 1)
        p += id_len + _ENVELOPE.size
        n_keys, p = _read_uvarint(payload, p)
        blob_len, p = _read_uvarint(payload, p)
        return decode_trajectory(payload[p : p + blob_len])

    def records(self) -> List[RecordRef]:
        """Every live record, in append order."""
        return list(self._records)

    def device_manifest(self, device_id: str) -> List[RecordRef]:
        """One device's live records, in append order."""
        return list(self._by_device.get(device_id, ()))

    def devices(self) -> List[str]:
        """Device ids with at least one live record."""
        return list(self._by_device)

    def iter_decoded(self) -> Iterator[Tuple[RecordRef, DecodedTrajectory]]:
        """Decode every live record, in append order."""
        for ref in self._records:
            yield ref, self.read(ref)

    # -- stats ---------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def key_point_count(self) -> int:
        return sum(ref.n_key_points for ref in self._records)

    @property
    def segment_names(self) -> List[str]:
        return list(self._segments)

    def total_bytes(self) -> int:
        """Bytes on disk across live segment files."""
        total = 0
        for name in self._segments:
            path = self.directory / name
            if path.exists():
                total += path.stat().st_size
        return total

    def time_span(self) -> Tuple[float, float] | None:
        if not self._records:
            return None
        return (
            min(ref.t_min for ref in self._records),
            max(ref.t_max for ref in self._records),
        )

    def bbox(self) -> Tuple[float, float, float, float] | None:
        if not self._records:
            return None
        return (
            min(ref.x_min for ref in self._records),
            min(ref.y_min for ref in self._records),
            max(ref.x_max for ref in self._records),
            max(ref.y_max for ref in self._records),
        )

    # -- compaction ----------------------------------------------------------

    def compact(self) -> Dict[str, int]:
        """Rewrite live records into fresh segments; drop dead data.

        Live records are re-framed (in append order) into new segment
        files, the manifest is atomically repointed at them, and the old
        files — plus any orphans a crashed compaction left behind — are
        deleted.  Returns ``{"records": live, "bytes_before": ...,
        "bytes_after": ...}``.
        """
        if self._closed:
            raise RuntimeError("store is closed")
        bytes_before = self.total_bytes()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        # The cached read handle may point at a segment about to die.
        self._close_read_handle()
        old_segments = list(self._segments)

        # Re-frame every live record into new segments, streaming record
        # by record (bounded memory) with the source segment handle cached
        # across the run (records are indexed in append order, so source
        # segments are visited consecutively).
        new_segments: List[str] = []
        new_refs: List[RecordRef] = []
        handle = None
        size = 0
        src_name: str | None = None
        src_handle = None
        try:
            for ref in list(self._records):
                if ref.segment != src_name:
                    if src_handle is not None:
                        src_handle.close()
                    src_name = ref.segment
                    src_handle = open(self.directory / src_name, "rb")
                src_handle.seek(ref.offset)
                payload = self._parse_frame(
                    src_handle.read(ref.length), ref
                )
                if handle is None or size >= self._segment_max_bytes:
                    if handle is not None:
                        handle.close()
                    name = _SEGMENT_FMT.format(self._next_segment)
                    self._next_segment += 1
                    new_segments.append(name)
                    # "wb" truncates an orphan from an earlier crashed
                    # compaction that reused this segment number.
                    handle = open(self.directory / name, "wb")
                    size = 0
                frame = _FRAME.pack(len(payload), zlib.crc32(payload))
                offset = size
                handle.write(frame)
                handle.write(payload)
                size += len(frame) + len(payload)
                new_refs.append(
                    RecordRef(
                        device_id=ref.device_id,
                        segment=new_segments[-1],
                        offset=offset,
                        length=len(frame) + len(payload),
                        n_key_points=ref.n_key_points,
                        t_min=ref.t_min,
                        t_max=ref.t_max,
                        x_min=ref.x_min,
                        x_max=ref.x_max,
                        y_min=ref.y_min,
                        y_max=ref.y_max,
                        epsilon=ref.epsilon,
                        utm_zone=ref.utm_zone,
                        utm_south=ref.utm_south,
                    )
                )
            if handle is not None:
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
                handle.close()
                handle = None
        finally:
            if src_handle is not None:
                src_handle.close()
            if handle is not None:
                handle.close()

        # Commit point: the manifest now names only the new segments.
        self._segments = new_segments
        self._write_manifest()

        # Rebuild the index over the new layout.
        self._records = new_refs
        self._by_device = {}
        for ref in new_refs:
            self._by_device.setdefault(ref.device_id, []).append(ref)
        self._active = new_segments[-1] if new_segments else None
        self._active_size = (
            (self.directory / self._active).stat().st_size
            if self._active is not None
            else 0
        )

        # Old segments (and any orphans from earlier crashes) are dead.
        live = set(new_segments)
        for path in self.directory.glob("seg-*.log"):
            if path.name not in live:
                path.unlink()
        for name in old_segments:
            self.scan_report.pop(name, None)
        return {
            "records": len(new_refs),
            "bytes_before": bytes_before,
            "bytes_after": self.total_bytes(),
        }

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._close_read_handle()
        self._closed = True

    def __enter__(self) -> "TrajectoryStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"TrajectoryStore({str(self.directory)!r}, "
            f"records={len(self._records)}, segments={len(self._segments)})"
        )


class StoreSink:
    """A :class:`~repro.engine.sinks.Sink` that persists sealed streams.

    Every trajectory the engine seals — explicitly or by eviction — is
    encoded with the binary codec and appended to the store the moment it
    arrives, so a fleet run streams to disk with nothing retained in
    memory (pair with ``collect=False``).  Pass a directory to let the
    sink own (open and close) its store, or an open
    :class:`TrajectoryStore` to share one the caller manages.

    Zone stamping needs no configuration: trajectories sealed by the
    geodetic engine carry their UTM frame, and :meth:`TrajectoryStore.
    append` writes it into the blob and the index envelope.  An explicit
    ``projection=`` overrides the per-trajectory frames (for streams whose
    planar coordinates are known to share one zone).

    Device ids are stringified on write: the store keys records by UTF-8
    string, which round-trips the engine's string ids unchanged.
    """

    def __init__(
        self,
        store: TrajectoryStore | str | os.PathLike,
        *,
        xy_quantum: float = DEFAULT_XY_QUANTUM,
        t_quantum: float = DEFAULT_T_QUANTUM,
        projection: UTMProjection | None = None,
    ) -> None:
        self._owns = not isinstance(store, TrajectoryStore)
        self._store = (
            TrajectoryStore(store) if self._owns else store
        )
        self._xy_quantum = xy_quantum
        self._t_quantum = t_quantum
        self._projection = projection
        self.emitted = 0
        self.skipped_empty = 0

    @property
    def store(self) -> TrajectoryStore:
        return self._store

    def emit(self, device_id, trajectory: CompressedTrajectory) -> None:
        if not trajectory.key_points:
            self.skipped_empty += 1
            return
        self._store.append(
            device_id if isinstance(device_id, str) else str(device_id),
            trajectory,
            xy_quantum=self._xy_quantum,
            t_quantum=self._t_quantum,
            projection=self._projection,
        )
        self.emitted += 1

    def close(self) -> None:
        if self._owns:
            self._store.close()
        else:
            self._store.flush()


def shard_store_sink(base_directory: str, shard: int) -> StoreSink:
    """Per-shard sink factory for the sharded engine.

    The store is single-writer, so every worker gets its own directory:
    ``functools.partial(shard_store_sink, "/data/fleet")`` is picklable
    and, called as ``factory(shard)`` inside worker *i*, opens
    ``/data/fleet/shard-000i``.
    """
    return StoreSink(Path(base_directory) / f"shard-{shard:04d}")
