"""The append-only segmented trajectory store.

:class:`TrajectoryStore` persists codec blobs in numbered segment files
under one directory, with the durability story of a write-ahead log:

* **Crash-safe appends.**  Every record is framed ``u32 payload length |
  u32 CRC-32 | payload`` and appends go to the tail of the active
  segment only.  A crash mid-write leaves a truncated or corrupt tail;
  opening the store tolerates it — the scan keeps every record up to the
  first bad frame in each segment and reports what it dropped, exactly
  the contract of a log-structured store.
* **Segment manifest.**  ``manifest.json`` names the live segment files
  and is replaced atomically (write-new + ``os.replace``), so compaction
  has a single commit point; segment files not in the manifest are
  compaction leftovers and are ignored on open, removed by the next
  :meth:`compact`.  The manifest also carries a **generation** counter,
  bumped by compaction, which lets a reader that opened before a
  compaction detect that its index went stale (:class:`StaleStoreError`)
  instead of wandering into reaped segments.
* **Persistent index sidecars.**  Sealing a segment writes a packed
  ``.idx`` sidecar (:mod:`repro.storage.index`) holding every record
  envelope plus grid/block pruning summaries.  Opening the store reads
  only ``manifest.json`` and the sidecar footers — O(segments), not
  O(records) — and serves :meth:`records` / :meth:`candidates` through
  zero-copy ``mmap`` views.  The legacy envelope scan remains the
  fallback for the unsealed tail and for any segment whose sidecar is
  missing or fails validation (the sidecar is regenerated after a
  successful scan, and by :meth:`compact` / :meth:`reindex`).
* **Deletes and compaction.**  :meth:`delete_device` appends a tombstone
  record; the device's earlier records drop from the index immediately
  and from disk at the next :meth:`compact`, which rewrites live records
  into fresh segments and commits via the manifest.

The store is **single-writer** (one open handle appends; any number of
processes may read sealed segments).  For a sharded fleet, give each
shard its own store directory — :func:`shard_store_sink` builds exactly
that for :class:`~repro.engine.sharded.ShardedStreamEngine`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

from .. import fsio
from ..model.projection import UTMProjection
from ..model.trajectory import CompressedTrajectory
from .codec import (
    DEFAULT_T_QUANTUM,
    DEFAULT_XY_QUANTUM,
    CodecError,
    DecodedTrajectory,
    _append_uvarint,
    _encode_with_bounds,
    _read_uvarint,
    decode_trajectory,
)
from .index import (
    HEAD_CRC_BYTES,
    RecordRef,
    ScannedSegment,
    SegmentIndex,
    SidecarError,
    sidecar_path,
    write_sidecar,
)

__all__ = [
    "RecordRef",
    "StaleStoreError",
    "StoreFormatError",
    "TrajectoryStore",
    "StoreSink",
    "migrate_store",
    "shard_store_sink",
]

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
# t_min t_max x_min x_max y_min y_max epsilon, then the UTM frame the
# coordinates live in: zone (0 = unstamped / already planar) and
# hemisphere.  Keeping the frame in the envelope — not just the blob
# header — lets geographic queries project a lat/lon rectangle into each
# candidate record's own zone without decoding a single blob.
_ENVELOPE = struct.Struct("<7d2B")
#: The format-1 envelope (no UTM frame bytes) — only read by migration.
_ENVELOPE_V1 = struct.Struct("<7d")

_RT_TRAJECTORY = 1
_RT_TOMBSTONE = 2

_MANIFEST = "manifest.json"
_SEGMENT_FMT = "seg-{:08d}.log"
#: On-disk store format.  2 added the UTM zone/hemisphere bytes to the
#: envelope; 3 added the manifest generation counter and the ``.idx``
#: index sidecars.  Older directories upgrade in place via
#: :func:`migrate_store` (``python -m repro.storage migrate``).
_FORMAT = 3

#: Default segment roll threshold; small enough that compaction and tail
#: damage touch bounded data, large enough that a fleet run stays in a
#: handful of files.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


class StaleStoreError(RuntimeError):
    """A read hit a segment that is no longer part of the store.

    Raised when a :class:`RecordRef` (obtained before a compaction —
    possibly by another process) points into a segment the manifest no
    longer names.  When the on-disk generation has moved past this
    handle's, the store reloads its index before raising, so the caller
    can simply re-run the query on fresh refs.
    """


class StoreFormatError(ValueError):
    """The directory's on-disk format is one this build cannot serve.

    Subclasses ``ValueError`` so pre-existing ``except ValueError``
    handling keeps working; the message names the found and supported
    formats and the migration command.
    """


class TrajectoryStore:
    """Append-only segmented store of encoded compressed trajectories."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = False,
        index_sidecars: bool = True,
    ) -> None:
        if segment_max_bytes < 4096:
            raise ValueError(
                f"segment_max_bytes must be >= 4096, got {segment_max_bytes!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_max_bytes = segment_max_bytes
        self._fsync = fsync
        #: ``False`` disables the sidecar fast path entirely: never read,
        #: trust, or write ``.idx`` files — every segment is envelope-
        #: scanned exactly like the pre-sidecar store.  The benchmark's
        #: scan baseline and the index-parity tests run through this.
        self._index_sidecars = index_sidecars
        self._segments: List[str] = []
        self._views: list = []  # SegmentIndex | ScannedSegment, per segment
        self._seg_pos: Dict[str, int] = {}
        #: device -> (segment position, row marker) of its most recent
        #: tombstone; a record at (pos, row) < marker is dead.
        self._max_tomb: Dict[str, Tuple[int, int]] = {}
        self._next_segment = 1
        self._generation = 0
        self._handle = None
        self._active: str | None = None
        self._active_size = 0
        self._tail_dirty = False
        self._read_handle = None
        self._read_segment: str | None = None
        self._closed = False
        #: Records dropped by the open scan: damaged tail bytes (count)
        #: per segment — non-empty after recovering from a crash.  A
        #: sidecar preserves the count, so reopening from the index
        #: reports the same recovery state the scan did.
        self.scan_report: Dict[str, int] = {}
        self._load()

    # -- opening -------------------------------------------------------------

    def _load(self) -> None:
        manifest_path = self.directory / _MANIFEST
        if manifest_path.exists():
            with open(manifest_path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            fmt = int(doc.get("format", 1))
            if fmt != _FORMAT:
                raise StoreFormatError(
                    f"{self.directory}: store format {fmt} is not supported "
                    f"(this build reads/writes format {_FORMAT}; run "
                    "`python -m repro.storage migrate` to upgrade in place)"
                )
            self._segments = [
                name for name in doc.get("segments", [])
                if (self.directory / name).exists()
            ]
            self._next_segment = int(doc.get("next_segment", 1))
            self._generation = int(doc.get("generation", 0))
        else:
            self._segments = sorted(
                p.name for p in self.directory.glob("seg-*.log")
            )
            if self._segments:
                self._next_segment = (
                    int(self._segments[-1][4:-4], 10) + 1
                )
        last = len(self._segments) - 1
        for i, name in enumerate(self._segments):
            view = None
            if self._index_sidecars:
                view = self._open_sidecar(name, active=(i == last))
            if view is None:
                view = self._scan_segment(name)
                if self._index_sidecars and i != last:
                    # Sealed segment with no usable sidecar: regenerate it
                    # from the scan so the next open is lazy again.  The
                    # unsealed tail gets its sidecar at seal/close time.
                    self._regenerate_sidecar(view)
            if view.damaged:
                self.scan_report[name] = view.damaged
            self._views.append(view)
        self._seg_pos = {name: i for i, name in enumerate(self._segments)}
        self._rebuild_tombstones()
        if self._segments:
            self._active = self._segments[-1]
            self._active_size = (self.directory / self._active).stat().st_size
            self._tail_dirty = self._views[-1].kind == "scan"

    def _open_sidecar(self, name: str, *, active: bool):
        """A validated :class:`SegmentIndex` for one segment, or ``None``.

        Sealed segments are trusted on exact log size plus a CRC of the
        log's first 4 KiB (payloads are re-CRC'd on every read).  The
        *active* segment — the only one a crash can have damaged since
        the sidecar was written — must match a CRC of its full content.
        """
        log_path = self.directory / name
        idx = None
        try:
            size = log_path.stat().st_size
            idx = SegmentIndex.open(
                sidecar_path(self.directory, name),
                segment_name=name,
                expected_size=size,
            )
            if active:
                if zlib.crc32(log_path.read_bytes()) != idx.log_crc:
                    raise SidecarError(f"{name}: log content changed")
            else:
                with open(log_path, "rb") as handle:
                    head = handle.read(HEAD_CRC_BYTES)
                if zlib.crc32(head) != idx.head_crc:
                    raise SidecarError(f"{name}: log head changed")
            return idx
        except (SidecarError, OSError):
            if idx is not None:
                idx.close()
            return None

    def _scan_segment(self, name: str) -> ScannedSegment:
        """The legacy open path: parse every envelope out of the log."""
        path = self.directory / name
        with open(path, "rb") as handle:
            data = handle.read()
        view = ScannedSegment(name)
        pos = 0
        end = len(data)
        while pos + _FRAME.size <= end:
            length, crc = _FRAME.unpack_from(data, pos)
            if length == 0:
                break  # zeroed tail (crc32(b"") == 0 would pass the check)
            payload_start = pos + _FRAME.size
            payload_end = payload_start + length
            if payload_end > end:
                break  # truncated tail: a crash mid-append
            payload = data[payload_start:payload_end]
            if zlib.crc32(payload) != crc:
                break  # corrupt tail: stop trusting this segment here
            try:
                self._index_payload(view, pos, _FRAME.size + length, payload)
            except (CodecError, IndexError, UnicodeDecodeError):
                # Unparseable envelope (CRC collisions are possible on
                # arbitrary damage): treat like a bad frame.
                break
            pos = payload_end
        if pos < end:
            view.damaged = end - pos
        return view

    @staticmethod
    def _index_payload(
        view: ScannedSegment, offset: int, length: int, payload: bytes
    ) -> None:
        rtype = payload[0]
        id_len, p = _read_uvarint(payload, 1)
        device_id = payload[p : p + id_len].decode("utf-8")
        p += id_len
        if rtype == _RT_TOMBSTONE:
            view.add_tombstone(device_id)
            return
        if rtype != _RT_TRAJECTORY:
            raise CodecError(f"unknown record type {rtype}")
        if p + _ENVELOPE.size > len(payload):
            raise CodecError("truncated envelope")
        t_min, t_max, x_min, x_max, y_min, y_max, epsilon, zone, south = (
            _ENVELOPE.unpack_from(payload, p)
        )
        p += _ENVELOPE.size
        if zone > 60:
            raise CodecError(f"UTM zone out of range: {zone}")
        n_keys, p = _read_uvarint(payload, p)
        view.append_ref(
            RecordRef(
                device_id=device_id,
                segment=view.name,
                offset=offset,
                length=length,
                n_key_points=n_keys,
                t_min=t_min,
                t_max=t_max,
                x_min=x_min,
                x_max=x_max,
                y_min=y_min,
                y_max=y_max,
                epsilon=epsilon,
                utm_zone=zone if zone else None,
                utm_south=bool(south),
            )
        )

    def _rebuild_tombstones(self) -> None:
        self._max_tomb = {}
        for si, view in enumerate(self._views):
            for marker, device_id in view.tombstones:
                self._max_tomb[device_id] = (si, marker)

    # -- sidecar upkeep ------------------------------------------------------

    def _log_crcs(self, name: str) -> Tuple[int, int, int]:
        """``(log_crc, head_crc, size)`` of a segment log on disk."""
        data = (self.directory / name).read_bytes()
        return zlib.crc32(data), zlib.crc32(data[:HEAD_CRC_BYTES]), len(data)

    def _regenerate_sidecar(self, view: ScannedSegment) -> None:
        """Best-effort sidecar (re)write from a scanned view."""
        if not self._index_sidecars:
            return
        try:
            log_crc, head_crc, size = self._log_crcs(view.name)
            write_sidecar(
                sidecar_path(self.directory, view.name),
                view.name,
                view.refs,
                view.tombstones,
                segment_size=size,
                log_crc=log_crc,
                head_crc=head_crc,
                damaged=view.damaged,
                fsync=self._fsync,
            )
        except OSError:
            pass  # a sidecar is an accelerator; the log stays authoritative

    def _seal_tail(self) -> None:
        """Write the active segment's sidecar (called on roll and close)."""
        if not self._index_sidecars or not self._tail_dirty or not self._views:
            return
        if self._handle is not None:
            self._handle.flush()
        view = self._views[-1]
        if view.kind == "scan":
            self._regenerate_sidecar(view)
        self._tail_dirty = False

    def _checked_view(self, si: int):
        """The segment view, with its row region verified once.

        A sidecar whose row region fails its (lazy) CRC is dropped on the
        spot: the segment is rescanned from the log — the source of truth
        — and the sidecar rewritten, so corruption costs a scan, never an
        answer.
        """
        view = self._views[si]
        if view.kind == "sidecar":
            try:
                view.verify_rows()
            except (SidecarError, OSError):
                view.close()
                fallback = self._scan_segment(self._segments[si])
                if fallback.damaged:
                    self.scan_report[fallback.name] = fallback.damaged
                if si != len(self._views) - 1:
                    self._regenerate_sidecar(fallback)
                else:
                    self._tail_dirty = True
                self._views[si] = fallback
                view = fallback
        return view

    def _materialize_tail(self) -> None:
        """Make the tail view list-backed before the first append to it."""
        if not self._views:
            return
        view = self._checked_view(len(self._views) - 1)
        if view.kind == "scan":
            return
        tail = ScannedSegment(view.name)
        tail.refs = [ref for _, ref in view.iter_refs()]
        tail.tombstones = list(view.tombstones)
        tail.damaged = view.damaged
        view.close()
        self._views[-1] = tail

    def _ensure_open(self) -> None:
        if self._closed:
            # Use-after-close is caller lifecycle misuse (a bug in the
            # calling code), not a data-plane failure to route on — a
            # deliberately untyped error.
            # repro: ignore[RA04] lifecycle misuse by the caller, not a routable data-plane failure
            raise RuntimeError("store is closed")

    def reindex(self) -> int:
        """Rescan every segment log and rewrite its sidecar; returns how
        many sidecars were written.  The logs are the source of truth, so
        this repairs any amount of sidecar damage or staleness."""
        self._ensure_open()
        self.flush()
        count = 0
        for si, name in enumerate(self._segments):
            view = self._scan_segment(name)
            if view.damaged:
                self.scan_report[name] = view.damaged
            log_crc, head_crc, size = self._log_crcs(name)
            write_sidecar(
                sidecar_path(self.directory, name),
                name,
                view.refs,
                view.tombstones,
                segment_size=size,
                log_crc=log_crc,
                head_crc=head_crc,
                damaged=view.damaged,
                fsync=self._fsync,
            )
            self._views[si].close()
            self._views[si] = view
            count += 1
        self._rebuild_tombstones()
        self._tail_dirty = False
        return count

    def index_report(self) -> Dict[str, int]:
        """How much of the store is served from sidecars right now."""
        sidecar_segments = sum(
            1 for v in self._views if v.kind == "sidecar"
        )
        sidecar_rows = sum(
            v.n_rows for v in self._views if v.kind == "sidecar"
        )
        return {
            "segments": len(self._views),
            "sidecar_segments": sidecar_segments,
            "scanned_segments": len(self._views) - sidecar_segments,
            "rows": sum(v.n_rows for v in self._views),
            "sidecar_rows": sidecar_rows,
        }

    # -- writing -------------------------------------------------------------

    def _write_manifest(self) -> None:
        tmp = self.directory / (_MANIFEST + ".tmp")
        try:
            with fsio.open_file(tmp, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "format": _FORMAT,
                        "segments": self._segments,
                        "next_segment": self._next_segment,
                        "generation": self._generation,
                    },
                    handle,
                )
                handle.write("\n")
                if self._fsync:
                    handle.flush()
                    fsio.fsync(handle.fileno())
            fsio.replace(tmp, self.directory / _MANIFEST)
        except OSError:
            # A failed write (ENOSPC mid-dump) must not leave a stale
            # ``manifest.json.tmp`` shadowing the next commit attempt.
            try:
                fsio.unlink(tmp)
            except OSError:
                pass
            raise

    def _open_segment(self) -> None:
        self._seal_tail()
        name = _SEGMENT_FMT.format(self._next_segment)
        self._next_segment += 1
        self._segments.append(name)
        # Commit the segment to the manifest before any record lands in it,
        # so a crash can never leave indexed-but-unlisted data.
        self._write_manifest()
        # "wb", not "ab": a crashed compaction can leave an orphan file
        # under this name (written but never committed to the manifest);
        # appending would land new frames behind its stale ones while the
        # offset accounting starts at zero.  Truncate whatever is there,
        # and drop any orphan sidecar with it.
        self._handle = fsio.open_file(self.directory / name, "wb")
        idx_orphan = sidecar_path(self.directory, name)
        if idx_orphan.exists():
            idx_orphan.unlink()
        self._active = name
        self._active_size = 0
        self._views.append(ScannedSegment(name))
        self._seg_pos[name] = len(self._segments) - 1
        self._tail_dirty = True

    def _ensure_writable(self) -> None:
        self._ensure_open()
        if self._handle is None:
            # A segment whose tail was damaged is sealed: bytes appended
            # after the bad frame would be unreachable to the open scan,
            # which stops at the first unreadable record.  Roll instead.
            if (
                self._active is not None
                and self._active_size < self._segment_max_bytes
                and self._active not in self.scan_report
            ):
                self._materialize_tail()
                self._handle = fsio.open_file(self.directory / self._active, "ab")
                self._tail_dirty = True
            else:
                self._open_segment()
        elif self._active_size >= self._segment_max_bytes:
            self._handle.close()
            self._handle = None
            self._open_segment()

    def _append_frame(self, payload: bytes) -> Tuple[str, int, int]:
        self._ensure_writable()
        offset = self._active_size
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        self._handle.write(frame)
        self._handle.write(payload)
        self._handle.flush()
        if self._fsync:
            fsio.fsync(self._handle.fileno())
        self._active_size += len(frame) + len(payload)
        return self._active, offset, len(frame) + len(payload)

    def append(
        self,
        device_id: str,
        trajectory: CompressedTrajectory,
        *,
        xy_quantum: float = DEFAULT_XY_QUANTUM,
        t_quantum: float = DEFAULT_T_QUANTUM,
        projection: UTMProjection | None = None,
    ) -> RecordRef:
        """Encode and append one trajectory; returns its index entry.

        The envelope is computed from the *quantized* coordinates, so the
        index agrees exactly with what :meth:`read` will decode.  The UTM
        frame — ``projection`` when given, else the trajectory's own
        ``frame`` (stamped by the geodetic engine) — goes into both the
        blob header and the index envelope.
        """
        key_points = trajectory.key_points
        if not key_points:
            raise ValueError("cannot store an empty trajectory (no key points)")
        if projection is None:
            projection = trajectory.frame
        blob, bounds = _encode_with_bounds(
            trajectory,
            xy_quantum=xy_quantum,
            t_quantum=t_quantum,
            projection=projection,
        )
        # The envelope comes from the same quantization pass that produced
        # the bytes, so index and decoded coordinates agree exactly.
        t_min = bounds[0] * t_quantum
        t_max = bounds[1] * t_quantum
        x_min = bounds[2] * xy_quantum
        x_max = bounds[3] * xy_quantum
        y_min = bounds[4] * xy_quantum
        y_max = bounds[5] * xy_quantum

        device_bytes = device_id.encode("utf-8")
        payload = bytearray()
        payload.append(_RT_TRAJECTORY)
        _append_uvarint(payload, len(device_bytes))
        payload += device_bytes
        payload += _ENVELOPE.pack(
            t_min,
            t_max,
            x_min,
            x_max,
            y_min,
            y_max,
            trajectory.tolerance,
            projection.zone if projection is not None else 0,
            1 if projection is not None and projection.south else 0,
        )
        _append_uvarint(payload, len(key_points))
        _append_uvarint(payload, len(blob))
        payload += blob

        segment, offset, length = self._append_frame(bytes(payload))
        ref = RecordRef(
            device_id=device_id,
            segment=segment,
            offset=offset,
            length=length,
            n_key_points=len(key_points),
            t_min=t_min,
            t_max=t_max,
            x_min=x_min,
            x_max=x_max,
            y_min=y_min,
            y_max=y_max,
            epsilon=trajectory.tolerance,
            utm_zone=projection.zone if projection is not None else None,
            utm_south=projection.south if projection is not None else False,
        )
        self._views[-1].append_ref(ref)
        self._tail_dirty = True
        return ref

    def delete_device(self, device_id: str) -> int:
        """Tombstone a device: drop its records from the index now, from
        disk at the next :meth:`compact`.  Returns how many records died."""
        dead = len(self.device_manifest(device_id))
        payload = bytearray()
        payload.append(_RT_TOMBSTONE)
        device_bytes = device_id.encode("utf-8")
        _append_uvarint(payload, len(device_bytes))
        payload += device_bytes
        self._append_frame(bytes(payload))
        marker = self._views[-1].add_tombstone(device_id)
        self._max_tomb[device_id] = (len(self._views) - 1, marker)
        self._tail_dirty = True
        return dead

    # -- reading -------------------------------------------------------------

    @staticmethod
    def _parse_frame(frame: bytes, ref: RecordRef) -> bytes:
        if len(frame) != ref.length:
            raise CodecError(
                f"{ref.segment}@{ref.offset}: record extends past segment end"
            )
        length, crc = _FRAME.unpack_from(frame, 0)
        payload = frame[_FRAME.size :]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise CodecError(f"{ref.segment}@{ref.offset}: CRC mismatch")
        return payload

    def _close_read_handle(self) -> None:
        if self._read_handle is not None:
            self._read_handle.close()
            self._read_handle = None
            self._read_segment = None

    def _raise_stale(self, ref: RecordRef) -> None:
        """The ref's segment is gone: decide whether *we* are the stale
        party (another process compacted under us) and recover."""
        disk_generation = self._generation
        try:
            with open(self.directory / _MANIFEST, "r", encoding="utf-8") as f:
                disk_generation = int(json.load(f).get("generation", 0))
        except (OSError, ValueError):
            pass
        if disk_generation != self._generation:
            self.reload()
            raise StaleStoreError(
                f"{ref.segment}@{ref.offset}: the store was compacted "
                f"(generation {self._generation}, this index entry predates "
                "it); the index has been reloaded — re-run the query"
            )
        raise StaleStoreError(
            f"{ref.segment}@{ref.offset}: segment is no longer part of "
            "the store (reaped by compaction)"
        )

    def _read_payload(self, ref: RecordRef) -> bytes:
        # Cache the open segment across reads: exact-mode range queries and
        # iter_decoded() visit many records per segment, and one open/seek
        # per record would dominate their cost.  Staleness (a ref issued
        # before a compaction, here or in another process) is detected at
        # cache misses — the only point a reaped segment can newly enter
        # the read path.
        if ref.segment != self._read_segment:
            self._close_read_handle()
            if ref.segment not in self._seg_pos:
                self._raise_stale(ref)
            try:
                self._read_handle = open(self.directory / ref.segment, "rb")
            except FileNotFoundError:
                self._raise_stale(ref)
            self._read_segment = ref.segment
        self._read_handle.seek(ref.offset)
        frame = self._read_handle.read(ref.length)
        return self._parse_frame(frame, ref)

    def read(self, ref: RecordRef) -> DecodedTrajectory:
        """Decode the stored trajectory behind an index entry."""
        payload = self._read_payload(ref)
        id_len, p = _read_uvarint(payload, 1)
        p += id_len + _ENVELOPE.size
        n_keys, p = _read_uvarint(payload, p)
        blob_len, p = _read_uvarint(payload, p)
        return decode_trajectory(payload[p : p + blob_len])

    def reload(self) -> None:
        """Drop the in-memory index and re-open from the current manifest
        (used after another process compacts the directory)."""
        self._ensure_open()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._close_read_handle()
        for view in self._views:
            view.close()
        self._segments = []
        self._views = []
        self._seg_pos = {}
        self._max_tomb = {}
        self._next_segment = 1
        self._generation = 0
        self._active = None
        self._active_size = 0
        self._tail_dirty = False
        self.scan_report = {}
        self._load()

    def _is_dead(self, si: int, row: int, device_id: str) -> bool:
        pos = self._max_tomb.get(device_id)
        return pos is not None and (si, row) < pos

    def _iter_live(self) -> Iterator[RecordRef]:
        tomb = self._max_tomb
        for si in range(len(self._views)):
            view = self._checked_view(si)
            for row, ref in view.iter_refs():
                if tomb:
                    pos = tomb.get(ref.device_id)
                    if pos is not None and (si, row) < pos:
                        continue
                yield ref

    def candidates(
        self,
        *,
        rect: Tuple[float, float, float, float] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        zone: int | None = None,
        south: bool = False,
    ) -> Iterator[RecordRef]:
        """Live records passing the envelope screen, in append order.

        This is the query layer's candidate source: the per-row test (time
        overlap, then the ε-expanded bounding-box test) is identical to
        screening ``records()`` by hand, but runs over the mmap'd sidecar
        rows with segment/grid/block pruning, so it materializes a
        :class:`RecordRef` only per *candidate*, not per record.
        """
        tomb = self._max_tomb
        for si in range(len(self._views)):
            view = self._checked_view(si)
            for row, ref in view.iter_candidates(
                rect=rect, t0=t0, t1=t1, zone=zone, south=south
            ):
                if tomb:
                    pos = tomb.get(ref.device_id)
                    if pos is not None and (si, row) < pos:
                        continue
                yield ref

    def records(self) -> List[RecordRef]:
        """Every live record, in append order."""
        return list(self._iter_live())

    def device_manifest(self, device_id: str) -> List[RecordRef]:
        """One device's live records, in append order."""
        out: List[RecordRef] = []
        pos = self._max_tomb.get(device_id)
        for si in range(len(self._views)):
            summary = self._views[si].device_summary().get(device_id)
            if summary is None or summary[0] == 0:
                continue
            first, last = summary[1], summary[2]
            if pos is not None and (si, last) < pos:
                continue  # every row of this device here predates the tomb
            view = self._checked_view(si)
            for row, ref in view.iter_refs(first, last + 1):
                if ref.device_id != device_id:
                    continue
                if pos is not None and (si, row) < pos:
                    continue
                out.append(ref)
        return out

    def devices(self) -> List[str]:
        """Device ids with at least one live record, in order of first
        live appearance."""
        if not self._max_tomb:
            out: List[str] = []
            seen: Set[str] = set()
            for view in self._views:
                for device_id, summary in view.device_summary().items():
                    if summary[0] and device_id not in seen:
                        seen.add(device_id)
                        out.append(device_id)
            return out
        out = []
        seen = set()
        for ref in self._iter_live():
            if ref.device_id not in seen:
                seen.add(ref.device_id)
                out.append(ref.device_id)
        return out

    def iter_decoded(self) -> Iterator[Tuple[RecordRef, DecodedTrajectory]]:
        """Decode every live record, in append order."""
        for ref in self._iter_live():
            yield ref, self.read(ref)

    def stamped_frames(self) -> Set[Tuple[int, bool]]:
        """Every ``(zone, south)`` UTM frame stamped on stored records (a
        superset of the *live* frames when tombstones are pending)."""
        zones: Set[Tuple[int, bool]] = set()
        for view in self._views:
            zones |= view.stamped_zones()
        return zones

    # -- stats ---------------------------------------------------------------

    @property
    def record_count(self) -> int:
        total = sum(view.n_rows for view in self._views)
        if not self._max_tomb:
            return total
        return total - self._dead_count()

    def _dead_count(self) -> int:
        dead = 0
        for device_id, (tsi, marker) in self._max_tomb.items():
            for si in range(tsi + 1):
                summary = self._views[si].device_summary().get(device_id)
                if summary is None or summary[0] == 0:
                    continue
                n, first, last = summary
                if si < tsi or marker > last:
                    dead += n
                elif marker > first:
                    view = self._checked_view(si)
                    dead += sum(
                        1
                        for _, ref in view.iter_refs(first, marker)
                        if ref.device_id == device_id
                    )
        return dead

    @property
    def key_point_count(self) -> int:
        if not self._max_tomb:
            return sum(view.total_key_points for view in self._views)
        return sum(ref.n_key_points for ref in self._iter_live())

    @property
    def segment_names(self) -> List[str]:
        return list(self._segments)

    @property
    def generation(self) -> int:
        """The manifest's compaction-generation counter (bumped by each
        :meth:`compact`; stale readers detect it via
        :class:`StaleStoreError`)."""
        return self._generation

    def total_bytes(self) -> int:
        """Bytes on disk across live segment files."""
        total = 0
        for name in self._segments:
            path = self.directory / name
            if path.exists():
                total += path.stat().st_size
        return total

    def content_digest(self) -> str:
        """SHA-256 over every live record's payload, in per-device append
        order — a physical-layout-independent fingerprint of the store's
        *content*: two stores hold byte-identical trajectories exactly
        when their digests match, regardless of segment boundaries or
        compactions.  The crash harness and the durability bench pin
        recovery correctness on it.
        """
        import hashlib

        h = hashlib.sha256()
        for device_id in sorted(self.devices()):
            h.update(device_id.encode("utf-8", "surrogatepass"))
            h.update(b"\x00")
            for ref in self.device_manifest(device_id):
                payload = self._read_payload(ref)
                h.update(_FRAME.pack(len(payload), zlib.crc32(payload)))
                h.update(payload)
        return h.hexdigest()

    def time_span(self) -> Tuple[float, float] | None:
        if not self._max_tomb:
            lo, hi = None, None
            for view in self._views:
                env = view.envelope()
                if env is None:
                    continue
                lo = env[0] if lo is None or env[0] < lo else lo
                hi = env[1] if hi is None or env[1] > hi else hi
            return None if lo is None else (lo, hi)
        spans = [(ref.t_min, ref.t_max) for ref in self._iter_live()]
        if not spans:
            return None
        return (min(s[0] for s in spans), max(s[1] for s in spans))

    def bbox(self) -> Tuple[float, float, float, float] | None:
        if not self._max_tomb:
            box = None
            for view in self._views:
                env = view.envelope()
                if env is None:
                    continue
                if box is None:
                    box = [env[2], env[4], env[3], env[5]]
                else:
                    box[0] = min(box[0], env[2])
                    box[1] = min(box[1], env[4])
                    box[2] = max(box[2], env[3])
                    box[3] = max(box[3], env[5])
            return None if box is None else tuple(box)
        refs = [ref for ref in self._iter_live()]
        if not refs:
            return None
        return (
            min(ref.x_min for ref in refs),
            min(ref.y_min for ref in refs),
            max(ref.x_max for ref in refs),
            max(ref.y_max for ref in refs),
        )

    # -- compaction ----------------------------------------------------------

    def compact(self) -> Dict[str, int]:
        """Rewrite live records into fresh segments; drop dead data.

        Live records are re-framed (in append order) into new segment
        files — each with its index sidecar — the manifest is atomically
        repointed at them with a bumped generation, and the old files
        (log and sidecar alike, plus any orphans a crashed compaction
        left behind) are deleted.  Returns ``{"records": live,
        "bytes_before": ..., "bytes_after": ...}``.
        """
        self._ensure_open()
        bytes_before = self.total_bytes()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        # The cached read handle may point at a segment about to die.
        self._close_read_handle()
        old_segments = list(self._segments)

        # Re-frame every live record into new segments, streaming record
        # by record (bounded memory) with the source segment handle cached
        # across the run (records are indexed in append order, so source
        # segments are visited consecutively).
        new_segments: List[str] = []
        new_views: List[ScannedSegment] = []
        handle = None
        size = 0
        src_name: str | None = None
        src_handle = None
        try:
            for ref in self._iter_live():
                if ref.segment != src_name:
                    if src_handle is not None:
                        src_handle.close()
                    src_name = ref.segment
                    src_handle = open(self.directory / src_name, "rb")
                src_handle.seek(ref.offset)
                payload = self._parse_frame(
                    src_handle.read(ref.length), ref
                )
                if handle is None or size >= self._segment_max_bytes:
                    if handle is not None:
                        handle.flush()
                        handle.close()
                    name = _SEGMENT_FMT.format(self._next_segment)
                    self._next_segment += 1
                    new_segments.append(name)
                    new_views.append(ScannedSegment(name))
                    # "wb" truncates an orphan from an earlier crashed
                    # compaction that reused this segment number.
                    handle = fsio.open_file(self.directory / name, "wb")
                    size = 0
                frame = _FRAME.pack(len(payload), zlib.crc32(payload))
                offset = size
                handle.write(frame)
                handle.write(payload)
                size += len(frame) + len(payload)
                new_views[-1].append_ref(
                    RecordRef(
                        device_id=ref.device_id,
                        segment=new_segments[-1],
                        offset=offset,
                        length=len(frame) + len(payload),
                        n_key_points=ref.n_key_points,
                        t_min=ref.t_min,
                        t_max=ref.t_max,
                        x_min=ref.x_min,
                        x_max=ref.x_max,
                        y_min=ref.y_min,
                        y_max=ref.y_max,
                        epsilon=ref.epsilon,
                        utm_zone=ref.utm_zone,
                        utm_south=ref.utm_south,
                    )
                )
            if handle is not None:
                handle.flush()
                if self._fsync:
                    fsio.fsync(handle.fileno())
                handle.close()
                handle = None
        finally:
            if src_handle is not None:
                src_handle.close()
            if handle is not None:
                handle.close()

        # Every new segment gets its sidecar before the commit point, so
        # the compacted store opens lazily from the first reopen on.
        for view in new_views:
            self._regenerate_sidecar(view)

        # Commit point: the manifest now names only the new segments, at
        # the next generation (stale-reader detection).
        self._segments = new_segments
        self._generation += 1
        self._write_manifest()

        # Rebuild the index over the new layout.
        for view in self._views:
            view.close()
        self._views = list(new_views)
        self._seg_pos = {name: i for i, name in enumerate(new_segments)}
        self._max_tomb = {}
        self._active = new_segments[-1] if new_segments else None
        self._active_size = (
            (self.directory / self._active).stat().st_size
            if self._active is not None
            else 0
        )
        self._tail_dirty = False

        # Old segments (and any orphans from earlier crashes) are dead —
        # logs and sidecars both.
        live = set(new_segments)
        for path in self.directory.glob("seg-*.log"):
            if path.name not in live:
                path.unlink()
        for path in self.directory.glob("seg-*.idx"):
            if path.with_suffix(".log").name not in live:
                path.unlink()
        for name in old_segments:
            self.scan_report.pop(name, None)
        return {
            "records": sum(v.n_rows for v in new_views),
            "bytes_before": bytes_before,
            "bytes_after": self.total_bytes(),
        }

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                fsio.fsync(self._handle.fileno())

    def close(self) -> None:
        self._seal_tail()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._close_read_handle()
        for view in self._views:
            view.close()
        self._closed = True

    def __enter__(self) -> "TrajectoryStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return self.record_count

    def __repr__(self) -> str:
        return (
            f"TrajectoryStore({str(self.directory)!r}, "
            f"records={self.record_count}, segments={len(self._segments)})"
        )


# -- migration ----------------------------------------------------------------


def migrate_store(
    directory: str | os.PathLike,
    *,
    segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
) -> Dict[str, int]:
    """Upgrade a store directory to the current format, in place.

    * **format 1** (no UTM frame in the envelope): every record payload is
      rewritten with zone 0 / north (the honest stamp — those stores were
      ingested from already-planar fixes) into fresh segment files, the
      manifest is atomically repointed, and the old segments deleted.
      Damaged tails are dropped, exactly as an open would have dropped
      them.
    * **format 2**: the record bytes are already current; the manifest is
      rewritten with the generation counter.
    * **current format**: nothing to convert.

    In every case the migration finishes by writing an index sidecar for
    each segment, so the migrated store opens lazily.  Unknown formats
    are refused with a clear error.  Returns a summary dict.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise ValueError(
            f"{directory}: no {_MANIFEST} — cannot determine the store "
            "format (not a store, or one predating manifests; re-ingest)"
        )
    with open(manifest_path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    fmt = int(doc.get("format", 1))
    dropped = 0
    if fmt == _FORMAT:
        pass
    elif fmt == 2:
        doc["format"] = _FORMAT
        doc.setdefault("generation", 0)
        _atomic_manifest(directory, doc)
    elif fmt == 1:
        dropped = _migrate_format1(directory, doc, segment_max_bytes)
    else:
        raise StoreFormatError(
            f"{directory}: store format {fmt} is not supported by migrate "
            f"(known formats: 1, 2, {_FORMAT})"
        )
    with TrajectoryStore(directory) as store:
        sidecars = store.reindex()
        return {
            "from_format": fmt,
            "migrated": int(fmt != _FORMAT),
            "records": store.record_count,
            "segments": len(store.segment_names),
            "sidecars": sidecars,
            "dropped_bytes": dropped,
        }


def _atomic_manifest(directory: Path, doc: dict) -> None:
    tmp = directory / (_MANIFEST + ".tmp")
    try:
        with fsio.open_file(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.write("\n")
            handle.flush()
            fsio.fsync(handle.fileno())
        fsio.replace(tmp, directory / _MANIFEST)
    except OSError:
        try:
            fsio.unlink(tmp)
        except OSError:
            pass
        raise


def _migrate_format1(
    directory: Path, doc: dict, segment_max_bytes: int
) -> int:
    """Rewrite format-1 segments as format-2/3 payloads; returns dropped
    (unreadable) byte count."""
    old_segments = [
        name
        for name in doc.get("segments", [])
        if (directory / name).exists()
    ]
    next_segment = int(doc.get("next_segment", 1))
    new_segments: List[str] = []
    handle = None
    size = 0
    dropped = 0

    def roll():
        nonlocal handle, size, next_segment
        if handle is not None:
            handle.flush()
            fsio.fsync(handle.fileno())
            handle.close()
        name = _SEGMENT_FMT.format(next_segment)
        next_segment += 1
        new_segments.append(name)
        handle = fsio.open_file(directory / name, "wb")
        size = 0

    try:
        for name in old_segments:
            with open(directory / name, "rb") as src:
                data = src.read()
            pos = 0
            end = len(data)
            while pos + _FRAME.size <= end:
                length, crc = _FRAME.unpack_from(data, pos)
                if length == 0:
                    break
                payload_start = pos + _FRAME.size
                payload_end = payload_start + length
                if payload_end > end:
                    break
                payload = data[payload_start:payload_end]
                if zlib.crc32(payload) != crc:
                    break
                try:
                    new_payload = _upgrade_v1_payload(payload)
                except (CodecError, IndexError, UnicodeDecodeError):
                    break
                if handle is None or size >= segment_max_bytes:
                    roll()
                frame = _FRAME.pack(
                    len(new_payload), zlib.crc32(new_payload)
                )
                handle.write(frame)
                handle.write(new_payload)
                size += len(frame) + len(new_payload)
                pos = payload_end
            if pos < end:
                dropped += end - pos
    finally:
        if handle is not None:
            handle.flush()
            fsio.fsync(handle.fileno())
            handle.close()

    _atomic_manifest(
        directory,
        {
            "format": _FORMAT,
            "segments": new_segments,
            "next_segment": next_segment,
            "generation": 0,
        },
    )
    live = set(new_segments)
    for path in directory.glob("seg-*.log"):
        if path.name not in live:
            path.unlink()
    for path in directory.glob("seg-*.idx"):
        path.unlink()
    return dropped


def _upgrade_v1_payload(payload: bytes) -> bytes:
    """One format-1 payload re-encoded with the zone/hemisphere bytes."""
    rtype = payload[0]
    id_len, p = _read_uvarint(payload, 1)
    payload[p : p + id_len].decode("utf-8")  # validate like the open scan
    p += id_len
    if rtype == _RT_TOMBSTONE:
        return payload  # identical layout in every format
    if rtype != _RT_TRAJECTORY:
        raise CodecError(f"unknown record type {rtype}")
    env_end = p + _ENVELOPE_V1.size
    if env_end > len(payload):
        raise CodecError("truncated envelope")
    # Splice the two new envelope bytes (zone 0 = unstamped, north) in
    # after the 7 doubles; everything else is byte-compatible.
    return payload[:env_end] + b"\x00\x00" + payload[env_end:]


class StoreSink:
    """A :class:`~repro.engine.sinks.Sink` that persists sealed streams.

    Every trajectory the engine seals — explicitly or by eviction — is
    encoded with the binary codec and appended to the store the moment it
    arrives, so a fleet run streams to disk with nothing retained in
    memory (pair with ``collect=False``).  Pass a directory to let the
    sink own (open and close) its store, or an open
    :class:`TrajectoryStore` to share one the caller manages.

    Zone stamping needs no configuration: trajectories sealed by the
    geodetic engine carry their UTM frame, and :meth:`TrajectoryStore.
    append` writes it into the blob and the index envelope.  An explicit
    ``projection=`` overrides the per-trajectory frames (for streams whose
    planar coordinates are known to share one zone).

    Device ids are stringified on write: the store keys records by UTF-8
    string, which round-trips the engine's string ids unchanged.
    """

    #: Deliveries survive a crash — recovery replay must not repeat them
    #: (volatile sinks are re-delivered instead; see ``EmitGate``).
    durable = True

    def __init__(
        self,
        store: TrajectoryStore | str | os.PathLike,
        *,
        xy_quantum: float = DEFAULT_XY_QUANTUM,
        t_quantum: float = DEFAULT_T_QUANTUM,
        projection: UTMProjection | None = None,
    ) -> None:
        self._owns = not isinstance(store, TrajectoryStore)
        self._store = (
            TrajectoryStore(store) if self._owns else store
        )
        self._xy_quantum = xy_quantum
        self._t_quantum = t_quantum
        self._projection = projection
        self.emitted = 0
        self.skipped_empty = 0

    @property
    def store(self) -> TrajectoryStore:
        return self._store

    def emit(self, device_id, trajectory: CompressedTrajectory) -> None:
        if not trajectory.key_points:
            self.skipped_empty += 1
            return
        self._store.append(
            device_id if isinstance(device_id, str) else str(device_id),
            trajectory,
            xy_quantum=self._xy_quantum,
            t_quantum=self._t_quantum,
            projection=self._projection,
        )
        self.emitted += 1

    def close(self) -> None:
        if self._owns:
            self._store.close()
        else:
            self._store.flush()


def shard_store_sink(base_directory: str, shard: int) -> StoreSink:
    """Per-shard sink factory for the sharded engine.

    The store is single-writer, so every worker gets its own directory:
    ``functools.partial(shard_store_sink, "/data/fleet")`` is picklable
    and, called as ``factory(shard)`` inside worker *i*, opens
    ``/data/fleet/shard-000i``.
    """
    return StoreSink(Path(base_directory) / f"shard-{shard:04d}")
