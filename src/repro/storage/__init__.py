"""Persistence for compressed trajectories: codec, store, index, queries.

BQS compresses "on the go" so constrained devices can afford to *keep*
their trajectories — this package is where they are kept.  Four modules,
lowest first:

:mod:`repro.storage.codec`
    A compact binary encoding of
    :class:`~repro.model.trajectory.CompressedTrajectory`: a
    self-describing header (algorithm, ε, metric, quanta, optional UTM
    zone) followed by delta-encoded fixed-point zig-zag varint columns.
    Decoding yields :class:`~repro.model.columns.TrajectoryColumns` plus
    the header — lossless at the declared quantum.

:mod:`repro.storage.index`
    Persistent per-segment index sidecars (``seg-*.idx``): packed
    envelope rows plus grid/block pruning summaries with CRC'd footers,
    served zero-copy through ``mmap``.  Sidecars make opening a store
    O(segments) instead of O(records); a missing or corrupt sidecar
    degrades to the envelope scan and is regenerated.

:mod:`repro.storage.store`
    :class:`~repro.storage.store.TrajectoryStore`: an append-only
    segmented log of codec records with crash-safe appends (length +
    CRC-prefixed records, truncated-tail tolerance), per-device manifests,
    lazy sidecar-backed opens, tombstone deletes, compaction with a
    manifest generation counter (stale concurrent readers raise
    :class:`~repro.storage.store.StaleStoreError` and reload), and
    in-place format migration (:func:`~repro.storage.store.
    migrate_store`).  :class:`~repro.storage.store.StoreSink` plugs the
    store into the engine's :class:`~repro.engine.sinks.Sink` protocol so
    fleet runs stream straight to disk.

:mod:`repro.storage.query`
    Error-aware spatio-temporal queries answered over the compressed
    segments: time-window (exact — compression preserves stream spans)
    and spatial range in two modes, ``approximate`` (ε-expanded bounding
    boxes from the index only) and ``exact`` (chord-level geometry against
    the ε-expanded rectangle; no false negatives by the error bound).
    Candidate selection runs over the mmap'd sidecar rows with
    grid-level pruning; geographic rectangles may wrap the antimeridian.

``python -m repro.storage`` drives all of it: ``ingest`` a simulated
fleet to disk, ``stat`` a store, ``query`` it, ``compact`` it,
``migrate``/``reindex`` it, and ``scale-smoke`` the open/query fast
paths.
"""

from .codec import (
    DEFAULT_T_QUANTUM,
    DEFAULT_XY_QUANTUM,
    CodecError,
    DecodedTrajectory,
    decode_trajectory,
    encode_trajectory,
)
from .index import ScannedSegment, SegmentIndex, SidecarError
from .query import (
    QueryMatch,
    geo_range_query,
    geo_rect_to_plane,
    range_query,
    time_window_query,
)
from .store import (
    RecordRef,
    StaleStoreError,
    StoreSink,
    TrajectoryStore,
    migrate_store,
    shard_store_sink,
)

__all__ = [
    "CodecError",
    "DEFAULT_T_QUANTUM",
    "DEFAULT_XY_QUANTUM",
    "DecodedTrajectory",
    "QueryMatch",
    "RecordRef",
    "ScannedSegment",
    "SegmentIndex",
    "SidecarError",
    "StaleStoreError",
    "StoreSink",
    "TrajectoryStore",
    "decode_trajectory",
    "encode_trajectory",
    "geo_range_query",
    "geo_rect_to_plane",
    "migrate_store",
    "range_query",
    "shard_store_sink",
    "time_window_query",
]
