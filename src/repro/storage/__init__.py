"""Persistence for compressed trajectories: codec, store, queries.

BQS compresses "on the go" so constrained devices can afford to *keep*
their trajectories — this package is where they are kept.  Three modules,
lowest first:

:mod:`repro.storage.codec`
    A compact binary encoding of
    :class:`~repro.model.trajectory.CompressedTrajectory`: a
    self-describing header (algorithm, ε, metric, quanta, optional UTM
    zone) followed by delta-encoded fixed-point zig-zag varint columns.
    Decoding yields :class:`~repro.model.columns.TrajectoryColumns` plus
    the header — lossless at the declared quantum.

:mod:`repro.storage.store`
    :class:`~repro.storage.store.TrajectoryStore`: an append-only
    segmented log of codec records with crash-safe appends (length +
    CRC-prefixed records, truncated-tail tolerance), per-device manifests,
    an in-memory time/bbox index built on open, tombstone deletes and
    compaction.  :class:`~repro.storage.store.StoreSink` plugs the store
    into the engine's :class:`~repro.engine.sinks.Sink` protocol so fleet
    runs stream straight to disk.

:mod:`repro.storage.query`
    Error-aware spatio-temporal queries answered over the compressed
    segments: time-window (exact — compression preserves stream spans)
    and spatial range in two modes, ``approximate`` (ε-expanded bounding
    boxes from the index only) and ``exact`` (chord-level geometry against
    the ε-expanded rectangle; no false negatives by the error bound).

``python -m repro.storage`` drives all three: ``ingest`` a simulated
fleet to disk, ``stat`` a store, ``query`` it, ``compact`` it.
"""

from .codec import (
    DEFAULT_T_QUANTUM,
    DEFAULT_XY_QUANTUM,
    CodecError,
    DecodedTrajectory,
    decode_trajectory,
    encode_trajectory,
)
from .query import (
    QueryMatch,
    geo_range_query,
    geo_rect_to_plane,
    range_query,
    time_window_query,
)
from .store import RecordRef, StoreSink, TrajectoryStore, shard_store_sink

__all__ = [
    "CodecError",
    "DEFAULT_T_QUANTUM",
    "DEFAULT_XY_QUANTUM",
    "DecodedTrajectory",
    "QueryMatch",
    "RecordRef",
    "StoreSink",
    "TrajectoryStore",
    "decode_trajectory",
    "encode_trajectory",
    "geo_range_query",
    "geo_rect_to_plane",
    "range_query",
    "shard_store_sink",
    "time_window_query",
]
