"""Error-aware spatio-temporal queries over the compressed store.

The paper's guarantee is the whole query story: every original point lies
within ε of the compressed segment covering its timestamp, and the key
points delimiting those segments *are* original samples.  Both query
kinds exploit exactly that, answering directly over the compressed
records without ever reconstructing the raw stream:

**Time-window** (:func:`time_window_query`)
    A device was active in ``[t0, t1]`` iff its stream's time span
    overlaps the window — and compression preserves the span exactly
    (the first and last fixes are always key points), so the answer read
    off the index envelopes equals a brute-force scan of the raw fixes'
    spans.  Always exact; never decodes a record.

**Spatial range** (:func:`range_query`)
    "Which devices entered rectangle R?"  Over compressed data the
    answer has an ε-wide uncertainty band, handled in two modes:

    ``approximate``
        Index-only screen: a record matches when its stored bounding
        box, expanded by its own ε (both live in the envelope), reaches
        R.  No record is decoded; a superset of the exact answer.

    ``exact``
        Decodes the screened candidates and tests each compressed chord
        against R expanded by ε
        (:func:`repro.geometry.planar.segment_rect_distance`).  The
        error bound makes this **free of false negatives**: an original
        fix inside R lies within ε of its covering chord, so that chord
        passes within ε of R.  Matches additionally carry ``definite`` —
        containment proven because a key point (a real fix) landed
        inside R — so callers get the classic
        ``definite ⊆ truth ⊆ matches`` bracket from the range-query
        literature, which collapses to the exact answer whenever no
        trajectory ε-grazes the rectangle's boundary without entering.

    Records whose ε is not finite (uniform sampling carries no bound)
    get no expansion — there is no guarantee to expand by — and are
    matched on their compressed polyline alone.

Both queries compose with a time window: ``range_query(..., t0=, t1=)``
restricts the spatial test to the chords overlapping the window (the
spatio-temporal composite query).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..geometry.planar import segment_rect_distance
from .store import RecordRef, TrajectoryStore

__all__ = ["QueryMatch", "Rect", "time_window_query", "range_query"]

Rect = Tuple[float, float, float, float]  #: ``(x_min, y_min, x_max, y_max)``


@dataclass(frozen=True)
class QueryMatch:
    """One record satisfying a query."""

    device_id: str
    ref: RecordRef
    #: Containment proven from compressed data alone (a key point — an
    #: actual original fix — inside the query rectangle, inside the time
    #: window if one was given).  Time-window-only matches are always
    #: definite; ``approximate`` range matches never are.
    definite: bool


def _check_window(t0: float, t1: float) -> None:
    if not t1 >= t0:
        raise ValueError(f"empty time window [{t0}, {t1}]")


def time_window_query(
    store: TrajectoryStore, t0: float, t1: float
) -> List[QueryMatch]:
    """Records whose stream time span overlaps ``[t0, t1]`` (exact)."""
    _check_window(t0, t1)
    return [
        QueryMatch(device_id=ref.device_id, ref=ref, definite=True)
        for ref in store.records()
        if ref.t_min <= t1 and ref.t_max >= t0
    ]


def _chords_hit(
    decoded, rect: Rect, eps: float, t0: float | None, t1: float | None
) -> Tuple[bool, bool]:
    """``(hit, definite)`` for one decoded record against an ε-expanded
    rectangle, optionally restricted to the chords overlapping a window."""
    x_min, y_min, x_max, y_max = rect
    windowed = t0 is not None
    cols = decoded.columns
    ts, xs, ys = cols.ts, cols.xs, cols.ys
    n = len(ts)
    hit = False
    for i in range(n):
        if not windowed or t0 <= ts[i] <= t1:
            if x_min <= xs[i] <= x_max and y_min <= ys[i] <= y_max:
                return True, True  # a real original fix inside the rect
        if hit or i + 1 >= n:
            continue
        if windowed and not (ts[i] <= t1 and ts[i + 1] >= t0):
            continue
        d = segment_rect_distance(
            (xs[i], ys[i]), (xs[i + 1], ys[i + 1]), x_min, y_min, x_max, y_max
        )
        if d <= eps:
            hit = True  # keep scanning: a later key point may be definite
    if not hit and n == 1 and (not windowed or t0 <= ts[0] <= t1):
        # Single key point: the stream collapsed to one fix; treat it as a
        # zero-length chord with the same ε uncertainty.
        d = segment_rect_distance(
            (xs[0], ys[0]), (xs[0], ys[0]), x_min, y_min, x_max, y_max
        )
        hit = d <= eps
    return hit, False


def range_query(
    store: TrajectoryStore,
    rect: Rect,
    *,
    mode: str = "exact",
    t0: float | None = None,
    t1: float | None = None,
) -> List[QueryMatch]:
    """Records whose trajectory (possibly) entered ``rect``.

    See the module docstring for the mode guarantees.  With ``t0`` /
    ``t1`` the spatial test only considers the part of each trajectory
    inside the window.
    """
    x_min, y_min, x_max, y_max = rect
    if not (x_max >= x_min and y_max >= y_min):
        raise ValueError(f"degenerate rectangle {rect!r}")
    if mode not in ("exact", "approximate"):
        raise ValueError(f"mode must be 'exact' or 'approximate', got {mode!r}")
    if (t0 is None) != (t1 is None):
        raise ValueError("t0 and t1 must be given together")
    if t0 is not None:
        _check_window(t0, t1)

    matches: List[QueryMatch] = []
    for ref in store.records():
        if t0 is not None and not (ref.t_min <= t1 and ref.t_max >= t0):
            continue
        eps = ref.epsilon if math.isfinite(ref.epsilon) else 0.0
        if (
            ref.x_min - eps > x_max
            or ref.x_max + eps < x_min
            or ref.y_min - eps > y_max
            or ref.y_max + eps < y_min
        ):
            continue
        if mode == "approximate":
            matches.append(
                QueryMatch(device_id=ref.device_id, ref=ref, definite=False)
            )
            continue
        hit, definite = _chords_hit(store.read(ref), rect, eps, t0, t1)
        if hit:
            matches.append(
                QueryMatch(device_id=ref.device_id, ref=ref, definite=definite)
            )
    return matches
