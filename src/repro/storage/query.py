"""Error-aware spatio-temporal queries over the compressed store.

The paper's guarantee is the whole query story: every original point lies
within ε of the compressed segment covering its timestamp, and the key
points delimiting those segments *are* original samples.  Both query
kinds exploit exactly that, answering directly over the compressed
records without ever reconstructing the raw stream:

**Time-window** (:func:`time_window_query`)
    A device was active in ``[t0, t1]`` iff its stream's time span
    overlaps the window — and compression preserves the span exactly
    (the first and last fixes are always key points), so the answer read
    off the index envelopes equals a brute-force scan of the raw fixes'
    spans.  Always exact; never decodes a record.

**Spatial range** (:func:`range_query`)
    "Which devices entered rectangle R?"  Over compressed data the
    answer has an ε-wide uncertainty band, handled in two modes:

    ``approximate``
        Index-only screen: a record matches when its stored bounding
        box, expanded by its own ε (both live in the envelope), reaches
        R.  No record is decoded; a superset of the exact answer.

    ``exact``
        Decodes the screened candidates and tests each compressed chord
        against R expanded by ε
        (:func:`repro.geometry.planar.segment_rect_distance`).  The
        error bound makes this **free of false negatives**: an original
        fix inside R lies within ε of its covering chord, so that chord
        passes within ε of R.  Matches additionally carry ``definite`` —
        containment proven because a key point (a real fix) landed
        inside R — so callers get the classic
        ``definite ⊆ truth ⊆ matches`` bracket from the range-query
        literature, which collapses to the exact answer whenever no
        trajectory ε-grazes the rectangle's boundary without entering.

    Records whose ε is not finite (uniform sampling carries no bound)
    get no expansion — there is no guarantee to expand by — and are
    matched on their compressed polyline alone.

**Geographic range** (:func:`geo_range_query`)
    The same question asked the way a GPS-native caller asks it: "which
    devices entered this latitude/longitude rectangle?"  Every
    zone-stamped record is tested **in its own UTM frame**: the geographic
    rectangle is projected into each distinct ``(zone, hemisphere)``
    present among the candidates as a *conservative containing* planar
    rectangle (dense boundary sampling plus a curvature-bound expansion
    for the distortion between samples — see :func:`geo_rect_to_plane`),
    so the no-false-negative guarantee survives the projection.
    ``definite`` is decided geodetically: a key point (a real original
    fix) whose unprojected coordinate lies inside the geographic
    rectangle.  Matches carry an unprojected lat/lon ``geo_envelope`` of
    the record's bounding box, so callers get answers in the coordinate
    system they asked in.  Records without a stamped zone cannot be
    placed on the ellipsoid and are skipped (they were ingested as bare
    plane fixes; query them with :func:`range_query`).

Both queries compose with a time window: ``range_query(..., t0=, t1=)``
restricts the spatial test to the chords overlapping the window (the
spatio-temporal composite query).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..geometry.planar import segment_rect_distance
from ..model.projection import UTMProjection
from .store import RecordRef, TrajectoryStore

__all__ = [
    "GeoRect",
    "QueryMatch",
    "Rect",
    "geo_envelope_of",
    "geo_rect_to_plane",
    "geo_range_query",
    "range_query",
    "time_window_query",
]

Rect = Tuple[float, float, float, float]  #: ``(x_min, y_min, x_max, y_max)``
GeoRect = Tuple[float, float, float, float]  #: ``(lat_min, lon_min, lat_max, lon_max)`` degrees


@dataclass(frozen=True)
class QueryMatch:
    """One record satisfying a query."""

    device_id: str
    ref: RecordRef
    #: Containment proven from compressed data alone (a key point — an
    #: actual original fix — inside the query rectangle, inside the time
    #: window if one was given).  Time-window-only matches are always
    #: definite; ``approximate`` range matches never are.  For geographic
    #: queries the proof is geodetic: the key point's *unprojected*
    #: coordinate lies inside the lat/lon rectangle.
    definite: bool
    #: Geographic matches only: the record's bounding box unprojected
    #: through its stamped zone, as ``(lat_min, lon_min, lat_max,
    #: lon_max)`` — the answer in the caller's coordinate system.
    geo_envelope: GeoRect | None = None


def _check_window(t0: float, t1: float) -> None:
    if not t1 >= t0:
        raise ValueError(f"empty time window [{t0}, {t1}]")


def time_window_query(
    store: TrajectoryStore, t0: float, t1: float
) -> List[QueryMatch]:
    """Records whose stream time span overlaps ``[t0, t1]`` (exact)."""
    _check_window(t0, t1)
    return [
        QueryMatch(device_id=ref.device_id, ref=ref, definite=True)
        for ref in store.candidates(t0=t0, t1=t1)
    ]


def _chords_hit(
    decoded,
    rect: Rect,
    eps: float,
    t0: float | None,
    t1: float | None,
    definite_test=None,
) -> Tuple[bool, bool]:
    """``(hit, definite)`` for one decoded record against an ε-expanded
    rectangle, optionally restricted to the chords overlapping a window.

    ``definite_test(x, y)`` refines what a key point inside the rectangle
    proves.  For the planar query it is ``None``: the rectangle *is* the
    query region, so a contained key point — a real original fix — is
    definite on the spot.  The geographic query passes a geodetic
    predicate (unproject and test the lat/lon rectangle), because its
    planar rectangle is a deliberately inflated superset of the true
    region: a contained key point still proves a hit (distance zero), but
    only the predicate proves definite containment, and the scan
    continues looking for one.
    """
    x_min, y_min, x_max, y_max = rect
    windowed = t0 is not None
    cols = decoded.columns
    ts, xs, ys = cols.ts, cols.xs, cols.ys
    n = len(ts)
    hit = False
    for i in range(n):
        if not windowed or t0 <= ts[i] <= t1:
            if x_min <= xs[i] <= x_max and y_min <= ys[i] <= y_max:
                if definite_test is None or definite_test(xs[i], ys[i]):
                    return True, True  # a real original fix inside the rect
                hit = True
        if hit or i + 1 >= n:
            continue
        if windowed and not (ts[i] <= t1 and ts[i + 1] >= t0):
            continue
        d = segment_rect_distance(
            (xs[i], ys[i]), (xs[i + 1], ys[i + 1]), x_min, y_min, x_max, y_max
        )
        if d <= eps:
            hit = True  # keep scanning: a later key point may be definite
    if not hit and n == 1 and (not windowed or t0 <= ts[0] <= t1):
        # Single key point: the stream collapsed to one fix; treat it as a
        # zero-length chord with the same ε uncertainty.
        d = segment_rect_distance(
            (xs[0], ys[0]), (xs[0], ys[0]), x_min, y_min, x_max, y_max
        )
        hit = d <= eps
    return hit, False


def range_query(
    store: TrajectoryStore,
    rect: Rect,
    *,
    mode: str = "exact",
    t0: float | None = None,
    t1: float | None = None,
) -> List[QueryMatch]:
    """Records whose trajectory (possibly) entered ``rect``.

    See the module docstring for the mode guarantees.  With ``t0`` /
    ``t1`` the spatial test only considers the part of each trajectory
    inside the window.
    """
    x_min, y_min, x_max, y_max = rect
    if not (x_max >= x_min and y_max >= y_min):
        raise ValueError(f"degenerate rectangle {rect!r}")
    if mode not in ("exact", "approximate"):
        raise ValueError(f"mode must be 'exact' or 'approximate', got {mode!r}")
    if (t0 is None) != (t1 is None):
        raise ValueError("t0 and t1 must be given together")
    if t0 is not None:
        _check_window(t0, t1)

    matches: List[QueryMatch] = []
    # The store's candidate iterator runs the exact envelope screen the
    # loop below used to (time overlap, then the ε-expanded bbox test)
    # over the mmap'd index rows with grid pruning, so only candidates
    # ever materialize a RecordRef.
    for ref in store.candidates(rect=rect, t0=t0, t1=t1):
        eps = ref.epsilon if math.isfinite(ref.epsilon) else 0.0
        if mode == "approximate":
            matches.append(
                QueryMatch(device_id=ref.device_id, ref=ref, definite=False)
            )
            continue
        hit, definite = _chords_hit(store.read(ref), rect, eps, t0, t1)
        if hit:
            matches.append(
                QueryMatch(device_id=ref.device_id, ref=ref, definite=definite)
            )
    return matches


# -- geographic range ---------------------------------------------------------

#: Boundary samples per geographic-rectangle edge when projecting a query
#: into a UTM frame.  More samples → tighter containing rectangle; the
#: curvature margin below covers whatever bows between adjacent samples.
_GEO_EDGE_SAMPLES = 16

#: Minimum semi-axis of the WGS-84 ellipsoid (metres), the denominator of
#: the graticule-curvature bound below.
_WGS84_MIN_RADIUS = 6.35e6


def _graticule_curvature(lat_extreme_deg: float) -> float:
    """Upper bound (1/m) on the curvature of projected graticule lines
    (meridians / parallels) in a transverse-Mercator frame, for a
    rectangle whose latitudes stay within ``±lat_extreme_deg``.

    The dominant term is the parallel's image, which curves like
    ``tan(φ)/R`` — e.g. ~1.5e-6 at 84°, but ~1.8e-5 at 89.5°, so a fixed
    mid-latitude constant silently under-covers polar rectangles.  The
    bound is doubled as a safety pad and floored at the equator-adjacent
    value; the sagitta of an arc between adjacent boundary samples a
    chord ``c`` apart is then at most ``κ c² / 8``.
    """
    tangent = math.tan(math.radians(min(abs(lat_extreme_deg), _GEO_LAT_CLAMP)))
    return 2.0 * max(tangent, 1.0) / _WGS84_MIN_RADIUS

#: Absolute slack (metres) absorbing the projection series' own error
#: (sub-millimetre inside a zone, centimetres for far-outside-zone
#: boundary-crossing tracks) — vanishing next to any realistic ε.
_GEO_SLACK_M = 0.01

#: Transverse Mercator blows up at the poles (``atanh(sin ±90°)``), so
#: boundary sampling is clamped here; a query rectangle reaching past the
#: clamp gets an infinite northing bound instead (still conservative).
_GEO_LAT_CLAMP = 89.99


def geo_rect_to_plane(
    geo_rect: GeoRect,
    projection: UTMProjection,
    samples: int = _GEO_EDGE_SAMPLES,
) -> Rect:
    """A planar rectangle *containing* the image of a geographic rectangle.

    The lat/lon rectangle maps to a curved quadrilateral in the projected
    plane.  Its boundary is sampled densely (``samples`` points per edge,
    projected in one bulk pass), bounded, and expanded by a sagitta bound
    on how far the true curve can bow between adjacent samples
    (:func:`_graticule_curvature`, evaluated at the rectangle's extreme
    latitude) plus the projection's own error budget — so every point of
    the true image lies inside the returned rectangle, which is what the
    range query's no-false-negative guarantee needs.  The expansion is
    conservative but tiny for city-scale mid-latitude rectangles
    (fractions of a metre); it grows toward the poles, where the
    graticule genuinely curves harder.
    """
    geo_lat_min, lon_min, geo_lat_max, lon_max = geo_rect
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples!r}")
    # Sample within the projection's numeric domain; pole-adjacent rect
    # portions are covered by the infinite northing bounds below.
    lat_min = min(max(geo_lat_min, -_GEO_LAT_CLAMP), _GEO_LAT_CLAMP)
    lat_max = min(max(geo_lat_max, -_GEO_LAT_CLAMP), _GEO_LAT_CLAMP)
    lats: List[float] = []
    lons: List[float] = []
    # Closed boundary walk: south edge west→east, east edge south→north,
    # north edge east→west, west edge north→south.  Adjacent list entries
    # are adjacent on the boundary, so the max gap below is the real
    # sample spacing.
    dlat = (lat_max - lat_min) / samples
    dlon = (lon_max - lon_min) / samples
    for k in range(samples):
        lats.append(lat_min)
        lons.append(lon_min + k * dlon)
    for k in range(samples):
        lats.append(lat_min + k * dlat)
        lons.append(lon_max)
    for k in range(samples):
        lats.append(lat_max)
        lons.append(lon_max - k * dlon)
    for k in range(samples):
        lats.append(lat_max - k * dlat)
        lons.append(lon_min)
    xs, ys = projection.forward_columns(lats, lons)
    n = len(xs)
    gap_sq = 0.0
    for i in range(n):
        dx = xs[i] - xs[i - 1]  # i == 0 wraps: the walk is closed
        dy = ys[i] - ys[i - 1]
        d = dx * dx + dy * dy
        if d > gap_sq:
            gap_sq = d
    lat_extreme = max(abs(lat_min), abs(lat_max))
    margin = _graticule_curvature(lat_extreme) * gap_sq / 8.0 + _GEO_SLACK_M
    y_lo = min(ys) - margin
    y_hi = max(ys) + margin
    # Northing grows monotonically poleward: a rectangle reaching past the
    # sampling clamp must cover everything beyond it.
    if geo_lat_min < -_GEO_LAT_CLAMP:
        y_lo = -math.inf
    if geo_lat_max > _GEO_LAT_CLAMP:
        y_hi = math.inf
    return (min(xs) - margin, y_lo, max(xs) + margin, y_hi)


def geo_envelope_of(
    ref: RecordRef, projection: UTMProjection | None = None
) -> GeoRect | None:
    """A record's bounding box unprojected to ``(lat_min, lon_min,
    lat_max, lon_max)`` through its stamped zone (``None`` unstamped).

    Corner-based: the envelope of the four unprojected bbox corners.  The
    planar box edges can bow fractionally outside it under projection
    distortion, so treat it as reporting precision, not a guarantee.
    ``projection`` lets a caller that already holds the record's frame
    (the query loop caches one per zone) skip rebuilding the
    Krüger-series coefficients per match.
    """
    if projection is None:
        projection = ref.projection()
    if projection is None:
        return None
    corners = (
        projection.inverse(ref.x_min, ref.y_min),
        projection.inverse(ref.x_min, ref.y_max),
        projection.inverse(ref.x_max, ref.y_min),
        projection.inverse(ref.x_max, ref.y_max),
    )
    return (
        min(c[0] for c in corners),
        min(c[1] for c in corners),
        max(c[0] for c in corners),
        max(c[1] for c in corners),
    )


def _geo_definite_test(geo_rect: GeoRect, projection: UTMProjection):
    """The geodetic definiteness predicate for :func:`_chords_hit`: a key
    point is definite only if its *unprojected* coordinate lies inside
    the lat/lon rectangle."""
    lat_min, lon_min, lat_max, lon_max = geo_rect
    inverse = projection.inverse

    def test(x: float, y: float) -> bool:
        lat, lon = inverse(x, y)
        return lat_min <= lat <= lat_max and lon_min <= lon <= lon_max

    return test


def _geo_collect(
    store: TrajectoryStore,
    geo_rect: GeoRect,
    mode: str,
    t0: float | None,
    t1: float | None,
) -> List[QueryMatch]:
    """One non-wrapping lobe of a geographic query, per stamped frame.

    Candidate selection runs once per distinct ``(zone, hemisphere)``
    stamped in the store, with the lobe projected conservatively into
    that frame and the store's zone filter keeping the grid-pruned scan
    sound (a cell may mix zones; the per-row zone test may not).  The
    returned matches are grouped by frame, not in append order — the
    caller restores global order.
    """
    matches: List[QueryMatch] = []
    for zone, south in sorted(store.stamped_frames()):
        projection = UTMProjection(zone=zone, south=south)
        rect = geo_rect_to_plane(geo_rect, projection)
        definite_test = _geo_definite_test(geo_rect, projection)
        for ref in store.candidates(
            rect=rect, t0=t0, t1=t1, zone=zone, south=south
        ):
            if mode == "approximate":
                matches.append(
                    QueryMatch(
                        device_id=ref.device_id,
                        ref=ref,
                        definite=False,
                        geo_envelope=geo_envelope_of(ref, projection),
                    )
                )
                continue
            eps = ref.epsilon if math.isfinite(ref.epsilon) else 0.0
            hit, definite = _chords_hit(
                store.read(ref), rect, eps, t0, t1, definite_test=definite_test
            )
            if hit:
                matches.append(
                    QueryMatch(
                        device_id=ref.device_id,
                        ref=ref,
                        definite=definite,
                        geo_envelope=geo_envelope_of(ref, projection),
                    )
                )
    return matches


def geo_range_query(
    store: TrajectoryStore,
    geo_rect: GeoRect,
    *,
    mode: str = "exact",
    t0: float | None = None,
    t1: float | None = None,
) -> List[QueryMatch]:
    """Zone-stamped records whose trajectory (possibly) entered a lat/lon
    rectangle.

    Each candidate is tested in its own stamped UTM frame: the
    geographic rectangle is projected once per distinct ``(zone,
    hemisphere)`` among the candidates (conservatively — see
    :func:`geo_rect_to_plane`) and the planar machinery of
    :func:`range_query` runs in that frame.  Mode semantics match
    :func:`range_query`; the exact mode keeps the no-false-negative
    guarantee against the raw GPS fixes, and ``definite`` still implies a
    real original fix inside the rectangle (at codec-quantum precision).

    A rectangle given with ``lon_min > lon_max`` **wraps the
    antimeridian**: it is split at ±180° into two lobes, each queried
    with the full conservative machinery, and the union returned (a
    record matching both lobes is reported once, keeping ``definite`` if
    either lobe proved it).  Unstamped records are skipped as always —
    they cannot be placed on the ellipsoid.
    """
    lat_min, lon_min, lat_max, lon_max = geo_rect
    if not lat_max >= lat_min:
        raise ValueError(f"degenerate geographic rectangle {geo_rect!r}")
    if not (-90.0 <= lat_min and lat_max <= 90.0):
        raise ValueError(f"latitude out of range in {geo_rect!r}")
    if not (
        -180.0 <= lon_min <= 180.0 and -180.0 <= lon_max <= 180.0
    ):
        raise ValueError(f"longitude out of range in {geo_rect!r}")
    if mode not in ("exact", "approximate"):
        raise ValueError(f"mode must be 'exact' or 'approximate', got {mode!r}")
    if (t0 is None) != (t1 is None):
        raise ValueError("t0 and t1 must be given together")
    if t0 is not None:
        _check_window(t0, t1)

    if lon_min <= lon_max:
        matches = _geo_collect(store, geo_rect, mode, t0, t1)
    else:
        # Antimeridian wrap: the rectangle [lon_min..180] ∪ [-180..lon_max].
        # Query each lobe independently and union the results — no false
        # negatives, because every point of the wrapped rectangle lies in
        # exactly one lobe (±180° itself lies in both, harmlessly).
        west = _geo_collect(
            store, (lat_min, lon_min, lat_max, 180.0), mode, t0, t1
        )
        east = _geo_collect(
            store, (lat_min, -180.0, lat_max, lon_max), mode, t0, t1
        )
        merged: Dict[Tuple[str, int], QueryMatch] = {}
        for match in west + east:
            key = (match.ref.segment, match.ref.offset)
            kept = merged.get(key)
            if kept is None or (match.definite and not kept.definite):
                merged[key] = match
        matches = list(merged.values())

    # Per-frame collection broke append order; restore it so callers (and
    # the index-parity pin) see the exact legacy ordering.
    order = {name: i for i, name in enumerate(store.segment_names)}
    matches.sort(key=lambda m: (order[m.ref.segment], m.ref.offset))
    return matches
