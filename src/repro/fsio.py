"""The pluggable filesystem seam under every durable write path.

The storage layer (`repro.storage.store`, `repro.storage.index`) and the
write-ahead fix journal (`repro.engine.journal`) route their *mutating*
filesystem operations — opening files for write, ``os.replace`` commits,
``os.fsync`` — through this module instead of calling the builtins
directly.  In production the seam is a passthrough with no measurable
cost; under test, :mod:`repro.testing.faults` installs a shim here to
inject ENOSPC budgets, torn writes, dropped fsyncs, rename failures and
seeded kill-9 points without monkeypatching individual modules.

Read paths deliberately stay on the builtins: every fault this layer
models (full disk, torn tail, lying fsync, a crash between write and
rename) is a *write-side* event, and keeping reads native means the
recovery code under test reopens files exactly the way production does.

Only one shim is active per process (`install` swaps it atomically);
the :func:`injected` context manager scopes a shim to a block and always
restores the previous one.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["PassthroughFS", "open_file", "replace", "fsync", "install", "injected"]


class PassthroughFS:
    """The default seam: real filesystem, zero indirection beyond a call."""

    def open(self, path, mode="rb", **kwargs):
        return open(path, mode, **kwargs)

    def replace(self, src, dst) -> None:
        os.replace(src, dst)

    def fsync(self, fileno: int) -> None:
        os.fsync(fileno)


_active = PassthroughFS()


def open_file(path, mode="rb", **kwargs):
    """Open a file through the active seam (use for write handles)."""
    return _active.open(path, mode, **kwargs)


def replace(src, dst) -> None:
    """``os.replace`` through the active seam (atomic commit points)."""
    _active.replace(src, dst)


def fsync(fileno: int) -> None:
    """``os.fsync`` through the active seam."""
    _active.fsync(fileno)


def install(shim) -> object:
    """Install a shim (``None`` restores the passthrough); returns the
    previously active one so callers can restore it."""
    global _active
    previous = _active
    _active = shim if shim is not None else PassthroughFS()
    return previous


@contextmanager
def injected(shim):
    """Scope a shim to a ``with`` block, restoring the previous seam on
    exit no matter how the block ends."""
    previous = install(shim)
    try:
        yield shim
    finally:
        install(previous)
