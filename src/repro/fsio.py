"""The pluggable filesystem seam under every durable write path.

The storage layer (`repro.storage.store`, `repro.storage.index`) and the
write-ahead fix journal (`repro.engine.journal`) route their *mutating*
filesystem operations — opening files for write, ``os.replace`` commits,
``os.fsync`` — through this module instead of calling the builtins
directly.  In production the seam is a passthrough with no measurable
cost; under test, :mod:`repro.testing.faults` installs a shim here to
inject ENOSPC budgets, torn writes, dropped fsyncs, rename failures and
seeded kill-9 points without monkeypatching individual modules.

Read paths deliberately stay on the builtins: every fault this layer
models (full disk, torn tail, lying fsync, a crash between write and
rename) is a *write-side* event, and keeping reads native means the
recovery code under test reopens files exactly the way production does.

Only one shim is active per process (`install` swaps it atomically);
the :func:`injected` context manager scopes a shim to a block and always
restores the previous one.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import IO, Any, Iterator, Protocol, Union

#: Anything the os-level path functions accept.
StrPath = Union[str, "os.PathLike[str]"]


class FS(Protocol):
    """What a seam shim must provide (see :class:`PassthroughFS`).

    ``unlink`` is optional for backward compatibility with pre-existing
    shims; :func:`unlink` falls back to ``os.unlink`` when the active
    shim does not intercept it.
    """

    def open(self, path: StrPath, mode: str = ..., **kwargs: Any) -> IO[Any]: ...

    def replace(self, src: StrPath, dst: StrPath) -> None: ...

    def fsync(self, fileno: int) -> None: ...

__all__ = [
    "PassthroughFS",
    "open_file",
    "replace",
    "fsync",
    "unlink",
    "install",
    "injected",
]


class PassthroughFS:
    """The default seam: real filesystem, zero indirection beyond a call."""

    def open(self, path: "StrPath", mode: str = "rb", **kwargs: Any) -> IO[Any]:
        return open(path, mode, **kwargs)

    def replace(self, src: "StrPath", dst: "StrPath") -> None:
        os.replace(src, dst)

    def fsync(self, fileno: int) -> None:
        os.fsync(fileno)

    def unlink(self, path: "StrPath") -> None:
        os.unlink(path)


_active: FS = PassthroughFS()


def open_file(path: StrPath, mode: str = "rb", **kwargs: Any) -> IO[Any]:
    """Open a file through the active seam (use for write handles)."""
    return _active.open(path, mode, **kwargs)


def replace(src: StrPath, dst: StrPath) -> None:
    """``os.replace`` through the active seam (atomic commit points)."""
    _active.replace(src, dst)


def fsync(fileno: int) -> None:
    """``os.fsync`` through the active seam."""
    _active.fsync(fileno)


def unlink(path: StrPath) -> None:
    """``os.unlink`` through the active seam (tmp-file cleanup, dead
    segment reaping).  Shims that predate this hook are passed through
    to the real ``os.unlink``."""
    fn = getattr(_active, "unlink", None)
    if fn is None:
        os.unlink(path)
    else:
        fn(path)


def install(shim: FS | None) -> FS:
    """Install a shim (``None`` restores the passthrough); returns the
    previously active one so callers can restore it."""
    global _active
    previous = _active
    _active = shim if shim is not None else PassthroughFS()
    return previous


@contextmanager
def injected(shim: FS) -> Iterator[FS]:
    """Scope a shim to a ``with`` block, restoring the previous seam on
    exit no matter how the block ends."""
    previous = install(shim)
    try:
        yield shim
    finally:
        install(previous)
