"""Columnar (struct-of-arrays) storage for trajectory fixes.

A :class:`~repro.model.point.PlanePoint` is convenient at the API surface,
but on the batched hot path the object itself is the cost: every fix pays a
dataclass construction, three finiteness checks and per-field attribute
loads before any compression math runs.  ``TrajectoryColumns`` holds the
same data as three flat stdlib ``array('d')`` columns — timestamps, x, y —
so batch producers (file readers, network decoders, the fleet engine) can
hand a compressor thousands of fixes with **zero per-point objects**; the
columnar ingest paths (``StreamingCompressor.push_xyt``) read the floats
straight out of the columns and materialize ``PlanePoint`` instances only
for the handful of fixes that become key points.

The columns are time-ordered per trajectory (the same non-decreasing
timestamp contract ``push`` enforces) and carry no ``z``: the columnar path
is the 2-D hot path, and a materialized point gets ``z = 0.0`` — exactly
what ``PlanePoint(x, y, t)`` defaults to.  Streams that need the 3-D
variant keep using the object path.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence, Tuple

from .point import PlanePoint

__all__ = ["TrajectoryColumns"]


class TrajectoryColumns:
    """Flat ``(ts, xs, ys)`` columns describing one stream of fixes.

    The three columns are plain ``array('d')`` instances and are exposed
    directly (``cols.ts`` etc.) so hot loops can iterate them without any
    wrapper indirection; the class itself only guarantees they stay the
    same length through its mutators.
    """

    __slots__ = ("ts", "xs", "ys")

    def __init__(
        self,
        ts: Iterable[float] = (),
        xs: Iterable[float] = (),
        ys: Iterable[float] = (),
    ) -> None:
        self.ts = array("d", ts)
        self.xs = array("d", xs)
        self.ys = array("d", ys)
        if not (len(self.ts) == len(self.xs) == len(self.ys)):
            raise ValueError(
                "column length mismatch: "
                f"ts={len(self.ts)}, xs={len(self.xs)}, ys={len(self.ys)}"
            )

    @classmethod
    def from_points(cls, points: Iterable[PlanePoint]) -> "TrajectoryColumns":
        """Shred an object stream into columns (``z`` is dropped)."""
        cols = cls()
        append_t = cols.ts.append
        append_x = cols.xs.append
        append_y = cols.ys.append
        for p in points:
            append_t(p.t)
            append_x(p.x)
            append_y(p.y)
        return cols

    @classmethod
    def from_fixes(
        cls, fixes: Iterable[Tuple[float, float, float]]
    ) -> "TrajectoryColumns":
        """Build columns from ``(t, x, y)`` tuples."""
        cols = cls()
        for t, x, y in fixes:
            cols.ts.append(t)
            cols.xs.append(x)
            cols.ys.append(y)
        return cols

    def append(self, t: float, x: float, y: float) -> None:
        """Append one fix."""
        self.ts.append(t)
        self.xs.append(x)
        self.ys.append(y)

    def extend(
        self,
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> None:
        """Bulk-append parallel columns (validated to equal lengths)."""
        n = len(ts)
        if len(xs) != n or len(ys) != n:
            raise ValueError(
                f"column length mismatch: ts={n}, xs={len(xs)}, ys={len(ys)}"
            )
        self.ts.extend(ts)
        self.xs.extend(xs)
        self.ys.extend(ys)

    def to_points(self) -> list[PlanePoint]:
        """Materialize every fix as a :class:`PlanePoint` (``z = 0``)."""
        return list(map(PlanePoint, self.xs, self.ys, self.ts))

    def point(self, i: int) -> PlanePoint:
        """Materialize fix ``i`` only."""
        return PlanePoint(self.xs[i], self.ys[i], self.ts[i])

    def clear(self) -> None:
        del self.ts[:]
        del self.xs[:]
        del self.ys[:]

    def __len__(self) -> int:
        return len(self.ts)

    def __iter__(self) -> Iterator[Tuple[float, float, float]]:
        """Yield ``(t, x, y)`` per fix (cold-path convenience)."""
        return zip(self.ts, self.xs, self.ys)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrajectoryColumns):
            return NotImplemented
        return (
            self.ts == other.ts and self.xs == other.xs and self.ys == other.ys
        )

    def __repr__(self) -> str:
        return f"TrajectoryColumns(n={len(self.ts)})"
