"""Temporal reconstruction of compressed trajectories (paper Eq. 1–3).

A compressed segment keeps only its two key points; positions in between are
re-created at query time:

    v_t = < h_lat(P, v_s, v_e, t), h_lon(P, v_s, v_e, t), t >      (Eq. 1)

where ``P`` is a progress distribution over the segment's time window and
``h`` linearly mixes the endpoint coordinates by ``P(t)``:

    P(t) = (t - v_s.t) / (v_e.t - v_s.t)                            (Eq. 2)
    h(P, v_s, v_e, t) = v_s + P(t) * (v_e - v_s)                    (Eq. 3)

Equation 2 is the uniform-progress case.  The paper notes ``P`` "can be
derived online to fit the distribution of the actual data", e.g. a Gaussian
fitted with Knuth's semi-numeric online updates; both options are
implemented here.  The same machinery reconstructs ``x``/``y`` plane
coordinates, altitude, or anything else carried by the key points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from .point import PlanePoint
from .statistics import OnlineGaussian
from .trajectory import CompressedTrajectory

__all__ = [
    "ProgressDistribution",
    "UniformProgress",
    "GaussianProgress",
    "interpolate",
    "reconstruct_at",
    "reconstruct_series",
    "synchronized_deviation",
    "synchronized_deviation_xyt",
    "max_synchronized_deviation",
]


class ProgressDistribution(Protocol):
    """Maps a timestamp inside ``[t_start, t_end]`` to progress in [0, 1]."""

    def progress(self, t: float, t_start: float, t_end: float) -> float:
        """Fraction of the segment travelled by time ``t``."""
        ...


@dataclass(frozen=True)
class UniformProgress:
    """Equation 2: uniform progress ``P(t) = (t - ts) / (te - ts)``."""

    def progress(self, t: float, t_start: float, t_end: float) -> float:
        if t_end <= t_start:
            return 1.0
        p = (t - t_start) / (t_end - t_start)
        return min(1.0, max(0.0, p))


@dataclass
class GaussianProgress:
    """Progress following an online-fitted Gaussian arrival-time profile.

    The fitted CDF is renormalised over each segment's window so that
    ``P(t_start) = 0`` and ``P(t_end) = 1``; with no (or degenerate) fit it
    falls back to uniform progress, so reconstruction is always defined.
    """

    fit: OnlineGaussian = field(default_factory=OnlineGaussian)

    def observe(self, t: float) -> None:
        """Feed one observed within-segment timestamp into the fit."""
        self.fit.observe(t)

    def progress(self, t: float, t_start: float, t_end: float) -> float:
        if t_end <= t_start:
            return 1.0
        t = min(max(t, t_start), t_end)
        lo = self.fit.cdf(t_start)
        hi = self.fit.cdf(t_end)
        span = hi - lo
        if self.fit.stats.count < 2 or span <= 1e-12:
            return (t - t_start) / (t_end - t_start)
        return min(1.0, max(0.0, (self.fit.cdf(t) - lo) / span))


def interpolate(
    start_value: float,
    end_value: float,
    p: float,
) -> float:
    """Equation 3's ``h``: mix two endpoint values by progress ``p``."""
    return start_value + p * (end_value - start_value)


def reconstruct_at(
    v_start: PlanePoint,
    v_end: PlanePoint,
    t: float,
    distribution: ProgressDistribution | None = None,
) -> PlanePoint:
    """Equation 1: the reconstructed location at time ``t``.

    ``t`` must lie within ``[v_start.t, v_end.t]``; the z coordinate is
    interpolated alongside x and y so 3-D reconstructions work unchanged.
    """
    if not (min(v_start.t, v_end.t) <= t <= max(v_start.t, v_end.t)):
        raise ValueError(
            f"t={t} outside segment window [{v_start.t}, {v_end.t}]"
        )
    dist = distribution if distribution is not None else UniformProgress()
    p = dist.progress(t, v_start.t, v_end.t)
    return PlanePoint(
        x=interpolate(v_start.x, v_end.x, p),
        y=interpolate(v_start.y, v_end.y, p),
        t=t,
        z=interpolate(v_start.z, v_end.z, p),
    )


def synchronized_deviation_xyt(
    px: float, py: float, pt: float,
    ax: float, ay: float, at: float,
    bx: float, by: float, bt: float,
) -> float:
    """Uniform-progress SED from bare coordinates (the columnar hot path).

    Float-for-float identical to :func:`synchronized_deviation` with the
    default (uniform) progress distribution, but takes the nine raw
    coordinates so batch callers (TD-TR's column scan) skip the
    ``PlanePoint`` materialization entirely.
    """
    if bt <= at:
        return min(
            math.hypot(px - ax, py - ay),
            math.hypot(px - bx, py - by),
        )
    prog = min(1.0, max(0.0, (pt - at) / (bt - at)))
    x = ax + prog * (bx - ax)
    y = ay + prog * (by - ay)
    return math.hypot(px - x, py - y)


def synchronized_deviation(
    p: PlanePoint,
    v_start: PlanePoint,
    v_end: PlanePoint,
    distribution: ProgressDistribution | None = None,
) -> float:
    """Synchronized Euclidean distance (SED) of ``p`` from a segment.

    The distance between ``p`` and the position reconstructed on the
    segment at ``p``'s own timestamp — the error metric TD-TR minimises and
    the one the evaluation harness reports as "max SED".  Timestamps
    outside the segment window are clamped by the progress distribution.
    A zero-duration segment (co-timestamped key points) has no unique
    reconstruction, so the nearer endpoint is used.
    """
    if distribution is None:
        return synchronized_deviation_xyt(
            p.x, p.y, p.t,
            v_start.x, v_start.y, v_start.t,
            v_end.x, v_end.y, v_end.t,
        )
    if v_end.t <= v_start.t:
        return min(
            math.hypot(p.x - v_start.x, p.y - v_start.y),
            math.hypot(p.x - v_end.x, p.y - v_end.y),
        )
    prog = distribution.progress(p.t, v_start.t, v_end.t)
    x = interpolate(v_start.x, v_end.x, prog)
    y = interpolate(v_start.y, v_end.y, prog)
    return math.hypot(p.x - x, p.y - y)


def max_synchronized_deviation(
    compressed: CompressedTrajectory,
    original: Sequence[PlanePoint],
    distribution: ProgressDistribution | None = None,
) -> float:
    """Max SED of ``original`` against a compressed trajectory (0 if empty).

    Each original point is measured against the compressed segment covering
    its timestamp, mirroring
    :meth:`~repro.model.trajectory.CompressedTrajectory.max_deviation_from`
    but under temporal reconstruction instead of geometric deviation.
    """
    keys = compressed.key_points
    if not keys or not original:
        return 0.0
    if len(keys) == 1:
        only = keys[0]
        return max(math.hypot(p.x - only.x, p.y - only.y) for p in original)
    worst = 0.0
    idx = 0
    for p in original:
        while idx + 2 < len(keys) and keys[idx + 1].t < p.t:
            idx += 1
        # Zero-duration segments (consecutive key points sharing a
        # timestamp) make the representation multivalued at that instant;
        # audit against the nearest covering segment.
        best = math.inf
        j = idx
        while j + 1 < len(keys) and keys[j].t <= p.t:
            d = synchronized_deviation(p, keys[j], keys[j + 1], distribution)
            if d < best:
                best = d
            j += 1
        if math.isinf(best):
            best = synchronized_deviation(p, keys[idx], keys[idx + 1], distribution)
        if best > worst:
            worst = best
    return worst


def reconstruct_series(
    compressed: CompressedTrajectory,
    timestamps: Sequence[float],
    distribution: ProgressDistribution | None = None,
) -> list[PlanePoint]:
    """Reconstruct positions at many (sorted) timestamps in one pass.

    Timestamps must be non-decreasing and within the compressed
    trajectory's overall time window.
    """
    if not compressed.key_points:
        raise ValueError("cannot reconstruct from an empty trajectory")
    for prev, cur in zip(timestamps, timestamps[1:]):
        if cur < prev:
            raise ValueError("timestamps must be non-decreasing")

    keys = compressed.key_points
    if len(keys) == 1:
        only = keys[0]
        return [PlanePoint(only.x, only.y, t, only.z) for t in timestamps]

    out: list[PlanePoint] = []
    idx = 0
    for t in timestamps:
        if t < keys[0].t or t > keys[-1].t:
            raise ValueError(
                f"t={t} outside trajectory window [{keys[0].t}, {keys[-1].t}]"
            )
        while idx + 2 < len(keys) and t > keys[idx + 1].t:
            idx += 1
        out.append(reconstruct_at(keys[idx], keys[idx + 1], t, distribution))
    return out
