"""Trajectory data model (paper Section IV).

Definitions implemented here, verbatim from the paper:

*Segment* — "a set of location points that are taken consecutively in the
temporal domain, denoted τ = {v1, ..., vn}".

*Trajectory* — "a set of consecutive segments, T = {τ1, τ2, ...}".

*Deviation* — "the largest distance from any location vi ∈ {v2,...,vn−1} to
the line defined by v1 and vn"; the trajectory deviation is the maximum over
its segments.

*Compressed trajectory* — the ordered start/end locations of all segments.

*Error-bounded trajectory* — a compressed trajectory whose every segment has
deviation ≤ d.

The classes below operate on projected :class:`~repro.model.point.PlanePoint`
instances; use :mod:`repro.model.projection` to get there from raw GPS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from ..geometry.metrics import DistanceMetric, deviation as metric_deviation
from .point import PlanePoint
from .projection import UTMProjection

if TYPE_CHECKING:  # runtime import stays late: columns imports point
    from .columns import TrajectoryColumns

__all__ = [
    "Segment",
    "Trajectory",
    "CompressedTrajectory",
    "segment_deviation",
    "GPS_SAMPLE_BYTES",
]

#: Storage footprint of one stored sample on the target platform:
#: latitude, longitude and timestamp at 4 bytes each (Section VI-C-4).
GPS_SAMPLE_BYTES = 12


def segment_deviation(
    points: Sequence[PlanePoint],
    metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
) -> float:
    """The paper's deviation ``â(τ)`` of a raw segment.

    Measures every interior point against the line (or line segment)
    defined by the first and last points.  Segments with fewer than three
    points have zero deviation by definition.
    """
    if len(points) < 3:
        return 0.0
    a = points[0].xy
    b = points[-1].xy
    best = 0.0
    for p in points[1:-1]:
        d = metric_deviation(p.xy, a, b, metric)
        if d > best:
            best = d
    return best


@dataclass(frozen=True)
class Segment:
    """A temporally-consecutive run of location points ``τ = {v1..vn}``."""

    points: tuple[PlanePoint, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ValueError("a segment needs at least one point")
        for prev, cur in zip(self.points, self.points[1:]):
            if cur.t < prev.t:
                raise ValueError(
                    "segment points must be non-decreasing in time "
                    f"({prev.t} then {cur.t})"
                )

    @classmethod
    def from_points(cls, points: Iterable[PlanePoint]) -> "Segment":
        return cls(tuple(points))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[PlanePoint]:
        return iter(self.points)

    @property
    def start(self) -> PlanePoint:
        return self.points[0]

    @property
    def end(self) -> PlanePoint:
        return self.points[-1]

    @property
    def duration(self) -> float:
        """Elapsed seconds between the first and last sample."""
        return self.end.t - self.start.t

    def deviation(
        self, metric: DistanceMetric = DistanceMetric.POINT_TO_LINE
    ) -> float:
        """``â(τ)``: max interior-point distance to the start-end line."""
        return segment_deviation(self.points, metric)

    def path_length(self) -> float:
        """Sum of consecutive point-to-point distances (metres)."""
        total = 0.0
        for prev, cur in zip(self.points, self.points[1:]):
            total += prev.distance_to(cur)
        return total


@dataclass(frozen=True)
class Trajectory:
    """A set of consecutive segments ``T = {τ1, τ2, ...}``."""

    segments: tuple[Segment, ...]

    @classmethod
    def from_segments(cls, segments: Iterable[Segment]) -> "Trajectory":
        return cls(tuple(segments))

    @classmethod
    def single(cls, points: Iterable[PlanePoint]) -> "Trajectory":
        """A trajectory holding one segment with all the given points."""
        return cls((Segment.from_points(points),))

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def point_count(self) -> int:
        return sum(len(s) for s in self.segments)

    def all_points(self) -> list[PlanePoint]:
        out: list[PlanePoint] = []
        for seg in self.segments:
            out.extend(seg.points)
        return out

    def deviation(
        self, metric: DistanceMetric = DistanceMetric.POINT_TO_LINE
    ) -> float:
        """Trajectory deviation: ``max(â(τi))`` over the segments."""
        return max((s.deviation(metric) for s in self.segments), default=0.0)


@dataclass(frozen=True)
class CompressedTrajectory:
    """The ordered key points of a compressed trajectory ``T'``.

    Consecutive key points delimit compressed segments; ``key_points[i]``
    and ``key_points[i+1]`` are segment i's start and end.  The object also
    remembers how many raw points it represents so compression rate
    (``N_compressed / N_original``, lower is better) can be reported the way
    the paper does.
    """

    key_points: tuple[PlanePoint, ...]
    original_count: int
    metric: DistanceMetric = DistanceMetric.POINT_TO_LINE
    tolerance: float = 0.0
    #: Short identifier of the producing compressor ("bqs", "td-tr", ...);
    #: every algorithm in :mod:`repro.compression` stamps its name here so
    #: evaluation output is self-describing.
    algorithm: str = ""
    #: The UTM frame the plane coordinates live in, when known.  The
    #: geodetic engine front-end stamps the zone it auto-selected from each
    #: device's first fix here, and the storage layer
    #: (:class:`~repro.storage.store.StoreSink` /
    #: :func:`~repro.storage.codec.encode_trajectory`) propagates it into
    #: every blob header, so a reader can unproject key points back to GPS
    #: without out-of-band context.  ``None`` for trajectories compressed
    #: from already-planar fixes.
    frame: "UTMProjection | None" = None
    #: Extra bookkeeping from the producing algorithm (e.g. decision stats).
    info: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.original_count < 0:
            raise ValueError("original_count must be non-negative")
        if len(self.key_points) > max(self.original_count, 0) and self.original_count:
            raise ValueError(
                "compressed trajectory cannot contain more points than the "
                f"original ({len(self.key_points)} > {self.original_count})"
            )
        for prev, cur in zip(self.key_points, self.key_points[1:]):
            if cur.t < prev.t:
                raise ValueError("key points must be non-decreasing in time")

    def __len__(self) -> int:
        return len(self.key_points)

    def __iter__(self) -> Iterator[PlanePoint]:
        return iter(self.key_points)

    @property
    def compression_rate(self) -> float:
        """``N_compressed / N_original`` (paper Section VI-B; lower = better)."""
        if self.original_count == 0:
            return 0.0
        return len(self.key_points) / self.original_count

    @property
    def compression_ratio(self) -> float:
        """``N_original / N_compressed`` (the conventional ratio; higher = better)."""
        if not self.key_points:
            return 0.0
        return self.original_count / len(self.key_points)

    def storage_bytes(self, bytes_per_point: int = GPS_SAMPLE_BYTES) -> int:
        """Bytes needed to store the key points on the target platform."""
        return len(self.key_points) * bytes_per_point

    def to_columns(self) -> "TrajectoryColumns":
        """Shred the key points into flat ``(ts, xs, ys)`` columns.

        The serialization hook used by :mod:`repro.storage.codec`: the
        binary codec delta-encodes these columns, and decoding produces a
        :class:`~repro.model.columns.TrajectoryColumns` again (``z`` is
        dropped — the codec covers the 2-D hot path).
        """
        from .columns import TrajectoryColumns  # late: columns imports point

        return TrajectoryColumns.from_points(self.key_points)

    def segments(self) -> list[tuple[PlanePoint, PlanePoint]]:
        """The (start, end) pairs of every compressed segment."""
        return list(zip(self.key_points, self.key_points[1:]))

    def segment_for_time(self, t: float) -> tuple[PlanePoint, PlanePoint]:
        """The compressed segment whose time window contains ``t``.

        Raises ``ValueError`` outside the trajectory's time range.
        """
        if not self.key_points:
            raise ValueError("empty compressed trajectory")
        if t < self.key_points[0].t or t > self.key_points[-1].t:
            raise ValueError(
                f"t={t} outside trajectory time range "
                f"[{self.key_points[0].t}, {self.key_points[-1].t}]"
            )
        # Linear scan is fine: reconstruction walks segments in order, and
        # random access uses segment_for_time rarely; key point lists are
        # small by construction (that is the whole point of compression).
        for a, b in zip(self.key_points, self.key_points[1:]):
            if a.t <= t <= b.t:
                return (a, b)
        # t equals the final timestamp of a single-point trajectory.
        last = self.key_points[-1]
        return (last, last)

    def max_deviation_from(self, original: Sequence[PlanePoint]) -> float:
        """Audit helper: maximum deviation of ``original`` from this result.

        Every original point is measured against the compressed segment
        covering its timestamp (endpoints measure as zero).  This is the
        quantity the error bound promises to keep ≤ tolerance.
        """
        if len(self.key_points) < 2:
            if not self.key_points or not original:
                return 0.0
            anchor = self.key_points[0].xy
            return max(
                metric_deviation(p.xy, anchor, anchor, self.metric)
                for p in original
            )
        worst = 0.0
        seg_iter = list(zip(self.key_points, self.key_points[1:]))
        idx = 0
        for p in original:
            while idx + 1 < len(seg_iter) and seg_iter[idx][1].t < p.t:
                idx += 1
            # Several segments can cover p.t when consecutive key points
            # share a timestamp (zero-duration segments, which push()
            # permits); the compressed representation is multivalued there,
            # so the point is audited against the nearest covering segment.
            best = math.inf
            j = idx
            while j < len(seg_iter) and seg_iter[j][0].t <= p.t:
                a, b = seg_iter[j]
                d = metric_deviation(p.xy, a.xy, b.xy, self.metric)
                if d < best:
                    best = d
                j += 1
            if math.isinf(best):
                a, b = seg_iter[idx]
                best = metric_deviation(p.xy, a.xy, b.xy, self.metric)
            if best > worst:
                worst = best
        return worst
