"""Online (single-pass) statistics used by the temporal reconstruction.

The paper notes (Section IV) that the interpolation distribution ``P`` "can
be derived online to fit the distribution of the actual data.  For instance,
an online algorithm for fitting Gaussian distribution by dynamically updating
the variance and mean can be implemented with semi-numeric algorithms
described in [Knuth, TAOCP vol. 2]".  This module provides that machinery:
Welford's numerically-stable online mean/variance update, plus a tiny online
histogram for empirical distributions used by the synthetic data generators.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["RunningStats", "OnlineGaussian", "EmpiricalDistribution"]


@dataclass
class RunningStats:
    """Welford's online mean/variance accumulator (Knuth TAOCP 4.2.2).

    Supports O(1) ``push`` of a sample and O(1) queries for the running
    mean, (population or sample) variance, min and max.  Numerically stable:
    no sum-of-squares catastrophic cancellation.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def push(self, value: float) -> None:
        """Fold one sample into the running statistics."""
        if not math.isfinite(value):
            raise ValueError(f"non-finite sample: {value!r}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the running statistics."""
        for v in values:
            self.push(v)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        """Unbiased sample variance (0 for fewer than 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (Chan et al. parallel update)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / total
        )
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self


@dataclass
class OnlineGaussian:
    """An online-fitted Gaussian usable as the interpolation distribution P.

    ``cdf`` evaluates the fitted normal CDF; reconstruction rescales it over
    a segment's time window so that P(start) = 0 and P(end) = 1 (see
    :mod:`repro.model.reconstruction`).
    """

    stats: RunningStats = field(default_factory=RunningStats)

    def observe(self, value: float) -> None:
        """Fold one observation into the fit."""
        self.stats.push(value)

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def stddev(self) -> float:
        return self.stats.stddev

    def cdf(self, value: float) -> float:
        """Fitted normal CDF; degenerates to a unit step with no spread."""
        sd = self.stats.stddev
        if self.stats.count == 0:
            return 0.5
        if sd == 0.0:
            if value < self.mean:
                return 0.0
            if value > self.mean:
                return 1.0
            return 0.5
        return 0.5 * (1.0 + math.erf((value - self.mean) / (sd * math.sqrt(2.0))))


class EmpiricalDistribution:
    """A frozen empirical distribution with inverse-CDF sampling.

    The synthetic-movement models draw speeds from "the empirical
    distribution of speed" (Section VI-A); this class captures a sample set
    once and then provides quantile lookups given uniform variates, so the
    generators stay reproducible under a caller-supplied RNG.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        values = sorted(float(s) for s in samples)
        if not values:
            raise ValueError("empirical distribution needs at least one sample")
        for v in values:
            if not math.isfinite(v):
                raise ValueError(f"non-finite sample: {v!r}")
        self._values = values

    def __len__(self) -> int:
        return len(self._values)

    @property
    def minimum(self) -> float:
        return self._values[0]

    @property
    def maximum(self) -> float:
        return self._values[-1]

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile for ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        values = self._values
        if len(values) == 1:
            return values[0]
        pos = q * (len(values) - 1)
        low = int(pos)
        high = min(low + 1, len(values) - 1)
        frac = pos - low
        return values[low] * (1.0 - frac) + values[high] * frac

    def sample(self, uniform_variate: float) -> float:
        """Inverse-CDF sample from a uniform [0, 1) variate."""
        return self.quantile(min(max(uniform_variate, 0.0), 1.0))

    def cdf(self, value: float) -> float:
        """Empirical CDF (fraction of samples <= value)."""
        return bisect_right(self._values, value) / len(self._values)
