"""Trajectory data model: points, projections, trajectories, reconstruction."""

from .columns import TrajectoryColumns
from .point import EARTH_RADIUS_M, LocationPoint, PlanePoint, haversine_m, iter_plane_points
from .projection import (
    LocalTangentProjection,
    Projection,
    TransverseMercator,
    UTMProjection,
    project_track,
    unproject_track,
    utm_zone_for,
)
from .reconstruction import (
    GaussianProgress,
    ProgressDistribution,
    UniformProgress,
    interpolate,
    max_synchronized_deviation,
    reconstruct_at,
    reconstruct_series,
    synchronized_deviation,
    synchronized_deviation_xyt,
)
from .statistics import EmpiricalDistribution, OnlineGaussian, RunningStats
from .trajectory import (
    GPS_SAMPLE_BYTES,
    CompressedTrajectory,
    Segment,
    Trajectory,
    segment_deviation,
)

__all__ = [
    "EARTH_RADIUS_M",
    "GPS_SAMPLE_BYTES",
    "CompressedTrajectory",
    "EmpiricalDistribution",
    "GaussianProgress",
    "LocalTangentProjection",
    "LocationPoint",
    "OnlineGaussian",
    "PlanePoint",
    "Projection",
    "ProgressDistribution",
    "RunningStats",
    "Segment",
    "Trajectory",
    "TrajectoryColumns",
    "TransverseMercator",
    "UTMProjection",
    "UniformProgress",
    "haversine_m",
    "interpolate",
    "iter_plane_points",
    "max_synchronized_deviation",
    "project_track",
    "reconstruct_at",
    "reconstruct_series",
    "segment_deviation",
    "synchronized_deviation",
    "synchronized_deviation_xyt",
    "unproject_track",
    "utm_zone_for",
]
