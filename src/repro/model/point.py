"""Location-point primitives used throughout the library.

The paper (Section IV) defines a *location point* as the tuple
``<latitude, longitude, timestamp>``.  Internally every algorithm in this
library operates on points projected to a local metric plane (UTM or a local
tangent plane), so two closely-related types exist:

``LocationPoint``
    A raw GPS sample in geographic coordinates (degrees) plus a POSIX
    timestamp and optional altitude in metres.

``PlanePoint``
    A projected sample in metres, ``(x, y[, z], t)``.  All compression
    algorithms consume ``PlanePoint`` instances; the conversion is performed
    by :mod:`repro.model.projection`.

Both types are immutable; algorithms never mutate their inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence, cast

__all__ = [
    "LocationPoint",
    "PlanePoint",
    "EARTH_RADIUS_M",
    "haversine_m",
    "plane_points_from_flat",
]

#: Mean Earth radius in metres (IUGG value), used by the haversine helper.
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True, slots=True)
class LocationPoint:
    """A raw GPS fix ``<latitude, longitude, timestamp>`` (paper Section IV).

    Attributes:
        latitude: degrees north, in ``[-90, 90]``.
        longitude: degrees east, in ``[-180, 180]``.
        timestamp: POSIX seconds (float; sub-second precision allowed).
        altitude: metres above the ellipsoid, ``0.0`` when unknown.
    """

    latitude: float
    longitude: float
    timestamp: float
    altitude: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude!r}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude!r}")
        if not math.isfinite(self.timestamp):
            raise ValueError(f"timestamp must be finite: {self.timestamp!r}")

    def distance_m(self, other: "LocationPoint") -> float:
        """Great-circle distance to ``other`` in metres (haversine)."""
        return haversine_m(
            self.latitude, self.longitude, other.latitude, other.longitude
        )


@dataclass(frozen=True, slots=True)
class PlanePoint:
    """A projected sample in a local metric plane.

    ``x`` and ``y`` are metres in the projected frame.  ``z`` carries the
    third dimension for the 3-D BQS variant: either altitude in metres or a
    (scaled) timestamp for the time-sensitive error metric.  ``t`` is the
    POSIX timestamp and is carried through compression untouched so that key
    points keep their original acquisition times.
    """

    x: float
    y: float
    t: float = 0.0
    z: float = 0.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise ValueError(f"non-finite plane coordinates: ({self.x}, {self.y})")
        if not math.isfinite(self.z):
            raise ValueError(f"non-finite z coordinate: {self.z}")

    @property
    def xy(self) -> tuple[float, float]:
        """The planar coordinate pair ``(x, y)``."""
        return (self.x, self.y)

    @property
    def xyz(self) -> tuple[float, float, float]:
        """The 3-D coordinate triple ``(x, y, z)``."""
        return (self.x, self.y, self.z)

    def distance_to(self, other: "PlanePoint") -> float:
        """Euclidean planar distance (ignores ``z``) in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance3d_to(self, other: "PlanePoint") -> float:
        """Euclidean 3-D distance in metres."""
        return math.sqrt(
            (self.x - other.x) ** 2
            + (self.y - other.y) ** 2
            + (self.z - other.z) ** 2
        )

    def translated(self, dx: float, dy: float, dz: float = 0.0) -> "PlanePoint":
        """A copy shifted by ``(dx, dy, dz)``; the timestamp is preserved."""
        return PlanePoint(self.x + dx, self.y + dy, self.t, self.z + dz)


# Bulk materialization support: __new__ plus the raw slot descriptors skip
# the dataclass __init__/__post_init__ frames, which dominate the cost of
# building tens of thousands of points in the columnar hot paths.  (The
# cast hides the descriptor access from the type checker: on the class,
# a slots-dataclass field statically reads as plain ``float``.)
_PLANE_POINT_NEW = PlanePoint.__new__
_SET_X = cast(Any, PlanePoint).x.__set__
_SET_Y = cast(Any, PlanePoint).y.__set__
_SET_T = cast(Any, PlanePoint).t.__set__
_SET_Z = cast(Any, PlanePoint).z.__set__


def _trusted_plane_point(x: float, y: float, t: float, z: float) -> PlanePoint:
    """Construct a :class:`PlanePoint` without finiteness validation."""
    p = _PLANE_POINT_NEW(PlanePoint)
    _SET_X(p, x)
    _SET_Y(p, y)
    _SET_T(p, t)
    _SET_Z(p, z)
    return p


def plane_points_from_flat(flat: Sequence[float]) -> list[PlanePoint]:
    """Materialize interleaved ``x, y, t, z`` floats as :class:`PlanePoint`\\ s.

    The bulk twin of calling ``PlanePoint(x, y, t, z)`` per quadruple, for
    columnar hot paths that commit key points as flat floats.  Validation is
    screened with a single C-level ``sum`` over the batch — a non-finite
    element can never sum back to a finite total, so a finite total proves
    every element finite and the fast constructor (``__new__`` plus direct
    slot writes) is safe.  A non-finite total (a genuinely bad coordinate,
    or an astronomically unlikely overflow of valid ones) falls back to
    per-quadruple validated construction, so the first offending point
    raises exactly the ``ValueError`` a one-at-a-time loop would.
    """
    if len(flat) % 4:
        raise ValueError(
            f"flat point buffer length must be a multiple of 4, got {len(flat)}"
        )
    it = iter(flat)
    if math.isfinite(sum(flat)):
        return list(map(_trusted_plane_point, it, it, it, it))
    return list(map(PlanePoint, it, it, it, it))


def haversine_m(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance between two geographic coordinates in metres.

    Uses the haversine formulation, which is numerically stable for the
    short distances that dominate trajectory work.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def iter_plane_points(
    xs: Sequence[float] | Iterable[float],
    ys: Sequence[float] | Iterable[float],
    ts: Sequence[float] | Iterable[float] | None = None,
) -> Iterator[PlanePoint]:
    """Zip coordinate sequences into :class:`PlanePoint` instances.

    When ``ts`` is omitted, points are stamped ``0, 1, 2, ...`` which is the
    convention used by unit-interval synthetic streams in tests.
    """
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if ts is None:
        ts_list = [float(i) for i in range(len(xs))]
    else:
        ts_list = [float(t) for t in ts]
        if len(ts_list) != len(xs):
            raise ValueError("ts must match xs/ys length")
    for x, y, t in zip(xs, ys, ts_list):
        yield PlanePoint(float(x), float(y), t)
