"""Map projections used to bring GPS fixes into a metric plane.

The paper builds each Bounded Quadrant System in a *UTM-projected* frame
("the axes set to the UTM projected x and y axes", Section V-A).  This module
implements, from scratch:

``TransverseMercator``
    The full Gauss–Krüger transverse Mercator projection using the 6th-order
    Krüger series in the third flattening ``n`` (the formulation adopted by
    modern geodesy libraries), on the WGS-84 ellipsoid.  Forward error is a
    fraction of a millimetre within a UTM zone.

``UTMProjection``
    Zone bookkeeping (zone number/letter, false easting/northing, 0.9996
    scale) on top of :class:`TransverseMercator`.

``LocalTangentProjection``
    A fast equirectangular projection around a reference coordinate.
    Synthetic-data generators use it to turn metric simulations into GPS
    tracks and back; its distortion over the ≤10 km extents involved is
    negligible relative to GPS noise.

All projections implement the small :class:`Projection` protocol so that the
rest of the library never cares which one produced its ``PlanePoint``s.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from .point import LocationPoint, PlanePoint

__all__ = [
    "Projection",
    "TransverseMercator",
    "UTMProjection",
    "LocalTangentProjection",
    "utm_zone_for",
    "project_track",
    "unproject_track",
]

# WGS-84 ellipsoid constants.
WGS84_A = 6_378_137.0
WGS84_F = 1.0 / 298.257_223_563
UTM_SCALE = 0.9996
UTM_FALSE_EASTING = 500_000.0
UTM_FALSE_NORTHING_SOUTH = 10_000_000.0


class Projection(Protocol):
    """Minimal bidirectional projection interface.

    The concrete projections in this module additionally provide
    ``forward_columns(lats, lons) -> (xs, ys)``, the bulk twin of
    :meth:`forward` used by the geodetic ingestion path; it is kept out of
    the protocol so a two-method custom projection still satisfies it.
    """

    def forward(self, latitude: float, longitude: float) -> tuple[float, float]:
        """Geographic degrees -> planar metres ``(x, y)``."""
        ...

    def inverse(self, x: float, y: float) -> tuple[float, float]:
        """Planar metres -> geographic degrees ``(latitude, longitude)``."""
        ...


def _kruger_alpha(n: float) -> tuple[float, ...]:
    """Forward-series coefficients α₁..α₆ in the third flattening ``n``."""
    n2, n3, n4, n5, n6 = n * n, n**3, n**4, n**5, n**6
    return (
        n / 2 - 2 * n2 / 3 + 5 * n3 / 16 + 41 * n4 / 180
        - 127 * n5 / 288 + 7891 * n6 / 37800,
        13 * n2 / 48 - 3 * n3 / 5 + 557 * n4 / 1440 + 281 * n5 / 630
        - 1983433 * n6 / 1935360,
        61 * n3 / 240 - 103 * n4 / 140 + 15061 * n5 / 26880
        + 167603 * n6 / 181440,
        49561 * n4 / 161280 - 179 * n5 / 168 + 6601661 * n6 / 7257600,
        34729 * n5 / 80640 - 3418889 * n6 / 1995840,
        212378941 * n6 / 319334400,
    )


def _kruger_beta(n: float) -> tuple[float, ...]:
    """Inverse-series coefficients β₁..β₆ in the third flattening ``n``."""
    n2, n3, n4, n5, n6 = n * n, n**3, n**4, n**5, n**6
    return (
        n / 2 - 2 * n2 / 3 + 37 * n3 / 96 - n4 / 360
        - 81 * n5 / 512 + 96199 * n6 / 604800,
        n2 / 48 + n3 / 15 - 437 * n4 / 1440 + 46 * n5 / 105
        - 1118711 * n6 / 3870720,
        17 * n3 / 480 - 37 * n4 / 840 - 209 * n5 / 4480 + 5569 * n6 / 90720,
        4397 * n4 / 161280 - 11 * n5 / 504 - 830251 * n6 / 7257600,
        4583 * n5 / 161280 - 108847 * n6 / 3991680,
        20648693 * n6 / 638668800,
    )


@dataclass(frozen=True)
class TransverseMercator:
    """Gauss–Krüger transverse Mercator centred on ``central_meridian_deg``.

    The implementation follows the Krüger-``n`` series (6th order), which is
    the same formulation used by PROJ's ``etmerc`` and Karney's GeographicLib
    at lower order; within ±3.5° of the central meridian the series error is
    below 1 mm, far below GPS accuracy.
    """

    central_meridian_deg: float
    scale: float = 1.0
    false_easting: float = 0.0
    false_northing: float = 0.0

    def __post_init__(self) -> None:
        n = WGS84_F / (2.0 - WGS84_F)
        # Rectifying radius: A = a/(1+n) (1 + n²/4 + n⁴/64 + n⁶/256).
        rect_radius = (
            WGS84_A
            / (1.0 + n)
            * (1.0 + n**2 / 4.0 + n**4 / 64.0 + n**6 / 256.0)
        )
        object.__setattr__(self, "_n", n)
        object.__setattr__(self, "_rect_radius", rect_radius)
        object.__setattr__(self, "_alpha", _kruger_alpha(n))
        object.__setattr__(self, "_beta", _kruger_beta(n))
        e2 = WGS84_F * (2.0 - WGS84_F)
        object.__setattr__(self, "_e", math.sqrt(e2))

    # -- forward -----------------------------------------------------------

    def forward(self, latitude: float, longitude: float) -> tuple[float, float]:
        """Project geographic degrees to (easting, northing) metres."""
        e: float = self._e  # type: ignore[attr-defined]
        phi = math.radians(latitude)
        lam = math.radians(longitude - self.central_meridian_deg)
        # Wrap into (-pi, pi] so zone-edge longitudes behave.
        lam = math.remainder(lam, 2.0 * math.pi)

        sin_phi = math.sin(phi)
        # Conformal latitude via Gauss–Schreiber t.
        t = math.sinh(
            math.atanh(sin_phi) - e * math.atanh(e * sin_phi)
        )
        xi_p = math.atan2(t, math.cos(lam))
        eta_p = math.asinh(math.sin(lam) / math.hypot(t, math.cos(lam)))

        xi = xi_p
        eta = eta_p
        alpha: tuple[float, ...] = self._alpha  # type: ignore[attr-defined]
        for j, a_j in enumerate(alpha, start=1):
            xi += a_j * math.sin(2 * j * xi_p) * math.cosh(2 * j * eta_p)
            eta += a_j * math.cos(2 * j * xi_p) * math.sinh(2 * j * eta_p)

        rect_radius: float = self._rect_radius  # type: ignore[attr-defined]
        x = self.false_easting + self.scale * rect_radius * eta
        y = self.false_northing + self.scale * rect_radius * xi
        return (x, y)

    def forward_columns(
        self, latitudes: Sequence[float], longitudes: Sequence[float]
    ) -> tuple[array[float], array[float]]:
        """Bulk :meth:`forward`: degree columns in, metre columns out.

        Performs exactly the operations of :meth:`forward`, in the same
        order, so the output is bit-identical to a per-point loop — the
        zero-object path for geodetic ingestion (no ``LocationPoint`` /
        tuple per fix, constants and math functions hoisted out of the
        loop).
        """
        n = len(latitudes)
        if len(longitudes) != n:
            raise ValueError(
                f"column length mismatch: lats={n}, lons={len(longitudes)}"
            )
        xs = array("d", bytes(8 * n))
        ys = array("d", bytes(8 * n))
        e: float = self._e  # type: ignore[attr-defined]
        alpha: tuple[float, ...] = self._alpha  # type: ignore[attr-defined]
        rect_radius: float = self._rect_radius  # type: ignore[attr-defined]
        cm = self.central_meridian_deg
        kx = self.scale * rect_radius
        fe = self.false_easting
        fn = self.false_northing
        radians = math.radians
        remainder = math.remainder
        sin = math.sin
        cos = math.cos
        sinh = math.sinh
        cosh = math.cosh
        atanh = math.atanh
        asinh = math.asinh
        atan2 = math.atan2
        hypot = math.hypot
        two_pi = 2.0 * math.pi
        for i in range(n):
            phi = radians(latitudes[i])
            lam = remainder(radians(longitudes[i] - cm), two_pi)
            sin_phi = sin(phi)
            t = sinh(atanh(sin_phi) - e * atanh(e * sin_phi))
            cos_lam = cos(lam)
            xi_p = atan2(t, cos_lam)
            eta_p = asinh(sin(lam) / hypot(t, cos_lam))
            xi = xi_p
            eta = eta_p
            for j, a_j in enumerate(alpha, start=1):
                xi += a_j * sin(2 * j * xi_p) * cosh(2 * j * eta_p)
                eta += a_j * cos(2 * j * xi_p) * sinh(2 * j * eta_p)
            xs[i] = fe + kx * eta
            ys[i] = fn + kx * xi
        return xs, ys

    # -- inverse -----------------------------------------------------------

    def inverse(self, x: float, y: float) -> tuple[float, float]:
        """Unproject (easting, northing) metres to geographic degrees."""
        rect_radius: float = self._rect_radius  # type: ignore[attr-defined]
        xi = (y - self.false_northing) / (self.scale * rect_radius)
        eta = (x - self.false_easting) / (self.scale * rect_radius)

        xi_p = xi
        eta_p = eta
        beta: tuple[float, ...] = self._beta  # type: ignore[attr-defined]
        for j, b_j in enumerate(beta, start=1):
            xi_p -= b_j * math.sin(2 * j * xi) * math.cosh(2 * j * eta)
            eta_p -= b_j * math.cos(2 * j * xi) * math.sinh(2 * j * eta)

        # Gauss–Schreiber back to conformal latitude components.
        t = math.sin(xi_p) / math.hypot(math.sinh(eta_p), math.cos(xi_p))
        lam = math.atan2(math.sinh(eta_p), math.cos(xi_p))
        phi = self._inverse_conformal(math.atan(t))
        return (math.degrees(phi), self.central_meridian_deg + math.degrees(lam))

    def _inverse_conformal(self, chi: float) -> float:
        """Invert the conformal latitude by Newton iteration.

        Solves ``asinh(tan φ) - e atanh(e sin φ) = asinh(tan χ)`` for φ;
        converges to machine precision in a handful of iterations for any
        |χ| < 90°.
        """
        e: float = self._e  # type: ignore[attr-defined]
        psi = math.asinh(math.tan(chi))
        phi = chi
        for _ in range(12):
            sin_phi = math.sin(phi)
            f = math.asinh(math.tan(phi)) - e * math.atanh(e * sin_phi) - psi
            # d/dφ of the left-hand side.
            fp = 1.0 / math.cos(phi) - (
                e * e * math.cos(phi) / (1.0 - e * e * sin_phi * sin_phi)
            )
            step = f / fp
            phi -= step
            if abs(step) < 1e-15:
                break
        return phi


def utm_zone_for(latitude: float, longitude: float) -> int:
    """The UTM zone number for a coordinate, with the standard exceptions.

    Handles the widened zone 32V over south-west Norway and the Svalbard
    zones 31X/33X/35X/37X.  The antimeridian is canonicalized: ±180° (and
    any wrap that lands on it) is the *western* edge of zone 1, so
    ``utm_zone_for(0, 180.0) == utm_zone_for(0, -180.0) == 1``.
    """
    lon = math.remainder(longitude, 360.0)
    # math.remainder rounds half-even at the ±180 tie, so the same physical
    # meridian comes back as +180 or -180 depending on the input's sign and
    # winding; fold both onto -180 (zone 1's western edge).
    if lon == 180.0:
        lon = -180.0
    zone = int((lon + 180.0) // 6.0) + 1
    zone = min(max(zone, 1), 60)
    if 56.0 <= latitude < 64.0 and 3.0 <= lon < 12.0:
        return 32
    if 72.0 <= latitude <= 84.0:
        if 0.0 <= lon < 9.0:
            return 31
        if 9.0 <= lon < 21.0:
            return 33
        if 21.0 <= lon < 33.0:
            return 35
        if 33.0 <= lon < 42.0:
            return 37
    return zone


@dataclass(frozen=True)
class UTMProjection:
    """A single-zone UTM projection (WGS-84, k0 = 0.9996).

    Instances are pinned to one zone/hemisphere; points from other zones are
    still projected consistently (they simply fall outside the nominal zone
    strip), which is the behaviour trajectory work wants: one continuous
    plane per tracked deployment.
    """

    zone: int
    south: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.zone <= 60:
            raise ValueError(f"UTM zone must be 1..60, got {self.zone}")
        tm = TransverseMercator(
            central_meridian_deg=self.zone * 6.0 - 183.0,
            scale=UTM_SCALE,
            false_easting=UTM_FALSE_EASTING,
            false_northing=UTM_FALSE_NORTHING_SOUTH if self.south else 0.0,
        )
        object.__setattr__(self, "_tm", tm)

    @classmethod
    def for_coordinate(cls, latitude: float, longitude: float) -> "UTMProjection":
        """The natural UTM projection for a coordinate."""
        return cls(zone=utm_zone_for(latitude, longitude), south=latitude < 0.0)

    def forward(self, latitude: float, longitude: float) -> tuple[float, float]:
        return self._tm.forward(latitude, longitude)  # type: ignore[attr-defined]

    def forward_columns(
        self, latitudes: Sequence[float], longitudes: Sequence[float]
    ) -> tuple[array[float], array[float]]:
        """Bulk :meth:`forward`; bit-identical to a per-point loop."""
        return self._tm.forward_columns(latitudes, longitudes)  # type: ignore[attr-defined]

    def inverse(self, x: float, y: float) -> tuple[float, float]:
        return self._tm.inverse(x, y)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class LocalTangentProjection:
    """Equirectangular projection about a reference coordinate.

    ``x`` grows east, ``y`` grows north, both in metres, with the reference
    coordinate at the origin.  Good to centimetres over the ≤10 km regions
    the simulators use, and an order of magnitude faster than the full
    transverse-Mercator series.
    """

    ref_latitude: float
    ref_longitude: float
    radius_m: float = 6_371_008.8

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_cos_ref", math.cos(math.radians(self.ref_latitude))
        )

    def forward(self, latitude: float, longitude: float) -> tuple[float, float]:
        cos_ref: float = self._cos_ref  # type: ignore[attr-defined]
        x = math.radians(longitude - self.ref_longitude) * self.radius_m * cos_ref
        y = math.radians(latitude - self.ref_latitude) * self.radius_m
        return (x, y)

    def forward_columns(
        self, latitudes: Sequence[float], longitudes: Sequence[float]
    ) -> tuple[array[float], array[float]]:
        """Bulk :meth:`forward`; bit-identical to a per-point loop."""
        n = len(latitudes)
        if len(longitudes) != n:
            raise ValueError(
                f"column length mismatch: lats={n}, lons={len(longitudes)}"
            )
        cos_ref: float = self._cos_ref  # type: ignore[attr-defined]
        radius = self.radius_m
        ref_lat = self.ref_latitude
        ref_lon = self.ref_longitude
        radians = math.radians
        xs = array("d", bytes(8 * n))
        ys = array("d", bytes(8 * n))
        for i in range(n):
            # Same association order as forward() — bit-identical output.
            xs[i] = radians(longitudes[i] - ref_lon) * radius * cos_ref
            ys[i] = radians(latitudes[i] - ref_lat) * radius
        return xs, ys

    def inverse(self, x: float, y: float) -> tuple[float, float]:
        cos_ref: float = self._cos_ref  # type: ignore[attr-defined]
        latitude = self.ref_latitude + math.degrees(y / self.radius_m)
        longitude = self.ref_longitude + math.degrees(
            x / (self.radius_m * cos_ref)
        )
        return (latitude, longitude)


def project_track(
    points: Iterable[LocationPoint],
    projection: Projection | None = None,
    z_from_altitude: bool = False,
) -> list[PlanePoint]:
    """Project GPS fixes into one continuous metric plane.

    When ``projection`` is omitted, the UTM zone of the first fix is used
    for the whole track (the standard convention for single-deployment
    trajectory datasets).  With ``z_from_altitude`` the plane points carry
    altitude in ``z`` for 3-D compression.
    """
    pts = list(points)
    if not pts:
        return []
    if projection is None:
        projection = UTMProjection.for_coordinate(pts[0].latitude, pts[0].longitude)
    out: list[PlanePoint] = []
    for p in pts:
        x, y = projection.forward(p.latitude, p.longitude)
        z = p.altitude if z_from_altitude else 0.0
        out.append(PlanePoint(x, y, p.timestamp, z))
    return out


def unproject_track(
    points: Iterable[PlanePoint],
    projection: Projection,
    z_is_altitude: bool = False,
) -> list[LocationPoint]:
    """Invert :func:`project_track` for a given projection."""
    out: list[LocationPoint] = []
    for p in points:
        lat, lon = projection.inverse(p.x, p.y)
        out.append(
            LocationPoint(
                latitude=lat,
                longitude=lon,
                timestamp=p.t,
                altitude=p.z if z_is_altitude else 0.0,
            )
        )
    return out
