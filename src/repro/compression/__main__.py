"""CLI entry point: ``python -m repro.compression`` runs the evaluation harness."""

from .evaluate import main

if __name__ == "__main__":
    raise SystemExit(main())
