"""The Bounded Quadrant System compressor (paper Section V).

BQS is a one-pass, error-bounded compressor.  It opens a segment at an
*anchor* (the last committed key point) and, as points stream in, asks for
each new point ``p`` whether every point seen since the anchor stays within
``epsilon`` of the *path line* through the anchor and ``p``.  Answering that
question exactly requires the whole segment's points; the paper's insight is
that two cheap bounds decide almost every case without touching a buffer:

* The plane around the anchor is split into four **quadrants** aligned with
  the (UTM-projected) x and y axes.  A quadrant never spans more than π/2 of
  polar angle, so its angular extremes are well defined.
* Per quadrant, BQS maintains a **bounding box**, the extreme polar
  **angles** (the two bounding lines), a **convex hull** of the quadrant's
  points, and up to **eight significant points** — the actual trajectory
  points attaining the box sides, the angular extremes and the nearest /
  farthest distance from the anchor.
* The quadrant's points all lie in the convex polygon ``box ∩ wedge``
  (the *bounded area*), so the maximum deviation from any path line is at
  most the maximum over that polygon's vertices — the **upper bound** of
  Theorems 5.3–5.5.  The significant points are real points, so their
  maximum deviation is a **lower bound**.

On each arrival: if the upper bound is within ``epsilon`` the point is
admitted; if the lower bound already exceeds ``epsilon`` the previous point
is committed as a key point; only when the tolerance falls between the two
bounds does BQS fall back to the exact deviation.  Point-to-line distance is
convex in position, so the segment's exact maximum deviation is attained at
a vertex of the per-quadrant convex hulls — the fallback scans the O(h)
hull vertices, never a buffer of all n segment points.

The hot path is deliberately allocation-lean (this is the "on the go" /
per-point-cost claim of the paper):

* hulls are maintained incrementally (:class:`~repro.geometry.planar.
  IncrementalHull`, amortized O(log h) insert) instead of re-running the
  batch hull on every arrival;
* the bounded-area polygon is cached and re-cut only when an arrival
  actually grows the box or widens the wedge;
* the polar angle and radius of each arrival are computed once and shared
  by the box, wedge, and significant-point updates;
* both bounds and the exact fallback compare cross products against the
  tolerance pre-scaled by the path-line norm, so no per-vertex ``hypot`` or
  division runs;
* a segment split reuses the four quadrant structures in place rather than
  reallocating them.

A full point buffer survives only behind the ``debug_audit`` flag, where
every exact-fallback decision is cross-checked against a brute-force scan
of the buffered segment points (and the test suite keeps that mode honest).
"""

from __future__ import annotations

import math

from ..geometry.metrics import DistanceMetric
from ..geometry.planar import (
    IncrementalHull,
    Vec2,
    max_abs_cross,
    max_distance_to_line_origin,
    min_distance_on_segment_to_line_origin,
    rectangle_corners,
    wedge_box_polygon,
)
from ..model.point import PlanePoint
from .base import CompressorBase, Decision, PointBuffer

__all__ = ["QuadrantState", "BQSCompressor", "quadrant_index", "polar_angle"]

_TWO_PI = 2.0 * math.pi

# Integer decision slots used by the batched ingest loops; the tuple maps a
# slot back to the public Decision label when stats are folded in.
_D_INIT = 0
_D_ACCEPT = 1
_D_UPPER = 2
_D_LOWER = 3
_D_EXACT_ACCEPT = 4
_D_EXACT_COMMIT = 5
_DECISION_LABELS = (
    Decision.INIT,
    Decision.ACCEPT,
    Decision.UPPER_BOUND,
    Decision.LOWER_BOUND,
    Decision.EXACT_ACCEPT,
    Decision.EXACT_COMMIT,
)


def polar_angle(x: float, y: float) -> float:
    """Polar angle of ``(x, y)`` in ``[0, 2π)``; 0 for the origin itself.

    Same convention as :func:`repro.geometry.planar.angle_of`, taking bare
    coordinates so hot-path callers skip the tuple build.
    """
    if x == 0.0 and y == 0.0:
        return 0.0
    theta = math.atan2(y, x)
    return theta + _TWO_PI if theta < 0.0 else theta


class QuadrantState:
    """Per-quadrant summary: bounding box, bounding lines, hull, significant points.

    All coordinates are anchor-relative (the anchor is the origin).  The
    ``track_hull`` flag turns the convex-hull and significant-point
    maintenance off for the hull-free Fast-BQS variant, leaving the O(1)
    box/angle state only.
    """

    __slots__ = (
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "theta_lo",
        "theta_hi",
        "min_r",
        "max_r",
        "count",
        "track_hull",
        "_hull",
        "_area",
        "_p_min_x",
        "_p_max_x",
        "_p_min_y",
        "_p_max_y",
        "_p_theta_lo",
        "_p_theta_hi",
        "_p_min_r",
        "_p_max_r",
    )

    def __init__(self, track_hull: bool = True) -> None:
        self.track_hull = track_hull
        self._hull: IncrementalHull | None = (
            IncrementalHull() if track_hull else None
        )
        self.reset()

    def reset(self) -> None:
        """Return to the empty state, reusing the hull's allocations."""
        self.min_x = math.inf
        self.min_y = math.inf
        self.max_x = -math.inf
        self.max_y = -math.inf
        self.theta_lo = math.inf
        self.theta_hi = -math.inf
        self.min_r = math.inf
        self.max_r = -math.inf
        self.count = 0
        self._area: list[Vec2] | None = None
        self._p_min_x = None
        self._p_max_x = None
        self._p_min_y = None
        self._p_max_y = None
        self._p_theta_lo = None
        self._p_theta_hi = None
        self._p_min_r = None
        self._p_max_r = None
        if self._hull is not None:
            self._hull.clear()

    @property
    def hull(self) -> list[Vec2]:
        """Hull vertices (counter-clockwise); ``[]`` when hulls are off."""
        if self._hull is None:
            return []
        return self._hull.vertices()

    def add(self, v: Vec2, theta: float | None = None, r: float | None = None) -> int:
        """Fold one anchor-relative point into the quadrant summary.

        ``theta`` (polar angle in ``[0, 2π)``) and ``r`` (norm) may be
        passed in when the caller already computed them for the arrival;
        they are derived on demand otherwise.  Returns the net change in
        hull vertex count (0 when hulls are off), which is also the net
        change in trajectory points this quadrant retains.
        """
        x, y = v
        if theta is None:
            theta = polar_angle(x, y)
        self.count += 1
        grew = False
        if x < self.min_x:
            self.min_x = x
            self._p_min_x = v
            grew = True
        if x > self.max_x:
            self.max_x = x
            self._p_max_x = v
            grew = True
        if y < self.min_y:
            self.min_y = y
            self._p_min_y = v
            grew = True
        if y > self.max_y:
            self.max_y = y
            self._p_max_y = v
            grew = True
        if theta < self.theta_lo:
            self.theta_lo = theta
            self._p_theta_lo = v
            grew = True
        if theta > self.theta_hi:
            self.theta_hi = theta
            self._p_theta_hi = v
            grew = True
        if grew:
            # Only an actual box/wedge change invalidates the cached bounded
            # area; points landing strictly inside it keep the cache warm.
            self._area = None
        if not self.track_hull:
            return 0
        if r is None:
            r = math.hypot(x, y)
        if r < self.min_r:
            self.min_r = r
            self._p_min_r = v
        if r > self.max_r:
            self.max_r = r
            self._p_max_r = v
        return self._hull.add(v)

    def significant_points(self) -> list[Vec2]:
        """The ≤8 distinct significant points (actual trajectory points).

        Empty when ``track_hull`` is off — Fast-BQS never consults them and
        keeps no per-point state.
        """
        if not self.track_hull:
            return []
        seen: list[Vec2] = []
        for p in (
            self._p_min_x,
            self._p_max_x,
            self._p_min_y,
            self._p_max_y,
            self._p_theta_lo,
            self._p_theta_hi,
            self._p_min_r,
            self._p_max_r,
        ):
            if p is not None and p not in seen:
                seen.append(p)
        return seen

    def bounded_area(self) -> list[Vec2]:
        """Vertices of the quadrant's box ∩ wedge polygon (the bounded area).

        The polygon depends only on the quadrant state, not on the query's
        path line, so it is cached between arrivals and rebuilt only when
        :meth:`add` grows the box or widens the wedge.
        """
        if self.count == 0:
            return []
        area = self._area
        if area is None:
            area = wedge_box_polygon(
                self.min_x, self.min_y, self.max_x, self.max_y,
                self.theta_lo, self.theta_hi,
            )
            if not area:
                # Numerically degenerate (e.g. a box collapsed to a point on
                # a wedge edge): fall back to the box alone, still a valid
                # bound.
                area = rectangle_corners(
                    self.min_x, self.min_y, self.max_x, self.max_y
                )
            self._area = area
        return area

    # -- scaled bounds (hot path) -------------------------------------------
    #
    # The three methods below return distances multiplied by the path-line
    # norm ``hypot(dx, dy)``: callers compare them against ``epsilon * norm``
    # computed once per arrival, avoiding any per-vertex hypot/division.

    def upper_cross(self, dx: float, dy: float) -> float:
        """Scaled upper bound: max ``|cross|`` over the bounded area."""
        area = self._area
        if area is None:
            area = self.bounded_area()
        return max_abs_cross(area, dx, dy)

    def upper_cross_exceeds(self, dx: float, dy: float, scaled_eps: float) -> bool:
        """Does the scaled upper bound exceed ``scaled_eps``?

        Two stages, same verdict as comparing :meth:`upper_cross` directly:
        the bounding box contains the bounded area, so when the max
        ``|cross|`` over the four box corners is already within tolerance
        the area bound is too — decided from eight multiplications without
        cutting or scanning the cached polygon.  Only a failing screen
        consults the box ∩ wedge polygon.  On workloads that grow the box
        on most arrivals (anything with drift) this skips the polygon
        rebuild entirely for the common within-bound case.
        """
        x0 = self.min_x
        y0 = self.min_y
        x1 = self.max_x
        y1 = self.max_y
        best = c = dx * y0 - dy * x0
        if best < 0.0:
            best = -best
        c = dx * y0 - dy * x1
        if c < 0.0:
            c = -c
        if c > best:
            best = c
        c = dx * y1 - dy * x1
        if c < 0.0:
            c = -c
        if c > best:
            best = c
        c = dx * y1 - dy * x0
        if c < 0.0:
            c = -c
        if c > best:
            best = c
        if best <= scaled_eps:
            return False
        area = self._area
        if area is None:
            area = self.bounded_area()
        return max_abs_cross(area, dx, dy) > scaled_eps

    def lower_cross(self, dx: float, dy: float) -> float:
        """Scaled lower bound, witnessed by real trajectory points.

        Two certificates: the deviation of each significant point, and —
        because every bounding-box edge is touched by at least one point —
        the minimum distance from each box edge to the path line.
        """
        best = 0.0
        for p in (
            self._p_min_x,
            self._p_max_x,
            self._p_min_y,
            self._p_max_y,
            self._p_theta_lo,
            self._p_theta_hi,
            self._p_min_r,
            self._p_max_r,
        ):
            if p is not None:
                c = dx * p[1] - dy * p[0]
                if c < 0.0:
                    c = -c
                if c > best:
                    best = c
        x0 = self.min_x
        y0 = self.min_y
        x1 = self.max_x
        y1 = self.max_y
        c00 = dx * y0 - dy * x0
        c10 = dx * y0 - dy * x1
        c11 = dx * y1 - dy * x1
        c01 = dx * y1 - dy * x0
        ca = c00
        for cb in (c10, c11, c01, c00):
            if not ((ca <= 0.0 <= cb) or (cb <= 0.0 <= ca)):
                m = min(abs(ca), abs(cb))
                if m > best:
                    best = m
            ca = cb
        return best

    def exact_cross(self, dx: float, dy: float) -> float:
        """Scaled exact deviation: max ``|cross|`` over the hull vertices."""
        return self._hull.max_abs_cross(dx, dy)

    # -- unscaled API (tests, inspection, degenerate path-lines) ------------

    def upper_bound(self, direction: Vec2) -> float:
        """Upper bound on the quadrant's max deviation from the path line."""
        if self.count == 0:
            return 0.0
        dx, dy = direction
        denom = math.hypot(dx, dy)
        if denom == 0.0:
            return max_distance_to_line_origin(self.bounded_area(), direction)
        return self.upper_cross(dx, dy) / denom

    def lower_bound(self, direction: Vec2) -> float:
        """Lower bound on the quadrant's max deviation from the path line."""
        if self.count == 0:
            return 0.0
        dx, dy = direction
        denom = math.hypot(dx, dy)
        if denom == 0.0:
            best = max_distance_to_line_origin(
                self.significant_points(), direction
            )
            corners = rectangle_corners(
                self.min_x, self.min_y, self.max_x, self.max_y
            )
            for i in range(4):
                d = min_distance_on_segment_to_line_origin(
                    corners[i], corners[(i + 1) % 4], direction
                )
                if d > best:
                    best = d
            return best
        return self.lower_cross(dx, dy) / denom

    def hull_max_deviation(self, direction: Vec2) -> float:
        """Exact max deviation of the quadrant's points from the path line.

        Point-to-line distance is a convex function of position, so its
        maximum over the quadrant's points is attained at a convex-hull
        vertex; scanning the O(h) hull is exact and replaces any scan of
        the segment's full point set.
        """
        if self._hull is None or len(self._hull) == 0:
            return 0.0
        dx, dy = direction
        denom = math.hypot(dx, dy)
        if denom == 0.0:
            return max_distance_to_line_origin(self._hull.vertices(), direction)
        return self._hull.max_abs_cross(dx, dy) / denom


def quadrant_index(dx: float, dy: float) -> int:
    """Quadrant of an anchor-relative offset: 0=NE, 1=NW, 2=SW, 3=SE."""
    if dx >= 0.0:
        return 0 if dy >= 0.0 else 3
    return 1 if dy >= 0.0 else 2


class BQSCompressor(CompressorBase):
    """Full Bounded Quadrant System (convex hulls + exact hull fallback).

    ``debug_audit=True`` additionally buffers every segment point and
    cross-checks each exact-fallback decision against a brute-force scan of
    the buffer, raising ``RuntimeError`` on divergence.  It exists for tests
    and investigations; the production path never buffers.
    """

    name = "bqs"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
        debug_audit: bool = False,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("BQS needs a finite error bound")
        if metric is not DistanceMetric.POINT_TO_LINE:
            raise ValueError(
                "BQS bounds are derived for the point-to-line deviation "
                "metric (the paper's default); got " + metric.value
            )
        super().__init__(epsilon, metric)
        self._debug_audit = bool(debug_audit)
        self._reset()

    # -- state --------------------------------------------------------------

    def _reset(self) -> None:
        self._anchor: PlanePoint | None = None
        self._prev: PlanePoint | None = None
        self._interior = 0
        self._quadrants: list[QuadrantState] = [
            QuadrantState(track_hull=True) for _ in range(4)
        ]
        self._buffer: PointBuffer | None = (
            PointBuffer() if self._debug_audit else None
        )
        self._retained = 0
        self._retained_peak = 0

    @property
    def buffered_points(self) -> int:
        """Trajectory points retained in state: the four hulls' vertices.

        The hulls hold actual (anchor-relative) trajectory points, so this
        is the honest memory figure for the open segment — typically far
        below the segment length.  The ``debug_audit`` buffer shadows these
        points and is not double-counted.
        """
        return self._retained

    @property
    def buffer_peak(self) -> int:
        """High-water mark of retained points across the stream."""
        return self._retained_peak

    @property
    def audit_buffered(self) -> int:
        """Points in the ``debug_audit`` buffer (0 when auditing is off)."""
        return 0 if self._buffer is None else len(self._buffer)

    # -- algorithm ----------------------------------------------------------

    def _step(self, point: PlanePoint) -> tuple[PlanePoint | None, int]:
        """One arrival: returns (committed key point or None, decision slot).

        Shared verbatim by the per-point and batched paths so their outputs
        are bit-identical by construction.
        """
        anchor = self._anchor
        if anchor is None:
            self._anchor = point
            self._prev = point
            return point, _D_INIT

        if self._interior == 0:
            # First point after the anchor: no interior points yet, the
            # two-point segment is trivially within bound.
            self._admit(point)
            return None, _D_ACCEPT

        dx = point.x - anchor.x
        dy = point.y - anchor.y
        denom = math.hypot(dx, dy)
        if denom == 0.0:
            return self._step_degenerate(point)
        scaled_eps = self._epsilon * denom

        quadrants = self._quadrants
        within = True
        for q in quadrants:
            if q.count and q.upper_cross_exceeds(dx, dy, scaled_eps):
                # Any single quadrant over tolerance settles the question,
                # so stop scanning — same verdict as comparing the max.
                within = False
                break
        if within:
            # Accept paths reuse the (dx, dy, denom) already computed for
            # the bound checks; the anchor is unchanged.
            self._admit_rel(point, dx, dy, denom)
            return None, _D_UPPER

        lower = 0.0
        for q in quadrants:
            if q.count:
                c = q.lower_cross(dx, dy)
                if c > lower:
                    lower = c
        if lower > scaled_eps:
            key = self._split()
            self._admit(point)
            return key, _D_LOWER

        # epsilon falls between the bounds: exact deviation over the
        # per-quadrant hull vertices (convexity makes the hull scan exact).
        exact = 0.0
        for q in quadrants:
            if q.count:
                c = q.exact_cross(dx, dy)
                if c > exact:
                    exact = c
        if self._buffer is not None:
            self._audit_exact(anchor, dx, dy, exact)
        if exact <= scaled_eps:
            self._admit_rel(point, dx, dy, denom)
            return None, _D_EXACT_ACCEPT
        key = self._split()
        self._admit(point)
        return key, _D_EXACT_COMMIT

    def _step_degenerate(self, point: PlanePoint) -> tuple[PlanePoint | None, int]:
        """Arrival coinciding with the anchor: the path line collapses to a
        point and every deviation becomes a plain distance to the anchor."""
        direction: Vec2 = (0.0, 0.0)
        eps = self._epsilon
        quadrants = self._quadrants
        upper = 0.0
        for q in quadrants:
            if q.count:
                b = q.upper_bound(direction)
                if b > upper:
                    upper = b
        if upper <= eps:
            self._admit(point)
            return None, _D_UPPER
        lower = 0.0
        for q in quadrants:
            if q.count:
                b = q.lower_bound(direction)
                if b > lower:
                    lower = b
        if lower > eps:
            key = self._split()
            self._admit(point)
            return key, _D_LOWER
        exact = 0.0
        for q in quadrants:
            if q.count:
                d = q.hull_max_deviation(direction)
                if d > exact:
                    exact = d
        if exact <= eps:
            self._admit(point)
            return None, _D_EXACT_ACCEPT
        key = self._split()
        self._admit(point)
        return key, _D_EXACT_COMMIT

    def _audit_exact(
        self, anchor: PlanePoint, dx: float, dy: float, hull_cross: float
    ) -> None:
        """Cross-check the hull-based exact deviation against the buffer."""
        ax = anchor.x
        ay = anchor.y
        buffered = 0.0
        for b in self._buffer:
            c = dx * (b.y - ay) - dy * (b.x - ax)
            if c < 0.0:
                c = -c
            if c > buffered:
                buffered = c
        if abs(buffered - hull_cross) > 1e-6 * max(1.0, buffered):
            raise RuntimeError(
                "bqs debug_audit: hull exact deviation diverged from the "
                f"buffered scan (hull={hull_cross!r}, buffer={buffered!r})"
            )

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        key, slot = self._step(point)
        committed = [] if key is None else [key]
        return committed, _DECISION_LABELS[slot]

    def _ingest_many(self, points) -> int:
        """Batched ingest: integer decision slots, no per-point allocation."""
        return self._run_batch_stepped(points, self._step, _DECISION_LABELS)

    def _ingest_xyt(self, ts, xs, ys) -> int:
        """Columnar ingest: zero per-fix objects on the bound-decided paths.

        Mirrors :meth:`_step` with the stream state held in local floats:
        the anchor is read once per batch (it only changes on a split), and
        the previous fix is tracked as ``(x, y, t, z)`` floats and
        materialized as a :class:`PlanePoint` only when a split commits
        it.  Degenerate arrivals (fix coinciding with the anchor) are
        rare, so they sync the locals back into the instance and reuse
        :meth:`_step`'s exact logic.

        ``debug_audit`` mode buffers every point by definition, so it keeps
        the materializing default path.
        """
        if self._buffer is not None:
            return super()._ingest_xyt(ts, xs, ys)
        emit = self._emit
        quadrants = self._quadrants
        epsilon = self._epsilon
        hyp = math.hypot
        pa = polar_angle
        qi = quadrant_index
        counters = [0] * len(_DECISION_LABELS)
        last_t = self._last_t
        count = start = self._count
        anchor = self._anchor
        ax = ay = 0.0
        if anchor is not None:
            ax = anchor.x
            ay = anchor.y
        prev_obj = self._prev  # non-None means it is in sync with the floats
        px = py = pt = pz = 0.0
        if prev_obj is not None:
            px, py, pt, pz = prev_obj.x, prev_obj.y, prev_obj.t, prev_obj.z
        interior = self._interior
        retained = self._retained
        retained_peak = self._retained_peak
        try:
            for t, x, y in zip(ts, xs, ys):
                if not (t >= last_t):
                    raise ValueError(
                        f"points must be non-decreasing in time "
                        f"({last_t} then {t})"
                    )
                last_t = t
                count += 1

                if anchor is None:
                    point = PlanePoint(x, y, t)
                    anchor = point
                    ax = x
                    ay = y
                    prev_obj = point
                    px, py, pt, pz = x, y, t, 0.0
                    emit(point)
                    counters[_D_INIT] += 1
                    continue

                dx = x - ax
                dy = y - ay

                if interior == 0:
                    # First fix after the anchor: trivially within bound.
                    r = hyp(dx, dy)
                    retained += quadrants[qi(dx, dy)].add(
                        (dx, dy), pa(dx, dy), r
                    )
                    if retained > retained_peak:
                        retained_peak = retained
                    interior = 1
                    px, py, pt, pz = x, y, t, 0.0
                    prev_obj = None
                    counters[_D_ACCEPT] += 1
                    continue

                denom = hyp(dx, dy)
                if denom == 0.0:
                    # Rare: sync the locals out, reuse the object-path
                    # degenerate logic, and reload.
                    self._anchor = anchor
                    self._prev = (
                        prev_obj
                        if prev_obj is not None
                        else PlanePoint(px, py, pt, pz)
                    )
                    self._interior = interior
                    self._retained = retained
                    self._retained_peak = retained_peak
                    key, slot = self._step_degenerate(PlanePoint(x, y, t))
                    counters[slot] += 1
                    if key is not None:
                        emit(key)
                    anchor = self._anchor
                    ax = anchor.x
                    ay = anchor.y
                    prev_obj = self._prev
                    px, py, pt, pz = (
                        prev_obj.x, prev_obj.y, prev_obj.t, prev_obj.z
                    )
                    interior = self._interior
                    retained = self._retained
                    retained_peak = self._retained_peak
                    continue
                scaled_eps = epsilon * denom

                within = True
                for q in quadrants:
                    if q.count and q.upper_cross_exceeds(dx, dy, scaled_eps):
                        within = False
                        break
                if within:
                    retained += quadrants[qi(dx, dy)].add(
                        (dx, dy), pa(dx, dy), denom
                    )
                    if retained > retained_peak:
                        retained_peak = retained
                    interior += 1
                    px, py, pt, pz = x, y, t, 0.0
                    prev_obj = None
                    counters[_D_UPPER] += 1
                    continue

                lower = 0.0
                for q in quadrants:
                    if q.count:
                        c = q.lower_cross(dx, dy)
                        if c > lower:
                            lower = c
                if lower > scaled_eps:
                    slot = _D_LOWER
                else:
                    exact = 0.0
                    for q in quadrants:
                        if q.count:
                            c = q.exact_cross(dx, dy)
                            if c > exact:
                                exact = c
                    if exact <= scaled_eps:
                        retained += quadrants[qi(dx, dy)].add(
                            (dx, dy), pa(dx, dy), denom
                        )
                        if retained > retained_peak:
                            retained_peak = retained
                        interior += 1
                        px, py, pt, pz = x, y, t, 0.0
                        prev_obj = None
                        counters[_D_EXACT_ACCEPT] += 1
                        continue
                    slot = _D_EXACT_COMMIT

                # Split: the previous fix becomes a key point and the new
                # anchor; the current fix opens the fresh segment.
                key = (
                    prev_obj
                    if prev_obj is not None
                    else PlanePoint(px, py, pt, pz)
                )
                anchor = key
                ax = px
                ay = py
                for q in quadrants:
                    q.reset()
                ndx = x - ax
                ndy = y - ay
                retained = quadrants[qi(ndx, ndy)].add(
                    (ndx, ndy), pa(ndx, ndy), hyp(ndx, ndy)
                )
                if retained > retained_peak:
                    retained_peak = retained
                interior = 1
                px, py, pt, pz = x, y, t, 0.0
                prev_obj = None
                emit(key)
                counters[slot] += 1
        finally:
            self._last_t = last_t
            self._count = count
            self._anchor = anchor
            if anchor is None:
                self._prev = None
            else:
                self._prev = (
                    prev_obj
                    if prev_obj is not None
                    else PlanePoint(px, py, pt, pz)
                )
            self._interior = interior
            self._retained = retained
            self._retained_peak = retained_peak
            stats = self._stats
            for slot, n in enumerate(counters):
                if n:
                    label = _DECISION_LABELS[slot]
                    stats[label] = stats.get(label, 0) + n
        return count - start

    def _admit(self, point: PlanePoint) -> None:
        """Record an accepted point, deriving its anchor-relative offset."""
        anchor = self._anchor
        dx = point.x - anchor.x
        dy = point.y - anchor.y
        self._admit_rel(point, dx, dy, math.hypot(dx, dy))

    def _admit_rel(self, point: PlanePoint, dx: float, dy: float, r: float) -> None:
        """Record an accepted point whose anchor-relative offset ``(dx, dy)``
        and norm ``r`` the caller already computed (the accept hot path)."""
        retained = self._retained + self._quadrants[quadrant_index(dx, dy)].add(
            (dx, dy), polar_angle(dx, dy), r
        )
        self._retained = retained
        if retained > self._retained_peak:
            self._retained_peak = retained
        if self._buffer is not None:
            self._buffer.append(point)
        self._interior += 1
        self._prev = point

    def _split(self) -> PlanePoint:
        """Commit the previous point as a key point and open a new segment.

        Every admitted point was verified (by bound or exactly) against the
        path line to the point admitted after it, so the segment ending at
        ``prev`` honours the error bound; ``prev`` becomes the new anchor.
        The quadrant structures are reset in place, not reallocated.
        """
        prev = self._prev
        assert prev is not None
        self._anchor = prev
        self._prev = prev
        self._interior = 0
        self._retained = 0
        for q in self._quadrants:
            q.reset()
        if self._buffer is not None:
            self._buffer.restart_from(())
        return prev

    def _flush(self) -> list[PlanePoint]:
        if self._prev is None:
            return []
        return [self._prev]

    def _info(self) -> dict:
        info = super()._info()
        stats = self._stats
        info["exact_accepts"] = stats.get(Decision.EXACT_ACCEPT, 0)
        info["exact_commits"] = stats.get(Decision.EXACT_COMMIT, 0)
        info["retained_points_peak"] = self._retained_peak
        if self._buffer is not None:
            info["audit_buffer_peak"] = self._buffer.peak
        return info
