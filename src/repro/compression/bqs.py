"""The Bounded Quadrant System compressor (paper Section V).

BQS is a one-pass, error-bounded compressor.  It opens a segment at an
*anchor* (the last committed key point) and, as points stream in, asks for
each new point ``p`` whether every point seen since the anchor stays within
``epsilon`` of the *path line* through the anchor and ``p``.  Answering that
question exactly requires the whole segment's points; the paper's insight is
that two cheap bounds decide almost every case without touching a buffer:

* The plane around the anchor is split into four **quadrants** aligned with
  the (UTM-projected) x and y axes.  A quadrant never spans more than π/2 of
  polar angle, so its angular extremes are well defined.
* Per quadrant, BQS maintains a **bounding box**, the extreme polar
  **angles** (the two bounding lines), a **convex hull** of the quadrant's
  points, and up to **eight significant points** — the actual trajectory
  points attaining the box sides, the angular extremes and the nearest /
  farthest distance from the anchor.
* The quadrant's points all lie in the convex polygon ``box ∩ wedge``
  (the *bounded area*), so the maximum deviation from any path line is at
  most the maximum over that polygon's vertices — the **upper bound** of
  Theorems 5.3–5.5.  The significant points are real points, so their
  maximum deviation is a **lower bound**.

On each arrival: if the upper bound is within ``epsilon`` the point is
admitted with *no buffer access*; if the lower bound already exceeds
``epsilon`` the previous point is committed as a key point, again without
the buffer; only when the tolerance falls between the two bounds does BQS
fall back to the exact deviation computed over the buffered segment points.
The per-quadrant hulls summarise exactly those buffered points — point-to-
line distance is convex, so the buffered maximum equals the maximum over
the hull vertices (:meth:`QuadrantState.hull_max_deviation`, cross-checked
against the buffer in the test suite).
"""

from __future__ import annotations

import math

from ..geometry.metrics import DistanceMetric
from ..geometry.planar import (
    Vec2,
    angle_of,
    convex_hull,
    max_distance_to_line_origin,
    min_distance_on_segment_to_line_origin,
    norm,
    point_in_convex_polygon,
    point_line_distance_origin,
    rectangle_corners,
    wedge_box_polygon,
)
from ..model.point import PlanePoint
from .base import CompressorBase, Decision, PointBuffer

__all__ = ["QuadrantState", "BQSCompressor"]

#: Significant-point slots per quadrant (paper: at most 8 per quadrant).
_SIG_SLOTS = (
    "min_x",
    "max_x",
    "min_y",
    "max_y",
    "min_theta",
    "max_theta",
    "min_r",
    "max_r",
)


class QuadrantState:
    """Per-quadrant summary: bounding box, bounding lines, hull, significant points.

    All coordinates are anchor-relative (the anchor is the origin).  The
    ``track_hull`` flag turns the convex-hull maintenance off for the
    hull-free Fast-BQS variant, leaving the O(1) box/angle state only.
    """

    __slots__ = (
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "theta_lo",
        "theta_hi",
        "count",
        "track_hull",
        "hull",
        "_sig",
        "_area",
    )

    def __init__(self, track_hull: bool = True) -> None:
        self.min_x = math.inf
        self.min_y = math.inf
        self.max_x = -math.inf
        self.max_y = -math.inf
        self.theta_lo = math.inf
        self.theta_hi = -math.inf
        self.count = 0
        self.track_hull = track_hull
        self.hull: list[Vec2] = []
        self._sig: dict[str, tuple[float, Vec2]] = {}
        self._area: list[Vec2] | None = None

    def add(self, v: Vec2) -> None:
        """Fold one anchor-relative point into the quadrant summary."""
        x, y = v
        theta = angle_of(v)
        r = norm(v)
        self.count += 1
        self._area = None  # box or wedge changed; the cached polygon is stale
        if x < self.min_x:
            self.min_x = x
        if x > self.max_x:
            self.max_x = x
        if y < self.min_y:
            self.min_y = y
        if y > self.max_y:
            self.max_y = y
        if theta < self.theta_lo:
            self.theta_lo = theta
        if theta > self.theta_hi:
            self.theta_hi = theta
        if self.track_hull:
            self._update_sig("min_x", x, v, lower=True)
            self._update_sig("max_x", x, v, lower=False)
            self._update_sig("min_y", y, v, lower=True)
            self._update_sig("max_y", y, v, lower=False)
            self._update_sig("min_theta", theta, v, lower=True)
            self._update_sig("max_theta", theta, v, lower=False)
            self._update_sig("min_r", r, v, lower=True)
            self._update_sig("max_r", r, v, lower=False)
            if not point_in_convex_polygon(v, self.hull):
                self.hull = convex_hull([*self.hull, v])

    def _update_sig(self, slot: str, value: float, v: Vec2, lower: bool) -> None:
        cur = self._sig.get(slot)
        if cur is None or (value < cur[0] if lower else value > cur[0]):
            self._sig[slot] = (value, v)

    def significant_points(self) -> list[Vec2]:
        """The ≤8 distinct significant points (actual trajectory points)."""
        seen: list[Vec2] = []
        for slot in _SIG_SLOTS:
            entry = self._sig.get(slot)
            if entry is not None and entry[1] not in seen:
                seen.append(entry[1])
        return seen

    def bounded_area(self) -> list[Vec2]:
        """Vertices of the quadrant's box ∩ wedge polygon (the bounded area).

        The polygon depends only on the quadrant state, not on the query's
        path line, so it is cached between arrivals and rebuilt only when
        :meth:`add` grows the box or widens the wedge.
        """
        if self.count == 0:
            return []
        if self._area is None:
            poly = wedge_box_polygon(
                self.min_x, self.min_y, self.max_x, self.max_y,
                self.theta_lo, self.theta_hi,
            )
            if not poly:
                # Numerically degenerate (e.g. a box collapsed to a point on
                # a wedge edge): fall back to the box alone, still a valid
                # bound.
                poly = rectangle_corners(
                    self.min_x, self.min_y, self.max_x, self.max_y
                )
            self._area = poly
        return self._area

    def upper_bound(self, direction: Vec2) -> float:
        """Upper bound on the quadrant's max deviation from the path line."""
        if self.count == 0:
            return 0.0
        return max_distance_to_line_origin(self.bounded_area(), direction)

    def lower_bound(self, direction: Vec2) -> float:
        """Lower bound on the quadrant's max deviation from the path line.

        Two certificates, both witnessed by real trajectory points: the
        deviation of each significant point, and — because every bounding
        box edge is touched by at least one point — the minimum distance
        from each box edge to the path line.
        """
        if self.count == 0:
            return 0.0
        best = max_distance_to_line_origin(self.significant_points(), direction)
        corners = rectangle_corners(self.min_x, self.min_y, self.max_x, self.max_y)
        for i in range(4):
            d = min_distance_on_segment_to_line_origin(
                corners[i], corners[(i + 1) % 4], direction
            )
            if d > best:
                best = d
        return best

    def hull_max_deviation(self, direction: Vec2) -> float:
        """Exact max deviation of the quadrant's points from the path line.

        Point-to-line distance is a convex function of position, so its
        maximum over the quadrant's points is attained at a convex-hull
        vertex; scanning the hull is exact and usually far smaller than the
        buffer.
        """
        return max_distance_to_line_origin(self.hull, direction)


def quadrant_index(dx: float, dy: float) -> int:
    """Quadrant of an anchor-relative offset: 0=NE, 1=NW, 2=SW, 3=SE."""
    if dx >= 0.0:
        return 0 if dy >= 0.0 else 3
    return 1 if dy >= 0.0 else 2


class BQSCompressor(CompressorBase):
    """Full Bounded Quadrant System (convex hulls + buffered exact fallback)."""

    name = "bqs"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("BQS needs a finite error bound")
        if metric is not DistanceMetric.POINT_TO_LINE:
            raise ValueError(
                "BQS bounds are derived for the point-to-line deviation "
                "metric (the paper's default); got " + metric.value
            )
        super().__init__(epsilon, metric)
        self._reset()

    # -- state --------------------------------------------------------------

    def _reset(self) -> None:
        self._anchor: PlanePoint | None = None
        self._prev: PlanePoint | None = None
        self._quadrants: list[QuadrantState] = [
            QuadrantState(track_hull=True) for _ in range(4)
        ]
        self._buffer = PointBuffer()
        self._exact_accepts = 0
        self._exact_commits = 0

    @property
    def buffered_points(self) -> int:
        return len(self._buffer)

    @property
    def buffer_peak(self) -> int:
        """High-water mark of the exact-fallback buffer."""
        return self._buffer.peak

    # -- algorithm ----------------------------------------------------------

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        if self._anchor is None:
            self._anchor = point
            self._prev = point
            return [point], Decision.INIT

        anchor = self._anchor
        if len(self._buffer) == 0:
            # First point after the anchor: no interior points yet, the
            # two-point segment is trivially within bound.
            self._admit(point)
            return [], Decision.ACCEPT

        direction: Vec2 = (point.x - anchor.x, point.y - anchor.y)

        upper = 0.0
        for q in self._quadrants:
            if q.count:
                b = q.upper_bound(direction)
                if b > upper:
                    upper = b
        if upper <= self._epsilon:
            self._admit(point)
            return [], Decision.UPPER_BOUND

        lower = 0.0
        for q in self._quadrants:
            if q.count:
                b = q.lower_bound(direction)
                if b > lower:
                    lower = b
        if lower > self._epsilon:
            key = self._split()
            self._admit(point)
            return [key], Decision.LOWER_BOUND

        # epsilon falls between the bounds: buffered exact-deviation
        # fallback over the segment's points.
        exact = 0.0
        ax, ay = anchor.x, anchor.y
        for buffered in self._buffer:
            d = point_line_distance_origin(
                (buffered.x - ax, buffered.y - ay), direction
            )
            if d > exact:
                exact = d
        if exact <= self._epsilon:
            self._exact_accepts += 1
            self._admit(point)
            return [], Decision.EXACT
        self._exact_commits += 1
        key = self._split()
        self._admit(point)
        return [key], Decision.EXACT

    def _admit(self, point: PlanePoint) -> None:
        """Record an accepted point in the quadrant structures and buffer."""
        anchor = self._anchor
        assert anchor is not None
        v: Vec2 = (point.x - anchor.x, point.y - anchor.y)
        self._quadrants[quadrant_index(v[0], v[1])].add(v)
        self._buffer.append(point)
        self._prev = point

    def _split(self) -> PlanePoint:
        """Commit the previous point as a key point and open a new segment.

        Every admitted point was verified (by bound or exactly) against the
        path line to the point admitted after it, so the segment ending at
        ``prev`` honours the error bound; ``prev`` becomes the new anchor.
        """
        prev = self._prev
        assert prev is not None
        self._anchor = prev
        self._prev = prev
        for i in range(4):
            self._quadrants[i] = QuadrantState(track_hull=True)
        self._buffer.restart_from(())
        return prev

    def _flush(self) -> list[PlanePoint]:
        if self._prev is None:
            return []
        return [self._prev]

    def _info(self) -> dict:
        info = super()._info()
        info["exact_accepts"] = self._exact_accepts
        info["exact_commits"] = self._exact_commits
        info["buffer_peak"] = self._buffer.peak
        return info
