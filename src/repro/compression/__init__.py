"""Streaming trajectory compression: BQS, Fast-BQS and baselines.

Layered on top of :mod:`repro.geometry` (pure-math kernels) and
:mod:`repro.model` (points, trajectories, reconstruction).  Every algorithm
implements the :class:`StreamingCompressor` protocol — ``push`` points one
at a time, ``finish`` to obtain a
:class:`~repro.model.trajectory.CompressedTrajectory` — so callers can swap
algorithms freely; :mod:`repro.compression.evaluate` does exactly that to
reproduce the paper's comparisons.
"""

from .base import (
    CompressorBase,
    Decision,
    PointBuffer,
    PushResult,
    StreamingCompressor,
)
from .baselines import (
    DeadReckoningCompressor,
    DouglasPeucker,
    TDTRCompressor,
    UniformSampler,
)
from .bqs import BQSCompressor, QuadrantState, quadrant_index
from .evaluate import (
    EvaluationRow,
    default_suite,
    evaluate_compressor,
    evaluate_suite,
    format_rows,
    synthetic_track,
)
from .fast_bqs import FastBQSCompressor

__all__ = [
    "BQSCompressor",
    "CompressorBase",
    "DeadReckoningCompressor",
    "Decision",
    "DouglasPeucker",
    "EvaluationRow",
    "FastBQSCompressor",
    "PointBuffer",
    "PushResult",
    "QuadrantState",
    "StreamingCompressor",
    "TDTRCompressor",
    "UniformSampler",
    "default_suite",
    "evaluate_compressor",
    "evaluate_suite",
    "format_rows",
    "quadrant_index",
    "synthetic_track",
]
