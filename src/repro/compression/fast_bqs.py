"""Fast-BQS: the hull-free, constant-time-per-point variant (Section V-F).

Fast-BQS keeps only the O(1) part of each quadrant's state — the bounding
box and the two tracked extreme angles — and drops the convex hulls, the
significant points and the buffer entirely.  Each arrival costs a constant
amount of work (four quadrant upper bounds, each a scan of a ≤6-vertex
polygon) and the compressor state is a fixed number of floats regardless of
stream length.

The price of losing the buffer is that the uncertain case (tolerance
between the lower and upper bound) can no longer be resolved exactly:
Fast-BQS commits a key point whenever the *upper* bound exceeds the
tolerance.  That is conservative — the error bound still holds because a
point is only ever admitted when the upper bound proves the whole open
segment within ``epsilon`` — but it may split segments the full BQS would
have kept, costing a little compression rate for a large constant-factor
speedup and strictly bounded memory.
"""

from __future__ import annotations

import math

from ..geometry.metrics import DistanceMetric
from ..geometry.planar import Vec2
from ..model.point import PlanePoint
from .base import CompressorBase, Decision
from .bqs import QuadrantState, quadrant_index

__all__ = ["FastBQSCompressor"]


class FastBQSCompressor(CompressorBase):
    """Bounding-box-and-angles-only BQS with O(1) state per point."""

    name = "fast-bqs"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("Fast-BQS needs a finite error bound")
        if metric is not DistanceMetric.POINT_TO_LINE:
            raise ValueError(
                "Fast-BQS bounds are derived for the point-to-line deviation "
                "metric (the paper's default); got " + metric.value
            )
        super().__init__(epsilon, metric)
        self._reset()

    def _reset(self) -> None:
        self._anchor: PlanePoint | None = None
        self._prev: PlanePoint | None = None
        self._interior = 0
        self._quadrants: list[QuadrantState] = [
            QuadrantState(track_hull=False) for _ in range(4)
        ]

    # Fast-BQS never buffers: `buffered_points` stays at the base's 0.

    def state_point_count(self) -> int:
        """Trajectory points retained in state (anchor + previous only).

        The quadrant summaries hold aggregate floats, not points; this is
        the quantity the O(1)-memory test pins down.
        """
        count = 0
        if self._anchor is not None:
            count += 1
        if self._prev is not None and self._prev is not self._anchor:
            count += 1
        return count

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        if self._anchor is None:
            self._anchor = point
            self._prev = point
            return [point], Decision.INIT

        anchor = self._anchor
        if self._interior == 0:
            self._admit(point)
            return [], Decision.ACCEPT

        direction: Vec2 = (point.x - anchor.x, point.y - anchor.y)
        upper = 0.0
        for q in self._quadrants:
            if q.count:
                b = q.upper_bound(direction)
                if b > upper:
                    upper = b
        if upper <= self._epsilon:
            self._admit(point)
            return [], Decision.UPPER_BOUND

        # Uncertain or certain violation — without a buffer both are
        # resolved the same conservative way: split at the previous point.
        key = self._split()
        self._admit(point)
        return [key], Decision.UPPER_BOUND

    def _admit(self, point: PlanePoint) -> None:
        anchor = self._anchor
        assert anchor is not None
        dx = point.x - anchor.x
        dy = point.y - anchor.y
        self._quadrants[quadrant_index(dx, dy)].add((dx, dy))
        self._interior += 1
        self._prev = point

    def _split(self) -> PlanePoint:
        prev = self._prev
        assert prev is not None
        self._anchor = prev
        self._prev = prev
        self._interior = 0
        for i in range(4):
            self._quadrants[i] = QuadrantState(track_hull=False)
        return prev

    def _flush(self) -> list[PlanePoint]:
        if self._prev is None:
            return []
        return [self._prev]
