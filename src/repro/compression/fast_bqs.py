"""Fast-BQS: the hull-free, constant-time-per-point variant (Section V-F).

Fast-BQS keeps only the O(1) part of each quadrant's state — the bounding
box and the two tracked extreme angles — and drops the convex hulls, the
significant points and the buffer entirely.  Each arrival costs a constant
amount of work (four quadrant upper bounds, each a scan of a ≤6-vertex
polygon) and the compressor state is a fixed number of floats regardless of
stream length.

The price of losing the hulls is that the uncertain case (tolerance between
the lower and upper bound) can no longer be resolved exactly: Fast-BQS
commits a key point whenever the *upper* bound exceeds the tolerance.  That
is conservative — the error bound still holds because a point is only ever
admitted when the upper bound proves the whole open segment within
``epsilon`` — but it may split segments the full BQS would have kept,
costing a little compression rate for a large constant-factor speedup and
strictly bounded memory.

Like BQS, the hot path compares cross products against the tolerance
pre-scaled by the path-line norm (no per-vertex ``hypot``), reuses the
quadrant structures across segment splits, and ships a batched
``_ingest_many`` that counts decisions in integer slots.
"""

from __future__ import annotations

import math

from ..geometry.metrics import DistanceMetric
from ..geometry.planar import Vec2
from ..model.point import PlanePoint
from .base import CompressorBase, Decision
from .bqs import QuadrantState, polar_angle, quadrant_index

__all__ = ["FastBQSCompressor"]

# Integer decision slots for the batched ingest loop (Fast-BQS records the
# conservative commit under the same upper-bound label as an accept).
_D_INIT = 0
_D_ACCEPT = 1
_D_UPPER = 2
_DECISION_LABELS = (Decision.INIT, Decision.ACCEPT, Decision.UPPER_BOUND)


class FastBQSCompressor(CompressorBase):
    """Bounding-box-and-angles-only BQS with O(1) state per point."""

    name = "fast-bqs"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("Fast-BQS needs a finite error bound")
        if metric is not DistanceMetric.POINT_TO_LINE:
            raise ValueError(
                "Fast-BQS bounds are derived for the point-to-line deviation "
                "metric (the paper's default); got " + metric.value
            )
        super().__init__(epsilon, metric)
        self._reset()

    def _reset(self) -> None:
        self._anchor: PlanePoint | None = None
        self._prev: PlanePoint | None = None
        self._interior = 0
        self._quadrants: list[QuadrantState] = [
            QuadrantState(track_hull=False) for _ in range(4)
        ]

    # Fast-BQS never buffers: `buffered_points` stays at the base's 0.

    def state_point_count(self) -> int:
        """Trajectory points retained in state (anchor + previous only).

        The quadrant summaries hold aggregate floats, not points; this is
        the quantity the O(1)-memory test pins down.
        """
        count = 0
        if self._anchor is not None:
            count += 1
        if self._prev is not None and self._prev is not self._anchor:
            count += 1
        return count

    def _step(self, point: PlanePoint) -> tuple[PlanePoint | None, int]:
        """One arrival; shared by the per-point and batched paths."""
        anchor = self._anchor
        if anchor is None:
            self._anchor = point
            self._prev = point
            return point, _D_INIT

        if self._interior == 0:
            self._admit(point)
            return None, _D_ACCEPT

        dx = point.x - anchor.x
        dy = point.y - anchor.y
        denom = math.hypot(dx, dy)
        quadrants = self._quadrants
        if denom == 0.0:
            direction: Vec2 = (0.0, 0.0)
            upper = 0.0
            for q in quadrants:
                if q.count:
                    b = q.upper_bound(direction)
                    if b > upper:
                        upper = b
            if upper <= self._epsilon:
                self._admit(point)
                return None, _D_UPPER
        else:
            scaled_eps = self._epsilon * denom
            upper = 0.0
            for q in quadrants:
                if q.count:
                    c = q.upper_cross(dx, dy)
                    if c > upper:
                        upper = c
            if upper <= scaled_eps:
                # Anchor unchanged: reuse the offset computed for the bound.
                self._admit_rel(point, dx, dy)
                return None, _D_UPPER

        # Uncertain or certain violation — without the hulls both are
        # resolved the same conservative way: split at the previous point.
        key = self._split()
        self._admit(point)
        return key, _D_UPPER

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        key, slot = self._step(point)
        committed = [] if key is None else [key]
        return committed, _DECISION_LABELS[slot]

    def _ingest_many(self, points) -> int:
        """Batched ingest: integer decision slots, no per-point allocation."""
        return self._run_batch_stepped(points, self._step, _DECISION_LABELS)

    def _admit(self, point: PlanePoint) -> None:
        anchor = self._anchor
        self._admit_rel(point, point.x - anchor.x, point.y - anchor.y)

    def _admit_rel(self, point: PlanePoint, dx: float, dy: float) -> None:
        self._quadrants[quadrant_index(dx, dy)].add(
            (dx, dy), polar_angle(dx, dy)
        )
        self._interior += 1
        self._prev = point

    def _split(self) -> PlanePoint:
        prev = self._prev
        assert prev is not None
        self._anchor = prev
        self._prev = prev
        self._interior = 0
        for q in self._quadrants:
            q.reset()
        return prev

    def _flush(self) -> list[PlanePoint]:
        if self._prev is None:
            return []
        return [self._prev]
