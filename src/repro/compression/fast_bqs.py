"""Fast-BQS: the hull-free, constant-time-per-point variant (Section V-F).

Fast-BQS keeps only the O(1) part of each quadrant's state — the bounding
box and the two tracked extreme angles — and drops the convex hulls, the
significant points and the buffer entirely.  Each arrival costs a constant
amount of work (four quadrant upper bounds, each a scan of a ≤6-vertex
polygon) and the compressor state is a fixed number of floats regardless of
stream length.

The price of losing the hulls is that the uncertain case (tolerance between
the lower and upper bound) can no longer be resolved exactly: Fast-BQS
commits a key point whenever the *upper* bound exceeds the tolerance.  That
is conservative — the error bound still holds because a point is only ever
admitted when the upper bound proves the whole open segment within
``epsilon`` — but it may split segments the full BQS would have kept,
costing a little compression rate for a large constant-factor speedup and
strictly bounded memory.

Like BQS, the hot path compares cross products against the tolerance
pre-scaled by the path-line norm (no per-vertex ``hypot``), reuses the
quadrant structures across segment splits, and ships a batched
``_ingest_many`` that counts decisions in integer slots.
"""

from __future__ import annotations

import math

from ..geometry.metrics import DistanceMetric
from ..geometry.planar import Vec2
from ..model.point import PlanePoint
from .base import CompressorBase, Decision
from .bqs import QuadrantState, polar_angle, quadrant_index

__all__ = ["FastBQSCompressor"]

# Integer decision slots for the batched ingest loop (Fast-BQS records the
# conservative commit under the same upper-bound label as an accept).
_D_INIT = 0
_D_ACCEPT = 1
_D_UPPER = 2
_DECISION_LABELS = (Decision.INIT, Decision.ACCEPT, Decision.UPPER_BOUND)


class FastBQSCompressor(CompressorBase):
    """Bounding-box-and-angles-only BQS with O(1) state per point."""

    name = "fast-bqs"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("Fast-BQS needs a finite error bound")
        if metric is not DistanceMetric.POINT_TO_LINE:
            raise ValueError(
                "Fast-BQS bounds are derived for the point-to-line deviation "
                "metric (the paper's default); got " + metric.value
            )
        super().__init__(epsilon, metric)
        self._reset()

    def _reset(self) -> None:
        self._anchor: PlanePoint | None = None
        self._prev: PlanePoint | None = None
        self._interior = 0
        self._quadrants: list[QuadrantState] = [
            QuadrantState(track_hull=False) for _ in range(4)
        ]

    # Fast-BQS never buffers: `buffered_points` stays at the base's 0.

    def state_point_count(self) -> int:
        """Trajectory points retained in state (anchor + previous only).

        The quadrant summaries hold aggregate floats, not points; this is
        the quantity the O(1)-memory test pins down.
        """
        count = 0
        if self._anchor is not None:
            count += 1
        if self._prev is not None and self._prev is not self._anchor:
            count += 1
        return count

    def _step(self, point: PlanePoint) -> tuple[PlanePoint | None, int]:
        """One arrival; shared by the per-point and batched paths."""
        anchor = self._anchor
        if anchor is None:
            self._anchor = point
            self._prev = point
            return point, _D_INIT

        if self._interior == 0:
            self._admit(point)
            return None, _D_ACCEPT

        dx = point.x - anchor.x
        dy = point.y - anchor.y
        denom = math.hypot(dx, dy)
        quadrants = self._quadrants
        if denom == 0.0:
            direction: Vec2 = (0.0, 0.0)
            upper = 0.0
            for q in quadrants:
                if q.count:
                    b = q.upper_bound(direction)
                    if b > upper:
                        upper = b
            if upper <= self._epsilon:
                self._admit(point)
                return None, _D_UPPER
        else:
            scaled_eps = self._epsilon * denom
            within = True
            for q in quadrants:
                if q.count and q.upper_cross_exceeds(dx, dy, scaled_eps):
                    within = False
                    break
            if within:
                # Anchor unchanged: reuse the offset computed for the bound.
                self._admit_rel(point, dx, dy)
                return None, _D_UPPER

        # Uncertain or certain violation — without the hulls both are
        # resolved the same conservative way: split at the previous point.
        key = self._split()
        self._admit(point)
        return key, _D_UPPER

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        key, slot = self._step(point)
        committed = [] if key is None else [key]
        return committed, _DECISION_LABELS[slot]

    def _ingest_many(self, points) -> int:
        """Batched ingest: integer decision slots, no per-point allocation."""
        return self._run_batch_stepped(points, self._step, _DECISION_LABELS)

    def _ingest_xyt(self, ts, xs, ys) -> int:
        """Columnar ingest: zero per-fix objects on the upper-bound path.

        Same structure as the BQS columnar loop, minus everything hull: the
        anchor is cached in local floats, and the previous fix is tracked
        as floats and materialized only when a split commits it.
        Degenerate arrivals reuse :meth:`_step`.
        """
        emit = self._emit
        quadrants = self._quadrants
        epsilon = self._epsilon
        hyp = math.hypot
        pa = polar_angle
        qi = quadrant_index
        counters = [0] * len(_DECISION_LABELS)
        last_t = self._last_t
        count = start = self._count
        anchor = self._anchor
        ax = ay = 0.0
        if anchor is not None:
            ax = anchor.x
            ay = anchor.y
        prev_obj = self._prev  # non-None means it is in sync with the floats
        px = py = pt = pz = 0.0
        if prev_obj is not None:
            px, py, pt, pz = prev_obj.x, prev_obj.y, prev_obj.t, prev_obj.z
        interior = self._interior
        try:
            for t, x, y in zip(ts, xs, ys):
                if not (t >= last_t):
                    raise ValueError(
                        f"points must be non-decreasing in time "
                        f"({last_t} then {t})"
                    )
                last_t = t
                count += 1

                if anchor is None:
                    point = PlanePoint(x, y, t)
                    anchor = point
                    ax = x
                    ay = y
                    prev_obj = point
                    px, py, pt, pz = x, y, t, 0.0
                    emit(point)
                    counters[_D_INIT] += 1
                    continue

                dx = x - ax
                dy = y - ay

                if interior == 0:
                    quadrants[qi(dx, dy)].add((dx, dy), pa(dx, dy))
                    interior = 1
                    px, py, pt, pz = x, y, t, 0.0
                    prev_obj = None
                    counters[_D_ACCEPT] += 1
                    continue

                denom = hyp(dx, dy)
                if denom == 0.0:
                    # Rare: sync out, reuse the object-path logic, reload.
                    self._anchor = anchor
                    self._prev = (
                        prev_obj
                        if prev_obj is not None
                        else PlanePoint(px, py, pt, pz)
                    )
                    self._interior = interior
                    key, slot = self._step(PlanePoint(x, y, t))
                    counters[slot] += 1
                    if key is not None:
                        emit(key)
                    anchor = self._anchor
                    ax = anchor.x
                    ay = anchor.y
                    prev_obj = self._prev
                    px, py, pt, pz = (
                        prev_obj.x, prev_obj.y, prev_obj.t, prev_obj.z
                    )
                    interior = self._interior
                    continue

                scaled_eps = epsilon * denom
                within = True
                for q in quadrants:
                    if q.count and q.upper_cross_exceeds(dx, dy, scaled_eps):
                        within = False
                        break
                if within:
                    quadrants[qi(dx, dy)].add((dx, dy), pa(dx, dy))
                    interior += 1
                    px, py, pt, pz = x, y, t, 0.0
                    prev_obj = None
                    counters[_D_UPPER] += 1
                    continue

                # Uncertain or violated: split conservatively at prev.
                key = (
                    prev_obj
                    if prev_obj is not None
                    else PlanePoint(px, py, pt, pz)
                )
                anchor = key
                ax = px
                ay = py
                for q in quadrants:
                    q.reset()
                ndx = x - ax
                ndy = y - ay
                quadrants[qi(ndx, ndy)].add((ndx, ndy), pa(ndx, ndy))
                interior = 1
                px, py, pt, pz = x, y, t, 0.0
                prev_obj = None
                emit(key)
                counters[_D_UPPER] += 1
        finally:
            self._last_t = last_t
            self._count = count
            self._anchor = anchor
            if anchor is None:
                self._prev = None
            else:
                self._prev = (
                    prev_obj
                    if prev_obj is not None
                    else PlanePoint(px, py, pt, pz)
                )
            self._interior = interior
            stats = self._stats
            for slot, n in enumerate(counters):
                if n:
                    label = _DECISION_LABELS[slot]
                    stats[label] = stats.get(label, 0) + n
        return count - start

    def _admit(self, point: PlanePoint) -> None:
        anchor = self._anchor
        self._admit_rel(point, point.x - anchor.x, point.y - anchor.y)

    def _admit_rel(self, point: PlanePoint, dx: float, dy: float) -> None:
        self._quadrants[quadrant_index(dx, dy)].add(
            (dx, dy), polar_angle(dx, dy)
        )
        self._interior += 1
        self._prev = point

    def _split(self) -> PlanePoint:
        prev = self._prev
        assert prev is not None
        self._anchor = prev
        self._prev = prev
        self._interior = 0
        for q in self._quadrants:
            q.reset()
        return prev

    def _flush(self) -> list[PlanePoint]:
        if self._prev is None:
            return []
        return [self._prev]
