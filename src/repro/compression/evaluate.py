"""Cross-algorithm evaluation harness (paper Section VI methodology).

Runs every compressor one-pass over the same point stream and reports, per
algorithm, the three quantities the paper compares:

* **compression rate** — stored points / original points (lower is better);
* **max deviation** — the geometric error bound audit
  (:meth:`CompressedTrajectory.max_deviation_from`), plus the **max SED**
  under temporal reconstruction
  (:func:`repro.model.reconstruction.max_synchronized_deviation`);
* **per-point cost** — wall-clock seconds per ``push`` call, the figure of
  merit for running "on the go" on constrained hardware.

A correlated-random-walk synthetic track doubles as the default workload
(speeds drawn from an empirical distribution, smooth heading drift), so the
module is runnable standalone::

    PYTHONPATH=src python -m repro.compression.evaluate --points 10000 --epsilon 10
"""

from __future__ import annotations

import argparse
import math
import random
import time
from dataclasses import dataclass
from typing import Sequence

from ..model.point import PlanePoint
from ..model.reconstruction import max_synchronized_deviation
from ..model.statistics import EmpiricalDistribution
from ..model.trajectory import CompressedTrajectory
from .base import StreamingCompressor
from .baselines import (
    DeadReckoningCompressor,
    DouglasPeucker,
    TDTRCompressor,
    UniformSampler,
)
from .bqs import BQSCompressor
from .fast_bqs import FastBQSCompressor

__all__ = [
    "EvaluationRow",
    "synthetic_track",
    "default_suite",
    "evaluate_compressor",
    "evaluate_suite",
    "format_rows",
    "main",
]

#: Speed sample pool (m/s) for the synthetic walker: a mix of pedestrian,
#: cycling and urban-driving paces, quantiled through EmpiricalDistribution
#: the same way the paper draws speeds "from the empirical distribution".
_SPEED_SAMPLES = (0.8, 1.2, 1.4, 1.6, 2.5, 4.0, 6.5, 9.0, 11.0, 13.5, 15.0)


def synthetic_track(
    n: int,
    seed: int = 7,
    dt: float = 1.0,
    turn_sigma: float = 0.12,
    noise_sigma: float = 0.0,
) -> list[PlanePoint]:
    """A correlated random walk of ``n`` points in a metric plane.

    Heading performs Gaussian drift (``turn_sigma`` radians per step), speed
    is drawn per step from the empirical speed distribution, and optional
    isotropic GPS noise of ``noise_sigma`` metres is added to each fix.
    Deterministic for a given seed.
    """
    if n < 1:
        raise ValueError(f"need at least one point, got {n!r}")
    rng = random.Random(seed)
    speeds = EmpiricalDistribution(_SPEED_SAMPLES)
    points: list[PlanePoint] = []
    x = y = 0.0
    heading = rng.uniform(0.0, 2.0 * math.pi)
    t = 0.0
    for _ in range(n):
        px, py = x, y
        if noise_sigma > 0.0:
            px += rng.gauss(0.0, noise_sigma)
            py += rng.gauss(0.0, noise_sigma)
        points.append(PlanePoint(px, py, t))
        heading += rng.gauss(0.0, turn_sigma)
        speed = speeds.sample(rng.random())
        x += speed * dt * math.cos(heading)
        y += speed * dt * math.sin(heading)
        t += dt
    return points


@dataclass(frozen=True)
class EvaluationRow:
    """One algorithm's results over one stream."""

    algorithm: str
    epsilon: float
    original_points: int
    key_points: int
    compression_rate: float
    max_deviation: float
    max_sed: float
    push_seconds_per_point: float
    finish_seconds: float
    wall_seconds: float
    peak_buffered_points: int
    error_bounded: bool

    @property
    def total_seconds_per_point(self) -> float:
        """Full per-point cost: pushes plus finish() amortised over the stream.

        The batch baselines do all their work inside ``finish()``, so the
        push-only figure would flatter them; this is the comparable number.
        """
        return self.push_seconds_per_point + self.finish_seconds / max(
            1, self.original_points
        )

    @property
    def points_per_second(self) -> float:
        """Throughput over the whole run (pushes + finish), points/sec.

        Same formula as the benchmark subsystem (:mod:`repro.bench`) —
        original points divided by total wall time — but this harness
        drives the per-point ``push()`` path and samples buffer occupancy
        inside the timed region, so it reads somewhat lower than the bench
        harness's batched throughput pass; compare it against the bench
        *latency* pass, not the headline ``points_per_sec``.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.original_points / self.wall_seconds

    @property
    def within_bound(self) -> bool:
        """Whether the audit stayed inside the advertised tolerance."""
        return self.max_deviation <= self.epsilon * (1.0 + 1e-9)


def evaluate_compressor(
    compressor: StreamingCompressor,
    points: Sequence[PlanePoint],
) -> tuple[EvaluationRow, CompressedTrajectory]:
    """Drive one compressor point-by-point and audit the result."""
    compressor.reset()
    peak_buffered = 0
    start = time.perf_counter()
    for p in points:
        compressor.push(p)
        buffered = compressor.buffered_points
        if buffered > peak_buffered:
            peak_buffered = buffered
    elapsed = time.perf_counter() - start
    finish_start = time.perf_counter()
    compressed = compressor.finish()
    finish_elapsed = time.perf_counter() - finish_start
    row = EvaluationRow(
        algorithm=compressed.algorithm or compressor.name,
        epsilon=compressor.epsilon,
        original_points=len(points),
        key_points=len(compressed),
        compression_rate=compressed.compression_rate,
        max_deviation=compressed.max_deviation_from(points),
        max_sed=max_synchronized_deviation(compressed, points),
        push_seconds_per_point=elapsed / max(1, len(points)),
        finish_seconds=finish_elapsed,
        wall_seconds=elapsed + finish_elapsed,
        peak_buffered_points=peak_buffered,
        error_bounded=math.isfinite(compressor.epsilon),
    )
    return row, compressed


def default_suite(
    epsilon: float, uniform_period: int = 10
) -> list[StreamingCompressor]:
    """The paper's comparison set: BQS, Fast-BQS and the baselines."""
    return [
        BQSCompressor(epsilon),
        FastBQSCompressor(epsilon),
        DeadReckoningCompressor(epsilon),
        UniformSampler(uniform_period),
        DouglasPeucker(epsilon),
        TDTRCompressor(epsilon),
    ]


def evaluate_suite(
    points: Sequence[PlanePoint],
    epsilon: float,
    uniform_period: int = 10,
) -> list[EvaluationRow]:
    """Evaluate the default comparison suite over one stream."""
    rows = []
    for compressor in default_suite(epsilon, uniform_period):
        row, _ = evaluate_compressor(compressor, points)
        rows.append(row)
    return rows


def format_rows(rows: Sequence[EvaluationRow]) -> str:
    """Plain-text comparison table."""
    header = (
        f"{'algorithm':<16}{'keys':>8}{'rate':>8}{'max dev':>10}"
        f"{'max SED':>10}{'us/pt':>8}{'pts/s':>10}{'wall s':>9}{'peak buf':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.algorithm:<16}{r.key_points:>8}{r.compression_rate:>8.3f}"
            f"{r.max_deviation:>10.2f}{r.max_sed:>10.2f}"
            f"{r.total_seconds_per_point * 1e6:>8.1f}"
            f"{r.points_per_second:>10.0f}{r.wall_seconds:>9.3f}"
            f"{r.peak_buffered_points:>10}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare trajectory compressors on a synthetic track."
    )
    parser.add_argument("--points", type=int, default=10_000)
    parser.add_argument("--epsilon", type=float, default=10.0, help="metres")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--uniform-period", type=int, default=10)
    parser.add_argument("--noise", type=float, default=0.0, help="GPS noise sigma (m)")
    args = parser.parse_args(argv)

    points = synthetic_track(args.points, seed=args.seed, noise_sigma=args.noise)
    rows = evaluate_suite(points, args.epsilon, args.uniform_period)
    print(
        f"{args.points} points, epsilon={args.epsilon} m, seed={args.seed}"
        + (f", noise={args.noise} m" if args.noise else "")
    )
    print(format_rows(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
