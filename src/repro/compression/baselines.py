"""Baseline compressors the paper evaluates BQS against (Section VI).

Two online baselines and two batch references, all behind the same
:class:`~repro.compression.base.StreamingCompressor` interface:

``UniformSampler``
    Keeps every *k*-th point (plus the first and last).  O(1) state, no
    error bound — the classic what-GPS-loggers-do reference point.

``DeadReckoningCompressor``
    Predicts each position from the last key point and its departure
    velocity; commits a key point when the prediction error exceeds the
    threshold.  O(1) state.  The prediction test bounds deviation from the
    *velocity ray*, not from the chord between stored key points, so the
    threshold is derated by ``safety_factor`` (default ½, following the
    classic tube argument: interior points and the segment end both lie
    within ε/2 of the ray, hence within ε of the chord).

``DouglasPeucker``
    The batch gold standard: buffers the stream and splits at the point of
    maximum deviation until every segment is within bound.  The traversal
    is an explicit-stack loop, not recursion — a long monotone trajectory
    can drive the textbook recursion past Python's recursion limit (depth
    grows linearly when the worst point hugs a segment end), and the
    regression tests pin streams deeper than ``sys.getrecursionlimit()``.

``TDTRCompressor``
    Time-ratio Douglas-Peucker (TD-TR): identical traversal but measured
    with the *synchronized Euclidean distance* — each point is compared to
    the position linearly interpolated at its own timestamp.  SED never
    undershoots the point-to-line deviation (the synchronized position lies
    on the chord's line), so a TD-TR output is error-bounded under the
    paper's metric as well.

Both batch baselines buffer **columns, not objects**: pushed fixes land in
flat ``array('d')`` columns (~32 bytes per fix instead of a ``PlanePoint``
each), the split scans read floats straight out of the columns, and
``PlanePoint`` objects are materialized only for the kept key points at
``finish()`` time.  The columnar ``push_xyt`` entry point therefore
bulk-extends the buffer without building a single intermediate object.
"""

from __future__ import annotations

import math
from array import array
from itertools import repeat
from typing import Sequence

from ..geometry.metrics import DistanceMetric, deviation as metric_deviation
from ..model.point import PlanePoint, plane_points_from_flat
from ..model.reconstruction import synchronized_deviation_xyt
from .base import CompressorBase, Decision

__all__ = [
    "UniformSampler",
    "DeadReckoningCompressor",
    "DouglasPeucker",
    "TDTRCompressor",
]


class UniformSampler(CompressorBase):
    """Keep every ``period``-th point; no error guarantee."""

    name = "uniform"

    def __init__(self, period: int, epsilon: float = math.inf) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period!r}")
        super().__init__(epsilon)
        self.period = int(period)
        self._reset()

    def _reset(self) -> None:
        self._since_key = 0
        self._tail: PlanePoint | None = None

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        first = self._tail is None
        self._tail = point
        if first:
            self._since_key = 0
            return [point], Decision.INIT
        self._since_key += 1
        if self._since_key >= self.period:
            self._since_key = 0
            return [point], Decision.PERIODIC
        return [], Decision.PERIODIC

    def _ingest_xyt(self, ts, xs, ys) -> int:
        """Columnar ingest: materialize only the every-``period``-th keepers."""
        emit = self._emit
        period = self.period
        since = self._since_key
        tail_obj = self._tail  # non-None means in sync with the floats
        tx = ty = tt = tz = 0.0
        if tail_obj is not None:
            tx, ty, tt, tz = tail_obj.x, tail_obj.y, tail_obj.t, tail_obj.z
        started = tail_obj is not None
        last_t = self._last_t
        count = start = self._count
        init_n = periodic_n = 0
        try:
            for t, x, y in zip(ts, xs, ys):
                if not (t >= last_t):
                    raise ValueError(
                        f"points must be non-decreasing in time "
                        f"({last_t} then {t})"
                    )
                last_t = t
                count += 1
                if not started:
                    started = True
                    since = 0
                    point = PlanePoint(x, y, t)
                    tail_obj = point
                    tx, ty, tt, tz = x, y, t, 0.0
                    emit(point)
                    init_n += 1
                    continue
                periodic_n += 1
                since += 1
                tx, ty, tt, tz = x, y, t, 0.0
                if since >= period:
                    since = 0
                    point = PlanePoint(x, y, t)
                    tail_obj = point
                    emit(point)
                else:
                    tail_obj = None
        finally:
            self._last_t = last_t
            self._count = count
            self._since_key = since
            if started:
                self._tail = (
                    tail_obj
                    if tail_obj is not None
                    else PlanePoint(tx, ty, tt, tz)
                )
            stats = self._stats
            if init_n:
                stats[Decision.INIT] = stats.get(Decision.INIT, 0) + init_n
            if periodic_n:
                stats[Decision.PERIODIC] = (
                    stats.get(Decision.PERIODIC, 0) + periodic_n
                )
        return count - start

    def _flush(self) -> list[PlanePoint]:
        return [] if self._tail is None else [self._tail]


class DeadReckoningCompressor(CompressorBase):
    """Velocity-prediction compressor with O(1) state.

    A segment opens at a key point; its velocity is estimated from the key
    point and the first point that follows it.  Every later point is
    compared against the position the velocity predicts for its timestamp;
    the first point whose prediction error exceeds the (derated) threshold
    closes the segment at its predecessor.
    """

    name = "dead-reckoning"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
        safety_factor: float = 0.5,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("dead reckoning needs a finite error bound")
        if not 0.0 < safety_factor <= 1.0:
            raise ValueError(f"safety_factor must be in (0, 1], got {safety_factor!r}")
        super().__init__(epsilon, metric)
        self.safety_factor = float(safety_factor)
        self._threshold = epsilon * safety_factor
        # Both ingest paths compare squared distances (saves a hypot call
        # per fix); sharing the exact same expression keeps push() and
        # push_xyt() bit-identical even for fixes within an ulp of the
        # threshold.
        self._threshold_sq = self._threshold * self._threshold
        self._reset()

    def _reset(self) -> None:
        self._key: PlanePoint | None = None
        self._velocity: tuple[float, float] | None = None
        self._prev: PlanePoint | None = None

    def _set_velocity(self, origin: PlanePoint, nxt: PlanePoint) -> None:
        dt = nxt.t - origin.t
        if dt > 0.0:
            self._velocity = ((nxt.x - origin.x) / dt, (nxt.y - origin.y) / dt)
        else:
            # Co-timestamped fix: no usable velocity, predict stationarity.
            self._velocity = (0.0, 0.0)

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        if self._key is None:
            self._key = point
            self._prev = point
            return [point], Decision.INIT
        if self._velocity is None:
            self._set_velocity(self._key, point)
            self._prev = point
            return [], Decision.ACCEPT
        dt = point.t - self._key.t
        vx, vy = self._velocity
        dx = point.x - (self._key.x + vx * dt)
        dy = point.y - (self._key.y + vy * dt)
        if dx * dx + dy * dy <= self._threshold_sq:
            self._prev = point
            return [], Decision.THRESHOLD
        prev = self._prev
        assert prev is not None
        self._key = prev
        self._set_velocity(prev, point)
        self._prev = point
        return [prev], Decision.THRESHOLD

    def _ingest_xyt(self, ts, xs, ys) -> int:
        """Columnar ingest: the prediction test runs on bare floats and key
        points are *batch-materialized*.

        Dead reckoning commits a key point for a large fraction of its fixes
        (half the stream at vehicle-like workloads), so a per-breach
        ``PlanePoint`` construction plus an ``_emit`` call used to dominate
        the columnar loop and made it slower than the object path, which
        gets its point objects for free.  Breaches therefore only append
        four floats to a flat pending list; the whole batch of committed
        key points is materialized once, in the ``finally`` block, through
        one :func:`~repro.model.point.plane_points_from_flat` sweep
        (``__new__`` + slot writes behind a batch finiteness screen).
        ``_emit``'s consecutive-duplicate drop is replicated on the raw
        floats before a key is appended, so key points, stats and counts
        stay bit-identical to a ``push`` loop.
        """
        # The same squared-distance predicate _ingest evaluates — shared
        # expression, so the paths agree on every fix bit for bit.
        threshold_sq = self._threshold_sq
        key_obj = self._key  # rematerialized at batch end if a breach moved it
        kx = ky = kt = kz = 0.0
        if key_obj is not None:
            kx, ky, kt, kz = key_obj.x, key_obj.y, key_obj.t, key_obj.z
        velocity = self._velocity
        has_vel = velocity is not None
        vx = vy = 0.0
        if has_vel:
            vx, vy = velocity
        prev_obj = self._prev  # non-None means in sync with the floats
        px = py = pt = pz = 0.0
        if prev_obj is not None:
            px, py, pt, pz = prev_obj.x, prev_obj.y, prev_obj.t, prev_obj.z
        # Pending committed key points, interleaved ``x, y, t, z`` in one
        # flat list; materialized in one sweep at batch end.  Duplicate
        # suppression (what _emit does) runs here on floats, seeded from
        # the last already-emitted key point.
        pending: list = []
        push_pending = pending.extend
        key_points = self._key_points
        if key_points:
            tail = key_points[-1]
            ex, ey, et = tail.x, tail.y, tail.t
            have_tail = True
        else:
            ex = ey = et = 0.0
            have_tail = False
        started = key_obj is not None
        last_t = self._last_t
        count = start = self._count
        init_n = accept_n = 0
        try:
            for t, x, y in zip(ts, xs, ys):
                if not (t >= last_t):
                    raise ValueError(
                        f"points must be non-decreasing in time "
                        f"({last_t} then {t})"
                    )
                last_t = t
                count += 1
                if has_vel:  # the steady-state path, checked first
                    dt = t - kt
                    dx = x - (kx + vx * dt)
                    dy = y - (ky + vy * dt)
                    if dx * dx + dy * dy <= threshold_sq:
                        px = x
                        py = y
                        pt = t
                        pz = 0.0
                        prev_obj = None
                        continue
                    # Breach: the previous fix becomes a key point and the
                    # new prediction origin.
                    if not (have_tail and ex == px and ey == py and et == pt):
                        push_pending((px, py, pt, pz))
                        ex, ey, et = px, py, pt
                        have_tail = True
                    key_obj = prev_obj  # None unless prev predates the batch
                    kx, ky, kt, kz = px, py, pt, pz
                    dt = t - pt
                    if dt > 0.0:
                        vx = (x - px) / dt
                        vy = (y - py) / dt
                    else:
                        vx = 0.0
                        vy = 0.0
                    px = x
                    py = y
                    pt = t
                    pz = 0.0
                    prev_obj = None
                    continue
                if not started:
                    started = True
                    key_obj = None
                    kx, ky, kt, kz = x, y, t, 0.0
                    px, py, pt, pz = x, y, t, 0.0
                    prev_obj = None
                    if not (have_tail and ex == x and ey == y and et == t):
                        push_pending((x, y, t, 0.0))
                        ex, ey, et = x, y, t
                        have_tail = True
                    init_n += 1
                    continue
                # Second point of a segment: estimate the velocity.
                dt = t - kt
                if dt > 0.0:
                    vx = (x - kx) / dt
                    vy = (y - ky) / dt
                else:
                    vx = 0.0
                    vy = 0.0
                has_vel = True
                px, py, pt, pz = x, y, t, 0.0
                prev_obj = None
                accept_n += 1
        finally:
            self._last_t = last_t
            self._count = count
            if pending:
                key_points.extend(plane_points_from_flat(pending))
            if not started:
                self._key = None
            else:
                self._key = (
                    key_obj
                    if key_obj is not None
                    else PlanePoint(kx, ky, kt, kz)
                )
                self._prev = (
                    prev_obj
                    if prev_obj is not None
                    else PlanePoint(px, py, pt, pz)
                )
            self._velocity = (vx, vy) if has_vel else None
            stats = self._stats
            if init_n:
                stats[Decision.INIT] = stats.get(Decision.INIT, 0) + init_n
            if accept_n:
                stats[Decision.ACCEPT] = stats.get(Decision.ACCEPT, 0) + accept_n
            threshold_n = (count - start) - init_n - accept_n
            if threshold_n:
                stats[Decision.THRESHOLD] = (
                    stats.get(Decision.THRESHOLD, 0) + threshold_n
                )
        return count - start

    def _flush(self) -> list[PlanePoint]:
        return [] if self._prev is None else [self._prev]


class _BatchCompressor(CompressorBase):
    """Shared columnar buffering/driver for the batch baselines.

    Fixes are buffered as four flat ``array('d')`` columns (t, x, y, z) and
    the split-at-worst-point selection reads floats straight from them;
    ``PlanePoint`` objects exist only for the key points returned by
    ``finish()``.  ``z`` is carried so object-path pushes round-trip their
    third coordinate through the buffer unchanged.
    """

    def _reset(self) -> None:
        self._ts = array("d")
        self._xs = array("d")
        self._ys = array("d")
        self._zs = array("d")

    @property
    def buffered_points(self) -> int:
        return len(self._ts)

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        self._ts.append(point.t)
        self._xs.append(point.x)
        self._ys.append(point.y)
        self._zs.append(point.z)
        return [], Decision.BATCH

    def _ingest_xyt(self, ts, xs, ys) -> int:
        """Columnar ingest: bulk-extend the buffer, no objects at all.

        The valid (time-monotone) prefix is consumed before a violation
        raises, matching the per-point loop's partial-consumption
        behaviour.
        """
        last_t = self._last_t
        n_ok = 0
        bad: float | None = None
        for t in ts:
            if not (t >= last_t):
                bad = t
                break
            last_t = t
            n_ok += 1
        if n_ok:
            self._ts.extend(ts[:n_ok] if bad is not None else ts)
            self._xs.extend(xs[:n_ok] if bad is not None else xs)
            self._ys.extend(ys[:n_ok] if bad is not None else ys)
            self._zs.extend(repeat(0.0, n_ok))
            self._last_t = last_t
            self._count += n_ok
            stats = self._stats
            stats[Decision.BATCH] = stats.get(Decision.BATCH, 0) + n_ok
        if bad is not None:
            raise ValueError(
                f"points must be non-decreasing in time ({last_t} then {bad})"
            )
        return n_ok

    def _flush(self) -> list[PlanePoint]:
        ts, xs, ys, zs = self._ts, self._xs, self._ys, self._zs
        self._ts = array("d")
        self._xs = array("d")
        self._ys = array("d")
        self._zs = array("d")
        n = len(ts)
        if n == 0:
            return []
        if n <= 2:
            keep: Sequence[int] = range(n)
        else:
            keep = sorted(self._select(ts, xs, ys))
        return [PlanePoint(xs[i], ys[i], ts[i], zs[i]) for i in keep]

    def _select(self, ts, xs, ys) -> set[int]:
        """Indices to keep; explicit-stack split-at-worst-point traversal.

        Deliberately iterative: the recursive textbook formulation reaches
        depth O(n) whenever the worst point lands next to a segment end,
        which overflows the interpreter stack long before the 100k-point
        streams the benchmarks run (see the depth regression tests).
        """
        epsilon = self._epsilon
        scan = self._scan_worst
        last = len(ts) - 1
        keep = {0, last}
        stack = [(0, last)]
        while stack:
            lo, hi = stack.pop()
            if hi - lo < 2:
                continue
            worst, worst_idx = scan(ts, xs, ys, lo, hi)
            if worst > epsilon:
                keep.add(worst_idx)
                stack.append((lo, worst_idx))
                stack.append((worst_idx, hi))
        return keep

    def _scan_worst(self, ts, xs, ys, lo: int, hi: int) -> tuple[float, int]:
        """Return ``(max deviation, argmax index)`` over ``(lo, hi)``
        interior fixes against the chord ``lo → hi``."""
        raise NotImplementedError


class DouglasPeucker(_BatchCompressor):
    """Classic batch Douglas-Peucker under the configured deviation metric."""

    name = "douglas-peucker"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("Douglas-Peucker needs a finite error bound")
        super().__init__(epsilon, metric)
        self._reset()

    def _scan_worst(self, ts, xs, ys, lo: int, hi: int) -> tuple[float, int]:
        metric = self._metric
        a = (xs[lo], ys[lo])
        b = (xs[hi], ys[hi])
        worst = -1.0
        worst_idx = -1
        for i in range(lo + 1, hi):
            d = metric_deviation((xs[i], ys[i]), a, b, metric)
            if d > worst:
                worst = d
                worst_idx = i
        return worst, worst_idx


class TDTRCompressor(_BatchCompressor):
    """Top-down time-ratio (TD-TR): Douglas-Peucker under the SED metric."""

    name = "td-tr"

    def __init__(self, epsilon: float) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("TD-TR needs a finite error bound")
        super().__init__(epsilon)
        self._reset()

    def _scan_worst(self, ts, xs, ys, lo: int, hi: int) -> tuple[float, int]:
        sed = synchronized_deviation_xyt
        ax, ay, at = xs[lo], ys[lo], ts[lo]
        bx, by, bt = xs[hi], ys[hi], ts[hi]
        worst = -1.0
        worst_idx = -1
        for i in range(lo + 1, hi):
            d = sed(xs[i], ys[i], ts[i], ax, ay, at, bx, by, bt)
            if d > worst:
                worst = d
                worst_idx = i
        return worst, worst_idx
