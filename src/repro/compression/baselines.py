"""Baseline compressors the paper evaluates BQS against (Section VI).

Two online baselines and two batch references, all behind the same
:class:`~repro.compression.base.StreamingCompressor` interface:

``UniformSampler``
    Keeps every *k*-th point (plus the first and last).  O(1) state, no
    error bound — the classic what-GPS-loggers-do reference point.

``DeadReckoningCompressor``
    Predicts each position from the last key point and its departure
    velocity; commits a key point when the prediction error exceeds the
    threshold.  O(1) state.  The prediction test bounds deviation from the
    *velocity ray*, not from the chord between stored key points, so the
    threshold is derated by ``safety_factor`` (default ½, following the
    classic tube argument: interior points and the segment end both lie
    within ε/2 of the ray, hence within ε of the chord).

``DouglasPeucker``
    The batch gold standard: buffers the stream and recursively splits at
    the point of maximum deviation until every segment is within bound.

``TDTRCompressor``
    Time-ratio Douglas-Peucker (TD-TR): identical recursion but measured
    with the *synchronized Euclidean distance* — each point is compared to
    the position linearly interpolated at its own timestamp.  SED never
    undershoots the point-to-line deviation (the synchronized position lies
    on the chord's line), so a TD-TR output is error-bounded under the
    paper's metric as well.
"""

from __future__ import annotations

import math

from ..geometry.metrics import DistanceMetric, deviation as metric_deviation
from ..model.point import PlanePoint
from ..model.reconstruction import synchronized_deviation
from .base import CompressorBase, Decision, PointBuffer

__all__ = [
    "UniformSampler",
    "DeadReckoningCompressor",
    "DouglasPeucker",
    "TDTRCompressor",
]


class UniformSampler(CompressorBase):
    """Keep every ``period``-th point; no error guarantee."""

    name = "uniform"

    def __init__(self, period: int, epsilon: float = math.inf) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period!r}")
        super().__init__(epsilon)
        self.period = int(period)
        self._reset()

    def _reset(self) -> None:
        self._since_key = 0
        self._tail: PlanePoint | None = None

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        first = self._tail is None
        self._tail = point
        if first:
            self._since_key = 0
            return [point], Decision.INIT
        self._since_key += 1
        if self._since_key >= self.period:
            self._since_key = 0
            return [point], Decision.PERIODIC
        return [], Decision.PERIODIC

    def _flush(self) -> list[PlanePoint]:
        return [] if self._tail is None else [self._tail]


class DeadReckoningCompressor(CompressorBase):
    """Velocity-prediction compressor with O(1) state.

    A segment opens at a key point; its velocity is estimated from the key
    point and the first point that follows it.  Every later point is
    compared against the position the velocity predicts for its timestamp;
    the first point whose prediction error exceeds the (derated) threshold
    closes the segment at its predecessor.
    """

    name = "dead-reckoning"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
        safety_factor: float = 0.5,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("dead reckoning needs a finite error bound")
        if not 0.0 < safety_factor <= 1.0:
            raise ValueError(f"safety_factor must be in (0, 1], got {safety_factor!r}")
        super().__init__(epsilon, metric)
        self.safety_factor = float(safety_factor)
        self._threshold = epsilon * safety_factor
        self._reset()

    def _reset(self) -> None:
        self._key: PlanePoint | None = None
        self._velocity: tuple[float, float] | None = None
        self._prev: PlanePoint | None = None

    def _set_velocity(self, origin: PlanePoint, nxt: PlanePoint) -> None:
        dt = nxt.t - origin.t
        if dt > 0.0:
            self._velocity = ((nxt.x - origin.x) / dt, (nxt.y - origin.y) / dt)
        else:
            # Co-timestamped fix: no usable velocity, predict stationarity.
            self._velocity = (0.0, 0.0)

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        if self._key is None:
            self._key = point
            self._prev = point
            return [point], Decision.INIT
        if self._velocity is None:
            self._set_velocity(self._key, point)
            self._prev = point
            return [], Decision.ACCEPT
        dt = point.t - self._key.t
        vx, vy = self._velocity
        predicted_x = self._key.x + vx * dt
        predicted_y = self._key.y + vy * dt
        error = math.hypot(point.x - predicted_x, point.y - predicted_y)
        if error <= self._threshold:
            self._prev = point
            return [], Decision.THRESHOLD
        prev = self._prev
        assert prev is not None
        self._key = prev
        self._set_velocity(prev, point)
        self._prev = point
        return [prev], Decision.THRESHOLD

    def _flush(self) -> list[PlanePoint]:
        return [] if self._prev is None else [self._prev]


class _BatchCompressor(CompressorBase):
    """Shared buffering/driver for the batch baselines (decide in finish)."""

    def _reset(self) -> None:
        self._buffer = PointBuffer()

    @property
    def buffered_points(self) -> int:
        return len(self._buffer)

    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        self._buffer.append(point)
        return [], Decision.BATCH

    def _flush(self) -> list[PlanePoint]:
        points = list(self._buffer)
        self._buffer.clear()
        if not points:
            return []
        if len(points) <= 2:
            return points
        keep = self._select(points)
        return [points[i] for i in sorted(keep)]

    def _select(self, points: list[PlanePoint]) -> set[int]:
        """Indices to keep; iterative split-at-worst-point recursion."""
        keep = {0, len(points) - 1}
        stack = [(0, len(points) - 1)]
        while stack:
            lo, hi = stack.pop()
            if hi - lo < 2:
                continue
            worst = -1.0
            worst_idx = -1
            for i in range(lo + 1, hi):
                d = self._split_distance(points[i], points[lo], points[hi])
                if d > worst:
                    worst = d
                    worst_idx = i
            if worst > self._epsilon:
                keep.add(worst_idx)
                stack.append((lo, worst_idx))
                stack.append((worst_idx, hi))
        return keep

    def _split_distance(
        self, p: PlanePoint, a: PlanePoint, b: PlanePoint
    ) -> float:
        raise NotImplementedError


class DouglasPeucker(_BatchCompressor):
    """Classic batch Douglas-Peucker under the configured deviation metric."""

    name = "douglas-peucker"

    def __init__(
        self,
        epsilon: float,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
    ) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("Douglas-Peucker needs a finite error bound")
        super().__init__(epsilon, metric)
        self._reset()

    def _split_distance(
        self, p: PlanePoint, a: PlanePoint, b: PlanePoint
    ) -> float:
        return metric_deviation(p.xy, a.xy, b.xy, self._metric)


class TDTRCompressor(_BatchCompressor):
    """Top-down time-ratio (TD-TR): Douglas-Peucker under the SED metric."""

    name = "td-tr"

    def __init__(self, epsilon: float) -> None:
        if not math.isfinite(epsilon):
            raise ValueError("TD-TR needs a finite error bound")
        super().__init__(epsilon)
        self._reset()

    def _split_distance(
        self, p: PlanePoint, a: PlanePoint, b: PlanePoint
    ) -> float:
        return synchronized_deviation(p, a, b)
