"""Streaming-compressor architecture shared by every algorithm.

The paper frames trajectory compression as an *online* problem: points
arrive one at a time from a GPS unit, and the compressor must decide on the
fly which of them become key points of the compressed trajectory.  This
module fixes the contract every algorithm in :mod:`repro.compression`
implements, so BQS, Fast-BQS and the baselines are interchangeable from the
caller's point of view:

``StreamingCompressor`` (protocol)
    ``push(point) -> PushResult`` folds one point into the stream and
    reports any key points committed by that arrival; ``finish()`` seals the
    stream and returns the :class:`~repro.model.trajectory.CompressedTrajectory`.
    ``CompressorBase`` additionally offers ``push_many(points)``, a batched
    fast path with bit-identical output that skips per-point result
    allocation — the right call when nobody inspects individual arrivals.

``CompressorBase`` (ABC)
    The shared machinery: timestamp-monotonicity validation, key-point
    emission, push counting, lifecycle (``reset`` / one-shot ``finish``),
    the ``compress()`` convenience driver and the ``buffered_points``
    instrumentation used by the memory-behaviour tests.

``PointBuffer``
    A small buffer with high-water-mark tracking, used by the algorithms
    that legitimately buffer (BQS's exact-deviation fallback, the batch
    baselines) so their memory behaviour is observable.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from ..geometry.metrics import DistanceMetric
from ..model.point import PlanePoint
from ..model.trajectory import CompressedTrajectory

__all__ = [
    "Decision",
    "PushResult",
    "StreamingCompressor",
    "CompressorBase",
    "PointBuffer",
]


class Decision:
    """How a compressor arrived at a push outcome (for stats and tests).

    String constants rather than an enum so algorithm-specific decisions can
    be added without touching this module.
    """

    INIT = "init"  #: first point of the stream, always a key point
    ACCEPT = "accept"  #: point folded into the open segment, no analysis
    UPPER_BOUND = "upper_bound"  #: quadrant upper bound proved deviation <= ε
    LOWER_BOUND = "lower_bound"  #: quadrant lower bound proved deviation > ε
    EXACT_ACCEPT = "exact_accept"  #: exact deviation computed, point admitted
    EXACT_COMMIT = "exact_commit"  #: exact deviation computed, segment split
    THRESHOLD = "threshold"  #: scalar threshold test (dead reckoning)
    PERIODIC = "periodic"  #: fixed-rate decision (uniform sampling)
    BATCH = "batch"  #: deferred to finish() (batch baselines)

    #: .. deprecated:: PR 2
    #:    ``EXACT`` conflated the accept and commit outcomes of the exact
    #:    fallback; use :attr:`EXACT_ACCEPT` / :attr:`EXACT_COMMIT`.  Kept so
    #:    external stats readers comparing against the old label keep
    #:    importing, but no compressor records it any more.
    EXACT = "exact"


@dataclass(frozen=True)
class PushResult:
    """Outcome of feeding one point to a streaming compressor.

    Attributes:
        index: 0-based position of the pushed point in the original stream.
        new_key_points: key points committed *by this arrival* (usually
            empty; one on a segment split; the point itself on stream start).
        decided_by: one of the :class:`Decision` constants.
    """

    index: int
    new_key_points: tuple[PlanePoint, ...]
    decided_by: str

    @property
    def committed(self) -> bool:
        return bool(self.new_key_points)


@runtime_checkable
class StreamingCompressor(Protocol):
    """The uniform online interface of every compressor in this package."""

    @property
    def name(self) -> str:
        """Short algorithm identifier (used by the evaluation harness)."""
        ...

    @property
    def epsilon(self) -> float:
        """The error tolerance in metres (``math.inf`` when unbounded)."""
        ...

    @property
    def pushed(self) -> int:
        """Number of points consumed so far (any entry point)."""
        ...

    def push(self, point: PlanePoint) -> PushResult:
        """Fold one point into the stream; report committed key points."""
        ...

    def push_many(self, points: Iterable[PlanePoint]) -> int:
        """Fold a batch of points in (same output as a ``push`` loop);
        return how many were consumed."""
        ...

    def push_xyt(
        self,
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> int:
        """Fold a columnar batch of fixes in (same output as a ``push``
        loop over ``PlanePoint(x, y, t)``); return how many were consumed."""
        ...

    def finish(self) -> CompressedTrajectory:
        """Seal the stream and return the compressed trajectory."""
        ...

    def reset(self) -> None:
        """Return to the pristine pre-stream state."""
        ...


class PointBuffer:
    """A point buffer that remembers its high-water mark.

    Algorithms that buffer (BQS fallback, batch baselines) route their
    storage through this class so tests — and the evaluation harness — can
    report peak memory behaviour per algorithm.
    """

    __slots__ = ("_points", "peak")

    def __init__(self) -> None:
        self._points: list[PlanePoint] = []
        self.peak = 0

    def append(self, point: PlanePoint) -> None:
        self._points.append(point)
        if len(self._points) > self.peak:
            self.peak = len(self._points)

    def clear(self) -> None:
        self._points.clear()

    def restart_from(self, points: Iterable[PlanePoint]) -> None:
        """Replace the contents (new segment opened) without resetting peak."""
        self._points = list(points)
        if len(self._points) > self.peak:
            self.peak = len(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[PlanePoint]:
        return iter(self._points)

    def __getitem__(self, idx: int) -> PlanePoint:
        return self._points[idx]


class CompressorBase(abc.ABC):
    """Shared push/finish machinery for online compressors.

    Subclasses implement :meth:`_ingest` (per-point decision, returning any
    key points committed by that arrival plus the decision label) and
    :meth:`_flush` (key points emitted at end of stream).  The base class
    owns stream validation, key-point ordering, counting and lifecycle.
    """

    #: Short identifier; subclasses override.
    name: str = "base"

    def __init__(
        self,
        epsilon: float = math.inf,
        metric: DistanceMetric = DistanceMetric.POINT_TO_LINE,
    ) -> None:
        if not (epsilon > 0.0):
            raise ValueError(f"epsilon must be positive, got {epsilon!r}")
        self._epsilon = float(epsilon)
        self._metric = metric
        self._key_points: list[PlanePoint] = []
        self._count = 0
        self._last_t = -math.inf
        self._finished = False
        self._stats: dict[str, int] = {}

    # -- public interface ---------------------------------------------------

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def metric(self) -> DistanceMetric:
        return self._metric

    @property
    def pushed(self) -> int:
        """Number of points pushed so far."""
        return self._count

    @property
    def key_points(self) -> tuple[PlanePoint, ...]:
        """Key points committed so far (the stream tail is still open)."""
        return tuple(self._key_points)

    @property
    def buffered_points(self) -> int:
        """Points currently held in internal buffers (0 for O(1) algorithms)."""
        return 0

    @property
    def stats(self) -> dict[str, int]:
        """Per-decision counters accumulated during the stream."""
        return dict(self._stats)

    def push(self, point: PlanePoint) -> PushResult:
        if self._finished:
            raise RuntimeError(
                f"{self.name}: finish() already called; reset() to reuse"
            )
        if not isinstance(point, PlanePoint):
            raise TypeError(f"push expects PlanePoint, got {type(point).__name__}")
        if not (point.t >= self._last_t):
            raise ValueError(
                f"points must be non-decreasing in time "
                f"({self._last_t} then {point.t})"
            )
        self._last_t = point.t
        index = self._count
        self._count += 1
        committed, decided_by = self._ingest(point)
        for key in committed:
            self._emit(key)
        self._stats[decided_by] = self._stats.get(decided_by, 0) + 1
        return PushResult(index, tuple(committed), decided_by)

    def push_many(self, points: Iterable[PlanePoint]) -> int:
        """Batched fast path: fold a whole chunk of points into the stream.

        Produces *bit-identical* key points and stats to an equivalent loop
        of :meth:`push` calls (the property tests pin this down), but skips
        the per-point costs that only matter to callers inspecting each
        arrival: no :class:`PushResult` is allocated, no per-point
        ``isinstance`` check runs, and subclasses may bump plain integer
        slot counters that are folded into the stats dict once per batch
        (:meth:`_ingest_many`) rather than per point.  Timestamp
        monotonicity is still enforced on every point.

        Returns the number of points consumed.  Use :meth:`push` when the
        per-point decision or committed key points are needed as they
        happen.
        """
        if self._finished:
            raise RuntimeError(
                f"{self.name}: finish() already called; reset() to reuse"
            )
        return self._ingest_many(points)

    def push_xyt(
        self,
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> int:
        """Columnar batched entry point: fold flat ``(ts, xs, ys)`` columns in.

        The struct-of-arrays twin of :meth:`push_many` — the natural fit for
        :class:`~repro.model.columns.TrajectoryColumns` (pass ``cols.ts,
        cols.xs, cols.ys``) or any parallel float sequences.  Output is
        *bit-identical* to pushing ``PlanePoint(x, y, t)`` objects one at a
        time, but hot-path subclasses override :meth:`_ingest_xyt` to read
        the floats straight out of the columns and materialize points only
        for committed key points, so no per-fix object is ever built.

        Like :meth:`push_many`, values are trusted: the columnar overrides
        never check coordinates for finiteness on ingest (a non-finite
        coordinate surfaces as a ``ValueError`` only if its fix is
        materialized as a key point), while paths that materialize every
        fix — the default fallback below and BQS's ``debug_audit`` mode —
        validate each one at construction, exactly like a ``push`` loop.
        Timestamp monotonicity is always enforced on every fix, and a
        mid-batch violation consumes the valid prefix before raising.
        Returns the number of fixes consumed.
        """
        if self._finished:
            raise RuntimeError(
                f"{self.name}: finish() already called; reset() to reuse"
            )
        n = len(ts)
        if len(xs) != n or len(ys) != n:
            raise ValueError(
                f"column length mismatch: ts={n}, xs={len(xs)}, ys={len(ys)}"
            )
        return self._ingest_xyt(ts, xs, ys)

    def finish(self) -> CompressedTrajectory:
        if self._finished:
            raise RuntimeError(f"{self.name}: finish() already called")
        for key in self._flush():
            self._emit(key)
        self._finished = True
        return CompressedTrajectory(
            key_points=tuple(self._key_points),
            original_count=self._count,
            metric=self._metric,
            tolerance=self._epsilon,
            algorithm=self.name,
            info=self._info(),
        )

    def reset(self) -> None:
        """Reset the shared state, then the subclass state via _reset()."""
        self._key_points = []
        self._count = 0
        self._last_t = -math.inf
        self._finished = False
        self._stats = {}
        self._reset()

    def compress(self, points: Iterable[PlanePoint]) -> CompressedTrajectory:
        """One-pass convenience driver: reset, push everything, finish.

        Routed through :meth:`push_many`, so callers get the batched fast
        path for free; the output is identical to a per-point push loop.
        Like ``push_many`` — and unlike ``push`` — elements are trusted to
        be :class:`~repro.model.point.PlanePoint` instances; a wrong type
        fails with an ``AttributeError`` rather than ``push``'s
        ``TypeError``.
        """
        self.reset()
        self.push_many(points)
        return self.finish()

    # -- subclass contract --------------------------------------------------

    @abc.abstractmethod
    def _ingest(self, point: PlanePoint) -> tuple[list[PlanePoint], str]:
        """Process one point; return (committed key points, decision label)."""

    def _ingest_many(self, points: Iterable[PlanePoint]) -> int:
        """Batch ingest behind :meth:`push_many`; returns points consumed.

        The default drives :meth:`_ingest` in a tight loop with the stream
        bookkeeping hoisted into locals.  Hot-path subclasses override this
        with a loop that skips the per-point ``(committed, label)`` tuple
        entirely and counts decisions in integer slots — the contract is
        only that key points, counts and stats end up exactly as a
        :meth:`push` loop would leave them, even when a point mid-batch
        raises.
        """
        ingest = self._ingest
        emit = self._emit
        stats = self._stats
        last_t = self._last_t
        count = start = self._count
        try:
            for point in points:
                t = point.t
                if not (t >= last_t):
                    raise ValueError(
                        f"points must be non-decreasing in time "
                        f"({last_t} then {t})"
                    )
                last_t = t
                count += 1
                committed, decided_by = ingest(point)
                for key in committed:
                    emit(key)
                stats[decided_by] = stats.get(decided_by, 0) + 1
        finally:
            self._last_t = last_t
            self._count = count
        return count - start

    def _ingest_xyt(
        self,
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> int:
        """Columnar ingest behind :meth:`push_xyt`; returns fixes consumed.

        The default materializes a ``PlanePoint`` per fix and reuses
        :meth:`_ingest_many` — correct for every subclass, columnar-fast for
        none.  Hot-path subclasses override this with a loop over the raw
        floats; the contract is the same as :meth:`_ingest_many`: key
        points, counts and stats must end up exactly as a :meth:`push` loop
        over the materialized points would leave them, even when a fix
        mid-batch raises.
        """
        return self._ingest_many(map(PlanePoint, xs, ys, ts))

    def _run_batch_stepped(
        self,
        points: Iterable[PlanePoint],
        step,
        labels: tuple[str, ...],
    ) -> int:
        """The slot-counter batch loop shared by hot-path subclasses.

        ``step(point)`` returns ``(key_point_or_None, decision_slot)`` with
        the slot indexing into ``labels``; the counters are folded into the
        stats dict once, in the ``finally`` block, so stats stay consistent
        with a :meth:`push` loop even when a point mid-batch raises.
        """
        emit = self._emit
        counters = [0] * len(labels)
        last_t = self._last_t
        count = start = self._count
        try:
            for point in points:
                t = point.t
                if not (t >= last_t):
                    raise ValueError(
                        f"points must be non-decreasing in time "
                        f"({last_t} then {t})"
                    )
                last_t = t
                count += 1
                key, slot = step(point)
                counters[slot] += 1
                if key is not None:
                    emit(key)
        finally:
            self._last_t = last_t
            self._count = count
            stats = self._stats
            for slot, n in enumerate(counters):
                if n:
                    label = labels[slot]
                    stats[label] = stats.get(label, 0) + n
        return count - start

    @abc.abstractmethod
    def _flush(self) -> list[PlanePoint]:
        """Key points to emit when the stream ends (e.g. the open tail)."""

    def _reset(self) -> None:
        """Clear subclass state; default no-op for stateless compressors."""

    def _info(self) -> dict:
        """Extra info recorded on the output; defaults to the stats counters."""
        info: dict = {"decisions": dict(self._stats)}
        return info

    # -- helpers ------------------------------------------------------------

    def _emit(self, point: PlanePoint) -> None:
        """Append a key point, dropping exact consecutive duplicates."""
        if self._key_points:
            last = self._key_points[-1]
            if (
                last.x == point.x
                and last.y == point.y
                and last.t == point.t
            ):
                return
        self._key_points.append(point)
