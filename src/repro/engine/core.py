"""The single-process multi-stream engine.

:class:`StreamEngine` multiplexes many concurrent device streams over the
streaming compressors: each device gets its own compressor instance, fix
batches arrive interleaved across devices (the shape a gateway or broker
delivers), and the engine groups every batch into per-device columns and
feeds them through the zero-object ``push_xyt`` path.  Two policies keep
the engine's footprint bounded no matter how many devices come and go:

``max_devices``
    A hard cap on concurrently open streams.  Admitting a new device past
    the cap finishes and evicts the least-recently-active stream first —
    its compressed trajectory is delivered like any completed one.

``idle_timeout``
    Devices whose last fix is older than ``idle_timeout`` seconds of
    *stream time* (the engine's clock is the max timestamp it has seen, so
    behaviour is deterministic and replayable) are finished and evicted on
    the next batch boundary.

Both policies bound the *open-stream* state (compressors and per-device
bookkeeping).  Sealed trajectories flow through the :class:`~repro.engine.
sinks.Sink` protocol the moment a stream is sealed — explicitly or by a
policy — so an eviction can never silently drop a device's output: the
default ``collect=True`` routes them to an internal
:class:`~repro.engine.sinks.ListSink` bound to :attr:`StreamEngine.
results`, ``on_finish`` wraps a plain callback, and ``sink=`` accepts any
sink (e.g. :class:`repro.storage.store.StoreSink`, which streams a fleet
run straight to disk).  A long-lived engine with heavy device churn should
ship results through a sink and pass ``collect=False`` — then the engine
holds no completed state at all.

Because batches are regrouped per device in arrival order, the engine's
output for every device is **identical** to running that device's fixes
through its own compressor sequentially — the determinism tests pin this.
A device that reappears after being evicted simply opens a fresh
compressor; its stream is then represented by multiple trajectories, which
is exactly the amnesic behaviour a bounded-memory collector needs.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

from ..compression.base import StreamingCompressor
from ..model.trajectory import CompressedTrajectory
from .sinks import CallbackSink, ListSink, Sink

__all__ = ["StreamEngine", "DeviceId", "Fix"]

DeviceId = Hashable
Fix = Tuple[DeviceId, float, float, float]  #: ``(device_id, t, x, y)``


def group_fix_stream(
    fixes: Iterable[Tuple[DeviceId, float, float, float]],
) -> Dict[DeviceId, tuple[array, array, array]]:
    """Group an interleaved ``(device_id, t, a, b)`` tuple stream into
    per-device ``(t, a, b)`` columns in arrival order — one pass, shared
    by the planar and geodetic front-ends (the coordinate pair is metres
    for one, degrees for the other)."""
    groups: Dict[DeviceId, tuple[array, array, array]] = {}
    get = groups.get
    for device_id, t, a, b in fixes:
        cols = get(device_id)
        if cols is None:
            cols = (array("d"), array("d"), array("d"))
            groups[device_id] = cols
        cols[0].append(t)
        cols[1].append(a)
        cols[2].append(b)
    return groups


def group_fix_columns(
    device_ids: Sequence[DeviceId],
    ts: Sequence[float],
    c1: Sequence[float],
    c2: Sequence[float],
    c1_name: str = "xs",
    c2_name: str = "ys",
) -> Dict[DeviceId, tuple[array, array, array]]:
    """Group parallel interleaved columns per device (length-validated);
    the columnar twin of :func:`group_fix_stream`."""
    n = len(device_ids)
    if not (len(ts) == len(c1) == len(c2) == n):
        raise ValueError(
            "column length mismatch: "
            f"ids={n}, ts={len(ts)}, {c1_name}={len(c1)}, "
            f"{c2_name}={len(c2)}"
        )
    groups: Dict[DeviceId, tuple[array, array, array]] = {}
    get = groups.get
    for i in range(n):
        device_id = device_ids[i]
        cols = get(device_id)
        if cols is None:
            cols = (array("d"), array("d"), array("d"))
            groups[device_id] = cols
        cols[0].append(ts[i])
        cols[1].append(c1[i])
        cols[2].append(c2[i])
    return groups


class _DeviceState:
    __slots__ = ("compressor", "last_t", "fixes")

    def __init__(self, compressor: StreamingCompressor) -> None:
        self.compressor = compressor
        self.last_t = -float("inf")
        self.fixes = 0


class StreamEngine:
    """Multiplex thousands of device streams over per-device compressors.

    Args:
        compressor_factory: called as ``factory(device_id)`` whenever a new
            device stream opens; must return a fresh compressor.
        max_devices: cap on concurrently open streams (LRU finish/evict
            past it); ``None`` for unbounded.
        idle_timeout: seconds of stream time after which an inactive device
            is finished and evicted; ``None`` to keep idle streams open.
        on_finish: callback ``(device_id, trajectory)`` invoked whenever a
            stream is sealed (explicitly or by eviction); sugar for a
            :class:`~repro.engine.sinks.CallbackSink`.
        collect: keep sealed trajectories in :attr:`results` (an internal
            :class:`~repro.engine.sinks.ListSink`).  Turn off when a sink
            ships them elsewhere and the engine should hold no completed
            state at all.
        sink: any :class:`~repro.engine.sinks.Sink`; receives every sealed
            trajectory, eviction included.  The engine never closes it —
            its lifetime belongs to the caller.
    """

    def __init__(
        self,
        compressor_factory: Callable[[DeviceId], StreamingCompressor],
        *,
        max_devices: int | None = None,
        idle_timeout: float | None = None,
        on_finish: Callable[[DeviceId, CompressedTrajectory], None] | None = None,
        collect: bool = True,
        sink: Sink | None = None,
    ) -> None:
        if max_devices is not None and max_devices < 1:
            raise ValueError(f"max_devices must be >= 1, got {max_devices!r}")
        if idle_timeout is not None and not idle_timeout > 0.0:
            raise ValueError(f"idle_timeout must be > 0, got {idle_timeout!r}")
        self._factory = compressor_factory
        self._max_devices = max_devices
        self._idle_timeout = idle_timeout
        #: Open streams; dict order doubles as the LRU order (least
        #: recently *updated* first — batches re-insert on update).
        self._devices: Dict[DeviceId, _DeviceState] = {}
        #: Sealed trajectories per device (a device evicted and reopened
        #: accumulates one entry per stream), when ``collect`` is on.
        self.results: Dict[DeviceId, List[CompressedTrajectory]] = {}
        #: Every sealed stream is emitted to each of these, in order:
        #: collect ledger first, then the historical callback, then the
        #: caller's sink.
        sinks: List[Sink] = []
        if collect:
            sinks.append(ListSink(self.results))
        if on_finish is not None:
            sinks.append(CallbackSink(on_finish))
        if sink is not None:
            sinks.append(sink)
        self._sinks: tuple[Sink, ...] = tuple(sinks)
        self._clock = -float("inf")
        self._total_fixes = 0
        self._sealed = 0
        self._evicted = 0

    # -- introspection -------------------------------------------------------

    @property
    def active_devices(self) -> int:
        """Streams currently open."""
        return len(self._devices)

    @property
    def total_fixes(self) -> int:
        """Fixes ingested over the engine's lifetime."""
        return self._total_fixes

    @property
    def sealed_trajectories(self) -> int:
        """Trajectories finished so far (explicitly or by eviction)."""
        return self._sealed

    @property
    def evictions(self) -> int:
        """Streams sealed by a policy (LRU cap or idle timeout)."""
        return self._evicted

    @property
    def clock(self) -> float:
        """Stream time: the maximum timestamp ingested so far."""
        return self._clock

    def device_ids(self) -> list[DeviceId]:
        """Open device ids, least recently active first."""
        return list(self._devices)

    def is_open(self, device_id: DeviceId) -> bool:
        """Whether a stream is currently open for this device."""
        return device_id in self._devices

    # -- ingestion -----------------------------------------------------------

    def push_fix(self, device_id: DeviceId, t: float, x: float, y: float) -> None:
        """Fold a single fix in (convenience; batches are the fast path)."""
        self.push_columns((device_id,), (t,), (x,), (y,))

    def push_batch(self, fixes: Iterable[Fix]) -> int:
        """Fold an interleaved batch of ``(device_id, t, x, y)`` fixes in.

        Fixes are regrouped into per-device columns in arrival order, so
        per-device output is identical to a sequential run.  Returns the
        number of fixes consumed.  Groups directly from the tuple stream
        (one pass) rather than delegating through :meth:`push_columns`,
        which would unzip and regroup every fix twice.
        """
        return self._dispatch_groups(group_fix_stream(fixes))

    def push_columns(
        self,
        device_ids: Sequence[DeviceId],
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> int:
        """Fold a columnar interleaved batch in (``device_ids`` parallel to
        the coordinate columns); the zero-object fast path end to end."""
        return self._dispatch_groups(group_fix_columns(device_ids, ts, xs, ys))

    def push_grouped(
        self,
        groups: Dict[DeviceId, Tuple[Sequence[float], Sequence[float], Sequence[float]]],
    ) -> int:
        """Fold per-device ``(ts, xs, ys)`` columns in without regrouping.

        The entry point for front-ends that already hold device-grouped
        columns (the geodetic front-end groups once to pick and apply each
        device's projection); delegating through :meth:`push_columns`
        would interleave and regroup every fix a second time.
        """
        for device_id, (ts, xs, ys) in groups.items():
            if not (len(ts) == len(xs) == len(ys)):
                raise ValueError(
                    f"column length mismatch for device {device_id!r}: "
                    f"ts={len(ts)}, xs={len(xs)}, ys={len(ys)}"
                )
        return self._dispatch_groups(groups)

    def _dispatch_groups(
        self, groups: Dict[DeviceId, tuple[array, array, array]]
    ) -> int:
        """Feed per-device columns to their compressors; returns fixes consumed.

        A device whose columns fail mid-ingest (e.g. a timestamp going
        backwards) has its valid prefix consumed — matching ``push_xyt``'s
        own partial-consumption contract — and the engine's accounting
        (per-device fix counts, recency, the stream clock) reflects exactly
        what the compressors absorbed before the error propagates;
        not-yet-dispatched devices in the batch are untouched.
        """
        devices = self._devices
        consumed = 0
        batch_clock = self._clock
        try:
            for device_id, (ts, xs, ys) in groups.items():
                state = devices.get(device_id)
                opened = state is None
                if opened:
                    state = self._open_device(device_id)
                before = state.compressor.pushed
                try:
                    state.compressor.push_xyt(ts, xs, ys)
                finally:
                    n = state.compressor.pushed - before
                    if n:
                        consumed += n
                        state.fixes += n
                        last = ts[n - 1]
                        if last > state.last_t:
                            state.last_t = last
                        if last > batch_clock:
                            batch_clock = last
                        if not opened:
                            # Refresh LRU recency (dict order is the
                            # eviction order) — only for batches that
                            # actually ingested, so a device spamming
                            # invalid fixes cannot keep itself resident
                            # while healthy quiet devices get evicted.
                            del devices[device_id]
                            devices[device_id] = state
        finally:
            self._total_fixes += consumed
            if batch_clock > self._clock:
                self._clock = batch_clock
        if self._idle_timeout is not None:
            self._evict_idle()
        return consumed

    def _open_device(self, device_id: DeviceId) -> _DeviceState:
        devices = self._devices
        if self._max_devices is not None:
            while len(devices) >= self._max_devices:
                oldest = next(iter(devices))
                self._seal(oldest, evicted=True)
        state = _DeviceState(self._factory(device_id))
        devices[device_id] = state
        return state

    def _evict_idle(self) -> None:
        horizon = self._clock - self._idle_timeout
        # Collect first: sealing mutates the dict.
        stale = [
            device_id
            for device_id, state in self._devices.items()
            if state.last_t < horizon
        ]
        for device_id in stale:
            self._seal(device_id, evicted=True)

    # -- sealing -------------------------------------------------------------

    def _seal(self, device_id: DeviceId, evicted: bool) -> CompressedTrajectory:
        state = self._devices.pop(device_id)
        trajectory = state.compressor.finish()
        self._sealed += 1
        if evicted:
            self._evicted += 1
        for sink in self._sinks:
            sink.emit(device_id, trajectory)
        return trajectory

    def finish_device(self, device_id: DeviceId) -> CompressedTrajectory:
        """Seal one device's stream now and return its trajectory."""
        if device_id not in self._devices:
            raise KeyError(f"no open stream for device {device_id!r}")
        return self._seal(device_id, evicted=False)

    def finish_all(self) -> Dict[DeviceId, List[CompressedTrajectory]]:
        """Seal every open stream and return all collected results.

        The returned mapping includes trajectories sealed earlier by
        policies (when ``collect`` is on); each device maps to its sealed
        trajectories in completion order.  The engine stays usable: later
        batches reopen fresh streams for their devices (``finish_all`` is a
        checkpoint, not a shutdown — unlike the sharded engine, whose
        workers exit).
        """
        for device_id in list(self._devices):
            self._seal(device_id, evicted=False)
        return self.results
