"""The single-process multi-stream engine.

:class:`StreamEngine` multiplexes many concurrent device streams over the
streaming compressors: each device gets its own compressor instance, fix
batches arrive interleaved across devices (the shape a gateway or broker
delivers), and the engine groups every batch into per-device columns and
feeds them through the zero-object ``push_xyt`` path.  Two policies keep
the engine's footprint bounded no matter how many devices come and go:

``max_devices``
    A hard cap on concurrently open streams.  Admitting a new device past
    the cap finishes and evicts the least-recently-active stream first —
    its compressed trajectory is delivered like any completed one.

``idle_timeout``
    Devices whose last fix is older than ``idle_timeout`` seconds of
    *stream time* (the engine's clock is the max timestamp it has seen, so
    behaviour is deterministic and replayable) are finished and evicted on
    the next batch boundary.

Both policies bound the *open-stream* state (compressors and per-device
bookkeeping).  Sealed trajectories flow through the :class:`~repro.engine.
sinks.Sink` protocol the moment a stream is sealed — explicitly or by a
policy — so an eviction can never silently drop a device's output: the
default ``collect=True`` routes them to an internal
:class:`~repro.engine.sinks.ListSink` bound to :attr:`StreamEngine.
results`, ``on_finish`` wraps a plain callback, and ``sink=`` accepts any
sink (e.g. :class:`repro.storage.store.StoreSink`, which streams a fleet
run straight to disk).  A long-lived engine with heavy device churn should
ship results through a sink and pass ``collect=False`` — then the engine
holds no completed state at all.

Because batches are regrouped per device in arrival order, the engine's
output for every device is **identical** to running that device's fixes
through its own compressor sequentially — the determinism tests pin this.
A device that reappears after being evicted simply opens a fresh
compressor; its stream is then represented by multiple trajectories, which
is exactly the amnesic behaviour a bounded-memory collector needs.
"""

from __future__ import annotations

import os
from array import array
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

from ..compression.base import StreamingCompressor
from ..model.trajectory import CompressedTrajectory
from .journal import EmitGate, FixJournal, RecoveryReport
from .sanitize import FeedChunk, FeedCounters, FeedReport, FeedSanitizer, SanitizePolicy
from .sinks import CallbackSink, ListSink, Sink

__all__ = ["BatchIngestError", "StreamEngine", "DeviceId", "Fix"]

DeviceId = Hashable
Fix = Tuple[DeviceId, float, float, float]  #: ``(device_id, t, x, y)``


class BatchIngestError(ValueError):
    """A batch failed mid-ingest; the valid prefix was consumed.

    Raised by the engines' ``push_*`` methods when a device's columns are
    rejected (a timestamp going backwards, a non-finite or out-of-domain
    coordinate at the geodetic boundary).  The engine's accounting is
    exact at the moment it propagates: :attr:`consumed` fixes from the
    batch (of which :attr:`device_consumed` from the failing device) were
    absorbed by compressors and are reflected in ``total_fixes``, device
    recency, and the stream clock; not-yet-dispatched devices in the
    batch are untouched.

    Attributes:
        device_id: the device whose columns failed.
        index: index of the offending fix within the device's columns in
            this batch, when the failure names one (geodetic validation);
            ``None`` otherwise.
        device_consumed: fixes from the failing device's columns consumed
            before the error.
        consumed: fixes consumed from the whole batch, all devices.
    """

    def __init__(
        self,
        message: str,
        *,
        device_id: DeviceId,
        index: int | None = None,
        device_consumed: int = 0,
        consumed: int = 0,
    ) -> None:
        super().__init__(message)
        self.device_id = device_id
        self.index = index
        self.device_consumed = device_consumed
        self.consumed = consumed


def group_fix_stream(
    fixes: Iterable[Tuple[DeviceId, float, float, float]],
) -> Dict[DeviceId, tuple[array, array, array]]:
    """Group an interleaved ``(device_id, t, a, b)`` tuple stream into
    per-device ``(t, a, b)`` columns in arrival order — one pass, shared
    by the planar and geodetic front-ends (the coordinate pair is metres
    for one, degrees for the other)."""
    groups: Dict[DeviceId, tuple[array, array, array]] = {}
    get = groups.get
    for device_id, t, a, b in fixes:
        cols = get(device_id)
        if cols is None:
            cols = (array("d"), array("d"), array("d"))
            groups[device_id] = cols
        cols[0].append(t)
        cols[1].append(a)
        cols[2].append(b)
    return groups


def group_fix_columns(
    device_ids: Sequence[DeviceId],
    ts: Sequence[float],
    c1: Sequence[float],
    c2: Sequence[float],
    c1_name: str = "xs",
    c2_name: str = "ys",
) -> Dict[DeviceId, tuple[array, array, array]]:
    """Group parallel interleaved columns per device (length-validated);
    the columnar twin of :func:`group_fix_stream`."""
    n = len(device_ids)
    if not (len(ts) == len(c1) == len(c2) == n):
        raise ValueError(
            "column length mismatch: "
            f"ids={n}, ts={len(ts)}, {c1_name}={len(c1)}, "
            f"{c2_name}={len(c2)}"
        )
    groups: Dict[DeviceId, tuple[array, array, array]] = {}
    get = groups.get
    for i in range(n):
        device_id = device_ids[i]
        cols = get(device_id)
        if cols is None:
            cols = (array("d"), array("d"), array("d"))
            groups[device_id] = cols
        cols[0].append(ts[i])
        cols[1].append(c1[i])
        cols[2].append(c2[i])
    return groups


class _DeviceState:
    __slots__ = ("compressor", "last_t", "fixes", "sanitizer")

    def __init__(
        self,
        compressor: StreamingCompressor,
        sanitizer: FeedSanitizer | None = None,
    ) -> None:
        self.compressor = compressor
        self.last_t = -float("inf")
        self.fixes = 0
        self.sanitizer = sanitizer


class StreamEngine:
    """Multiplex thousands of device streams over per-device compressors.

    Args:
        compressor_factory: called as ``factory(device_id)`` whenever a new
            device stream opens; must return a fresh compressor.
        max_devices: cap on concurrently open streams (LRU finish/evict
            past it); ``None`` for unbounded.
        idle_timeout: seconds of stream time after which an inactive device
            is finished and evicted; ``None`` to keep idle streams open.
        on_finish: callback ``(device_id, trajectory)`` invoked whenever a
            stream is sealed (explicitly or by eviction); sugar for a
            :class:`~repro.engine.sinks.CallbackSink`.
        collect: keep sealed trajectories in :attr:`results` (an internal
            :class:`~repro.engine.sinks.ListSink`).  Turn off when a sink
            ships them elsewhere and the engine should hold no completed
            state at all.
        sink: any :class:`~repro.engine.sinks.Sink`; receives every sealed
            trajectory, eviction included.  The engine never closes it —
            its lifetime belongs to the caller.
        policy: a :class:`~repro.engine.sanitize.SanitizePolicy` puts a
            per-device :class:`~repro.engine.sanitize.FeedSanitizer` in
            front of every compressor: dirty fixes are repaired or
            dropped (and accounted in :meth:`feed_report`), gaps and
            teleport rejoins split the stream into multiple sealed
            trajectories.  ``None`` (the default) trusts the input and
            keeps the raw fast path — output is bit-identical to the
            engine without this parameter.
        journal: a :class:`~repro.engine.journal.FixJournal` (or a
            directory path to open one in) makes ingestion crash-durable:
            every accepted batch is journaled *before* it is dispatched,
            every delivered seal is checkpointed after its sinks accept
            it, and :meth:`recover` rebuilds the engine's exact pre-crash
            state from the journal.  ``None`` (the default) keeps the
            journal-free fast path, bit-identical to before.
        journal_fsync: fsync every journal frame (power-loss durability;
            only consulted when ``journal`` is a path).
    """

    def __init__(
        self,
        compressor_factory: Callable[[DeviceId], StreamingCompressor],
        *,
        max_devices: int | None = None,
        idle_timeout: float | None = None,
        on_finish: Callable[[DeviceId, CompressedTrajectory], None] | None = None,
        collect: bool = True,
        sink: Sink | None = None,
        policy: SanitizePolicy | None = None,
        journal: FixJournal | str | os.PathLike | None = None,
        journal_fsync: bool = False,
    ) -> None:
        if max_devices is not None and max_devices < 1:
            raise ValueError(f"max_devices must be >= 1, got {max_devices!r}")
        if idle_timeout is not None and not idle_timeout > 0.0:
            raise ValueError(f"idle_timeout must be > 0, got {idle_timeout!r}")
        self._factory = compressor_factory
        self._max_devices = max_devices
        self._idle_timeout = idle_timeout
        #: Open streams; dict order doubles as the LRU order (least
        #: recently *updated* first — batches re-insert on update).
        self._devices: Dict[DeviceId, _DeviceState] = {}
        #: Sealed trajectories per device (a device evicted and reopened
        #: accumulates one entry per stream), when ``collect`` is on.
        self.results: Dict[DeviceId, List[CompressedTrajectory]] = {}
        #: Every sealed stream is emitted to each of these, in order:
        #: collect ledger first, then the historical callback, then the
        #: caller's sink.
        sinks: List[Sink] = []
        if collect:
            sinks.append(ListSink(self.results))
        if on_finish is not None:
            sinks.append(CallbackSink(on_finish))
        if sink is not None:
            sinks.append(sink)
        self._sinks: tuple[Sink, ...] = tuple(sinks)
        self._policy = policy
        #: Sanitation ledgers per device id — persistent across splits,
        #: evictions and stream rebirths, so the fleet-level report keeps
        #: every fix a device ever sent accounted for.
        self._feed_counters: Dict[DeviceId, FeedCounters] = {}
        if journal is not None and not isinstance(journal, FixJournal):
            journal = FixJournal(journal, fsync=journal_fsync)
        if journal is not None and journal.geodetic:
            raise ValueError(
                "a geodetic journal cannot drive a planar StreamEngine"
            )
        #: The write-ahead fix journal, or ``None`` (no durability).
        self._journal = journal
        #: Every seal path delivers through the gate: it checkpoints
        #: seals in the journal and, during recovery replay, suppresses
        #: the ones the crashed run already delivered.
        self._gate = EmitGate(journal)
        #: The :class:`~repro.engine.journal.RecoveryReport` when this
        #: engine was built by :meth:`recover`; ``None`` otherwise.
        self.recovery: RecoveryReport | None = None
        self._clock = -float("inf")
        self._total_fixes = 0
        self._sealed = 0
        self._evicted = 0

    # -- introspection -------------------------------------------------------

    @property
    def active_devices(self) -> int:
        """Streams currently open."""
        return len(self._devices)

    @property
    def total_fixes(self) -> int:
        """Fixes ingested over the engine's lifetime."""
        return self._total_fixes

    @property
    def sealed_trajectories(self) -> int:
        """Trajectories finished so far (explicitly or by eviction)."""
        return self._sealed

    @property
    def evictions(self) -> int:
        """Streams sealed by a policy (LRU cap or idle timeout)."""
        return self._evicted

    @property
    def clock(self) -> float:
        """Stream time: the maximum timestamp ingested so far."""
        return self._clock

    def device_ids(self) -> list[DeviceId]:
        """Open device ids, least recently active first."""
        return list(self._devices)

    def is_open(self, device_id: DeviceId) -> bool:
        """Whether a stream is currently open for this device."""
        return device_id in self._devices

    @property
    def policy(self) -> SanitizePolicy | None:
        """The sanitization policy, or ``None`` on the trusted fast path."""
        return self._policy

    @property
    def journal(self) -> FixJournal | None:
        """The write-ahead fix journal, or ``None`` when not durable."""
        return self._journal

    def feed_report(self) -> FeedReport:
        """The merged sanitation ledger across every device ever seen.

        Always reconciles: ``fixes_in == fixes_out + dropped + buffered``.
        Empty (all zeros) when no policy is configured.
        """
        report = FeedReport()
        for counters in self._feed_counters.values():
            report = report.merged(counters.snapshot())
        return report

    def device_feed_reports(self) -> Dict[DeviceId, FeedReport]:
        """Per-device sanitation ledgers (empty without a policy)."""
        return {
            device_id: counters.snapshot()
            for device_id, counters in self._feed_counters.items()
        }

    def _counters(self, device_id: DeviceId) -> FeedCounters:
        """The device's persistent ledger (front-ends charge boundary
        drops here so they reconcile with the sanitizer's own counts)."""
        counters = self._feed_counters.get(device_id)
        if counters is None:
            counters = FeedCounters()
            self._feed_counters[device_id] = counters
        return counters

    # -- ingestion -----------------------------------------------------------

    def push_fix(self, device_id: DeviceId, t: float, x: float, y: float) -> None:
        """Fold a single fix in (convenience; batches are the fast path)."""
        self.push_columns((device_id,), (t,), (x,), (y,))

    def push_batch(self, fixes: Iterable[Fix]) -> int:
        """Fold an interleaved batch of ``(device_id, t, x, y)`` fixes in.

        Fixes are regrouped into per-device columns in arrival order, so
        per-device output is identical to a sequential run.  Returns the
        number of fixes consumed.  Groups directly from the tuple stream
        (one pass) rather than delegating through :meth:`push_columns`,
        which would unzip and regroup every fix twice.
        """
        return self._dispatch_groups(group_fix_stream(fixes))

    def push_columns(
        self,
        device_ids: Sequence[DeviceId],
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> int:
        """Fold a columnar interleaved batch in (``device_ids`` parallel to
        the coordinate columns); the zero-object fast path end to end."""
        return self._dispatch_groups(group_fix_columns(device_ids, ts, xs, ys))

    def push_grouped(
        self,
        groups: Dict[DeviceId, Tuple[Sequence[float], Sequence[float], Sequence[float]]],
    ) -> int:
        """Fold per-device ``(ts, xs, ys)`` columns in without regrouping.

        The entry point for front-ends that already hold device-grouped
        columns (the geodetic front-end groups once to pick and apply each
        device's projection); delegating through :meth:`push_columns`
        would interleave and regroup every fix a second time.
        """
        for device_id, (ts, xs, ys) in groups.items():
            if not (len(ts) == len(xs) == len(ys)):
                raise ValueError(
                    f"column length mismatch for device {device_id!r}: "
                    f"ts={len(ts)}, xs={len(xs)}, ys={len(ys)}"
                )
        return self._dispatch_groups(groups)

    def _dispatch_groups(
        self, groups: Dict[DeviceId, tuple[array, array, array]]
    ) -> int:
        """Feed per-device columns to their compressors; returns fixes consumed.

        A device whose columns fail mid-ingest (e.g. a timestamp going
        backwards) has its valid prefix consumed — matching ``push_xyt``'s
        own partial-consumption contract — and the engine's accounting
        (per-device fix counts, recency, the stream clock) reflects exactly
        what the compressors absorbed before the error propagates as a
        :class:`BatchIngestError` carrying the consumed counts;
        not-yet-dispatched devices in the batch are untouched.
        """
        if self._journal is not None and not self._gate.replaying:
            # Write-ahead: the batch is durable before any compressor
            # sees it, so an acknowledged push can always be replayed.
            self._journal.log_push(groups)
        if self._policy is not None:
            return self._dispatch_sanitized(groups)
        devices = self._devices
        consumed = 0
        batch_clock = self._clock
        failure: ValueError | None = None
        failed_device: DeviceId = None
        failed_n = 0
        try:
            for device_id, (ts, xs, ys) in groups.items():
                state = devices.get(device_id)
                opened = state is None
                if opened:
                    state = self._open_device(device_id)
                before = state.compressor.pushed
                n = 0
                try:
                    state.compressor.push_xyt(ts, xs, ys)
                except ValueError as exc:
                    failure = exc
                    failed_device = device_id
                finally:
                    n = state.compressor.pushed - before
                    if n:
                        consumed += n
                        state.fixes += n
                        last = ts[n - 1]
                        if last > state.last_t:
                            state.last_t = last
                        if last > batch_clock:
                            batch_clock = last
                        if not opened:
                            # Refresh LRU recency (dict order is the
                            # eviction order) — only for batches that
                            # actually ingested, so a device spamming
                            # invalid fixes cannot keep itself resident
                            # while healthy quiet devices get evicted.
                            del devices[device_id]
                            devices[device_id] = state
                if failure is not None:
                    failed_n = n
                    break
        finally:
            self._total_fixes += consumed
            if batch_clock > self._clock:
                self._clock = batch_clock
        if failure is not None:
            raise BatchIngestError(
                f"device {failed_device!r}: {failure} "
                f"[batch consumed {consumed} fixes, "
                f"{failed_n} from this device]",
                device_id=failed_device,
                device_consumed=failed_n,
                consumed=consumed,
            ) from failure
        if self._idle_timeout is not None:
            self._evict_idle()
        return consumed

    def _dispatch_sanitized(
        self, groups: Dict[DeviceId, tuple[array, array, array]]
    ) -> int:
        """The policy path: every device's columns pass through its
        :class:`FeedSanitizer` before its compressor.

        Returns the number of *raw* fixes absorbed by the sanitizers —
        the whole batch, since the sanitizer never rejects, it drops with
        a reason or holds back in its reorder buffer.  ``total_fixes``
        keeps counting what the compressors absorbed, so the gap between
        the two is exactly the ledger's dropped + buffered counts.
        """
        devices = self._devices
        consumed = 0
        for device_id, (ts, xs, ys) in groups.items():
            state = devices.get(device_id)
            opened = state is None
            if opened:
                state = self._open_device(device_id)
            consumed += len(ts)
            chunks = state.sanitizer.process(ts, xs, ys)
            if self._push_chunks(device_id, state, chunks) and not opened:
                del devices[device_id]
                devices[device_id] = state
        if self._idle_timeout is not None:
            self._evict_idle()
        return consumed

    def _push_chunks(
        self, device_id: DeviceId, state: _DeviceState, chunks: List[FeedChunk]
    ) -> bool:
        """Feed sanitized chunks to the device's compressor, splitting the
        stream where a chunk demands it; True if any fix was ingested."""
        batch_clock = self._clock
        pushed = 0
        for seal_before, ts, xs, ys in chunks:
            if seal_before and state.compressor.pushed:
                self._split(device_id, state)
            state.compressor.push_xyt(ts, xs, ys)
            n = len(ts)
            if n:
                pushed += n
                state.fixes += n
                last = ts[n - 1]
                if last > state.last_t:
                    state.last_t = last
                if last > batch_clock:
                    batch_clock = last
        if pushed:
            self._total_fixes += pushed
            if batch_clock > self._clock:
                self._clock = batch_clock
        return pushed > 0

    def _split(self, device_id: DeviceId, state: _DeviceState) -> None:
        """Seal the device's open stream in place and start a fresh one
        (gap / teleport-rejoin splits) — the device stays open, so
        front-end state keyed on open streams (the geodetic projection
        registry) survives the split."""
        trajectory = state.compressor.finish()
        state.compressor = self._factory(device_id)
        if trajectory.original_count:
            self._sealed += 1
            self._gate.deliver(device_id, trajectory, self._sinks)

    def _open_device(self, device_id: DeviceId) -> _DeviceState:
        devices = self._devices
        if self._max_devices is not None:
            while len(devices) >= self._max_devices:
                oldest = next(iter(devices))
                self._seal(oldest, evicted=True)
        sanitizer = None
        if self._policy is not None:
            sanitizer = FeedSanitizer(self._policy, self._counters(device_id))
        state = _DeviceState(self._factory(device_id), sanitizer)
        devices[device_id] = state
        return state

    def _evict_idle(self) -> None:
        horizon = self._clock - self._idle_timeout
        # Collect first: sealing mutates the dict.
        stale = [
            device_id
            for device_id, state in self._devices.items()
            if state.last_t < horizon
        ]
        for device_id in stale:
            self._seal(device_id, evicted=True)

    # -- sealing -------------------------------------------------------------

    def _seal(self, device_id: DeviceId, evicted: bool) -> CompressedTrajectory:
        state = self._devices[device_id]
        if state.sanitizer is not None:
            # Drain the reorder buffer through the stages while the
            # device is still open (a gap surfacing here still splits).
            self._push_chunks(device_id, state, state.sanitizer.flush())
        del self._devices[device_id]
        trajectory = state.compressor.finish()
        if evicted:
            self._evicted += 1
        if state.sanitizer is None or trajectory.original_count:
            # The policy path suppresses empty tails (every real fix was
            # already sealed by a split); the trusted path emits exactly
            # what it always has.
            self._sealed += 1
            self._gate.deliver(device_id, trajectory, self._sinks)
        return trajectory

    def finish_device(self, device_id: DeviceId) -> CompressedTrajectory:
        """Seal one device's stream now and return its trajectory."""
        if device_id not in self._devices:
            raise KeyError(f"no open stream for device {device_id!r}")
        if self._journal is not None and not self._gate.replaying:
            # Explicit finishes are API events the replayed pushes cannot
            # reproduce (unlike evictions and splits) — journal them.
            self._journal.log_finish(device_id)
        return self._seal(device_id, evicted=False)

    def finish_all(self) -> Dict[DeviceId, List[CompressedTrajectory]]:
        """Seal every open stream and return all collected results.

        The returned mapping includes trajectories sealed earlier by
        policies (when ``collect`` is on); each device maps to its sealed
        trajectories in completion order.  The engine stays usable: later
        batches reopen fresh streams for their devices (``finish_all`` is a
        checkpoint, not a shutdown — unlike the sharded engine, whose
        workers exit).

        With a journal, ``finish_all`` is also its quiesce point: once
        every stream is sealed and checkpointed the journal rotates to a
        fresh (empty) segment, so it stays bounded by the work since the
        last checkpoint.
        """
        journal = None
        if self._journal is not None and not self._gate.replaying:
            journal = self._journal
            journal.log_finish_all()
        for device_id in list(self._devices):
            self._seal(device_id, evicted=False)
        if journal is not None:
            journal.rotate()
        return self.results

    # -- crash recovery ------------------------------------------------------

    @classmethod
    def recover(
        cls,
        journal_dir: FixJournal | str | os.PathLike,
        compressor_factory: Callable[[DeviceId], StreamingCompressor],
        *,
        max_devices: int | None = None,
        idle_timeout: float | None = None,
        on_finish: Callable[[DeviceId, CompressedTrajectory], None] | None = None,
        collect: bool = True,
        sink: Sink | None = None,
        policy: SanitizePolicy | None = None,
        dedupe_store=None,
        journal_fsync: bool = False,
    ) -> "StreamEngine":
        """Rebuild an engine's pre-crash state from its fix journal.

        Replays every journaled batch (and explicit finish) through a
        fresh engine built with the given configuration — which must
        match the crashed engine's, since the replay's determinism is
        what makes the rebuilt state exact.  Seals the crashed run
        already delivered (per the journal's seal checkpoints) are
        suppressed; seals that were lost with the crash are delivered to
        the sinks now; torn journal tails are dropped the same way the
        store drops torn segment tails.  Afterwards the engine is live:
        it keeps journaling into the same directory, and
        :attr:`recovery` carries the :class:`~repro.engine.journal.
        RecoveryReport` (``recovery.last_seq`` tells a resuming feed
        which batches are already ingested).

        ``dedupe_store``: the :class:`~repro.storage.store.
        TrajectoryStore` the crashed run's sink wrote to, if any.  Closes
        the emit-before-checkpoint crash window: a trajectory that
        reached the store but whose seal checkpoint was lost is detected
        there and not delivered twice.
        """
        journal = journal_dir
        if not isinstance(journal, FixJournal):
            journal = FixJournal(
                journal, fsync=journal_fsync, keep_records=True
            )
        engine = cls(
            compressor_factory,
            max_devices=max_devices,
            idle_timeout=idle_timeout,
            on_finish=on_finish,
            collect=collect,
            sink=sink,
            policy=policy,
            journal=journal,
        )
        engine.recovery = engine._replay(dedupe_store)
        return engine

    def _replay(self, dedupe_store) -> RecoveryReport:
        journal = self._journal
        gate = self._gate
        gate.begin_replay(journal.seal_counts(), dedupe_store)
        batches = fixes = 0
        try:
            for record in journal.iter_records():
                kind = record[0]
                if kind == "push":
                    batches += 1
                    try:
                        fixes += self._dispatch_groups(record[2])
                    except BatchIngestError:
                        # The original run raised the same error at the
                        # same point with the same valid prefix consumed;
                        # the replayed state already matches it.
                        pass
                elif kind == "finish":
                    if self.is_open(record[1]):
                        self.finish_device(record[1])
                else:  # finish_all
                    self.finish_all()
        finally:
            suppressed, deduped, reemitted = gate.end_replay()
        journal.drop_records()
        return RecoveryReport(
            last_seq=journal.last_seq,
            batches_replayed=batches,
            fixes_replayed=fixes,
            seals_suppressed=suppressed,
            seals_deduped=deduped,
            seals_reemitted=reemitted,
            damaged_bytes=journal.damaged_bytes,
            segments=len(journal.segments),
        )
