"""Sharded multi-core fleet engine: hash(device) → worker process.

:class:`ShardedStreamEngine` runs one :class:`~repro.engine.core.
StreamEngine` per worker process and routes every device to exactly one
worker by a stable hash of its id, so per-device fix order — and therefore
per-device output — is preserved no matter how batches interleave.  Fix
batches cross the process boundary as columnar ``array('d')`` payloads over
``multiprocessing`` pipes: the cheapest serialization the stdlib offers
(arrays pickle as flat byte buffers), and the worker feeds them straight
into the zero-object ``push_xyt`` path.

The output is identical to the single-process engine (the equivalence
tests pin this); what sharding buys is CPU scale-out — each worker burns
its own core.  On a single-core host the pipe hop is pure overhead, so
expect speedups only when ``workers`` ≤ available cores; the fleet
benchmark records both regimes honestly.

``compressor_factory`` must be picklable (a module-level function or a
``functools.partial`` over one), since it is shipped to the workers once at
start-up.
"""

from __future__ import annotations

import multiprocessing
import zlib
from array import array
from typing import Callable, Dict, Iterable, List, Sequence

from ..model.trajectory import CompressedTrajectory
from .core import DeviceId, Fix, StreamEngine
from .sanitize import FeedReport, SanitizePolicy

__all__ = ["ShardedStreamEngine", "shard_of"]


def shard_of(device_id: DeviceId, workers: int) -> int:
    """Stable shard index of a device (crc32, not ``hash``: the builtin is
    salted per process and would re-shard devices on every restart)."""
    if isinstance(device_id, bytes):
        payload = device_id
    else:
        payload = str(device_id).encode("utf-8", "surrogatepass")
    return zlib.crc32(payload) % workers


def _worker_main(
    conn, compressor_factory, engine_kwargs, sink_factory, shard, geodetic
) -> None:
    """Worker loop: apply columnar pushes, answer ``finish`` with results.

    On an ingestion error the worker reports once, then keeps draining
    messages (discarding further pushes) so the parent never blocks on a
    full pipe; the error is re-raised parent-side at ``finish_all``.

    When a ``sink_factory`` is configured, the worker owns its shard's
    sink: built here (sinks — a store handle, a socket — generally cannot
    cross a process boundary, but a factory can), fed every sealed stream
    through the engine, and closed after ``finish`` so buffered output is
    durable before the parent sees the results.

    With ``geodetic``, the worker hosts a :class:`~repro.engine.geodetic.
    GeoStreamEngine`: the pushed coordinate columns are degrees, each
    device's UTM zone is selected worker-side from its first fix, and the
    projection work parallelizes with the compression.  Both engines share
    the ``push_columns(ids, ts, c1, c2)`` shape, so the message protocol
    is untouched.
    """
    failure: str | None = None
    sink = None
    try:
        if sink_factory is not None:
            sink = sink_factory(shard)
        if geodetic:
            from .geodetic import GeoStreamEngine

            engine = GeoStreamEngine(
                compressor_factory, sink=sink, **engine_kwargs
            )
        else:
            engine = StreamEngine(compressor_factory, sink=sink, **engine_kwargs)
    except Exception as exc:
        failure = f"{type(exc).__name__}: {exc}"
        engine = None
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "push":
                if failure is None:
                    try:
                        engine.push_columns(
                            message[1], message[2], message[3], message[4]
                        )
                    except Exception as exc:  # reported, not fatal to the pipe
                        failure = f"{type(exc).__name__}: {exc}"
            elif tag == "finish":
                if failure is None:
                    try:
                        results = engine.finish_all()
                        reports = engine.device_feed_reports()
                        if sink is not None:
                            sink.close()
                            sink = None
                    except Exception as exc:
                        failure = f"{type(exc).__name__}: {exc}"
                if failure is not None:
                    conn.send(("error", failure))
                else:
                    # Devices are disjoint across shards, so the parent
                    # can merge both mappings with plain dict updates.
                    conn.send(("ok", results, reports))
                return
            else:
                conn.send(("error", f"unknown message tag {tag!r}"))
                return
    except EOFError:
        pass
    finally:
        if sink is not None:
            try:
                sink.close()
            except Exception:
                pass
        conn.close()


class ShardedStreamEngine:
    """Fan a fleet of device streams out over worker processes.

    Accepts the same batch shapes as :class:`StreamEngine` and produces the
    same results; ``max_devices`` / ``idle_timeout`` policies apply *per
    shard*.  Sealed streams can flow to per-shard sinks: ``sink_factory``
    (picklable, called as ``sink_factory(shard_index)`` inside each worker)
    builds one :class:`~repro.engine.sinks.Sink` per worker — e.g. one
    :class:`~repro.storage.store.StoreSink` over a per-shard store
    directory, since the store is single-writer.  With ``geodetic=True``
    each worker hosts a :class:`~repro.engine.geodetic.GeoStreamEngine`
    instead: the pushed coordinate columns are interpreted as latitude /
    longitude degrees, each device's UTM zone is selected worker-side from
    its first fix, and sealed trajectories come back zone-stamped.  With
    ``collect=False``
    the workers retain no sealed state and :meth:`finish_all` merges empty
    ledgers — the sinks are then the only output path.  One behavioural
    difference from the in-process engine: this engine is one-shot — its
    workers exit at :meth:`finish_all`, so pushing afterwards raises
    ``RuntimeError`` (the in-process engine treats ``finish_all`` as a
    checkpoint and keeps accepting batches).  Use as a context manager, or
    call :meth:`finish_all` / :meth:`close` explicitly.
    """

    def __init__(
        self,
        compressor_factory: Callable[[DeviceId], object],
        workers: int = 2,
        *,
        max_devices: int | None = None,
        idle_timeout: float | None = None,
        collect: bool = True,
        sink_factory: Callable[[int], object] | None = None,
        geodetic: bool = False,
        policy: SanitizePolicy | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        # SanitizePolicy is a frozen scalar dataclass, so it ships to the
        # workers in the start-up pickle like the compressor factory.
        engine_kwargs = {
            "max_devices": max_devices,
            "idle_timeout": idle_timeout,
            "collect": collect,
            "policy": policy,
        }
        self.workers = workers
        self._conns = []
        self._procs = []
        self._finished = False
        #: Per-device sanitation ledgers, merged from the workers at
        #: :meth:`finish_all` (empty before it, and without a policy).
        self._device_reports: Dict[DeviceId, FeedReport] = {}
        try:
            for shard in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        compressor_factory,
                        engine_kwargs,
                        sink_factory,
                        shard,
                        geodetic,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    # -- ingestion -----------------------------------------------------------

    def push_batch(self, fixes: Iterable[Fix]) -> int:
        """Route an interleaved ``(device_id, t, x, y)`` batch to the shards.

        Groups by shard directly from the tuple stream (one pass), the same
        way :meth:`StreamEngine.push_batch` groups by device.
        """
        workers = self.workers
        shards: Dict[int, tuple[list, array, array, array]] = {}
        get = shards.get
        n = 0
        for device_id, t, x, y in fixes:
            shard = shard_of(device_id, workers)
            payload = get(shard)
            if payload is None:
                payload = ([], array("d"), array("d"), array("d"))
                shards[shard] = payload
            payload[0].append(device_id)
            payload[1].append(t)
            payload[2].append(x)
            payload[3].append(y)
            n += 1
        self._send_shards(shards)
        return n

    def push_columns(
        self,
        device_ids: Sequence[DeviceId],
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> int:
        """Route a columnar interleaved batch to the shards."""
        n = len(device_ids)
        if not (len(ts) == len(xs) == len(ys) == n):
            raise ValueError(
                "column length mismatch: "
                f"ids={n}, ts={len(ts)}, xs={len(xs)}, ys={len(ys)}"
            )
        workers = self.workers
        shards: Dict[int, tuple[list, array, array, array]] = {}
        get = shards.get
        for i in range(n):
            device_id = device_ids[i]
            shard = shard_of(device_id, workers)
            payload = get(shard)
            if payload is None:
                payload = ([], array("d"), array("d"), array("d"))
                shards[shard] = payload
            payload[0].append(device_id)
            payload[1].append(ts[i])
            payload[2].append(xs[i])
            payload[3].append(ys[i])
        self._send_shards(shards)
        return n

    def _send_shards(self, shards) -> None:
        if self._finished:
            raise RuntimeError("finish_all() already called")
        for shard, (ids, ts, xs, ys) in shards.items():
            self._conns[shard].send(("push", ids, ts, xs, ys))

    # -- lifecycle -----------------------------------------------------------

    def finish_all(self) -> Dict[DeviceId, List[CompressedTrajectory]]:
        """Seal every stream on every worker and merge their results.

        Raises ``RuntimeError`` carrying the first worker-side ingestion
        error, if any occurred.
        """
        if self._finished:
            raise RuntimeError("finish_all() already called")
        self._finished = True
        merged: Dict[DeviceId, List[CompressedTrajectory]] = {}
        errors: List[str] = []
        try:
            for shard, conn in enumerate(self._conns):
                try:
                    conn.send(("finish",))
                except (BrokenPipeError, OSError) as exc:
                    errors.append(f"worker {shard} unreachable: {exc}")
            for shard, conn in enumerate(self._conns):
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as exc:
                    # Worker died without replying (e.g. an exception
                    # outside its push handler); keep the healthy shards'
                    # results and report the casualty.
                    errors.append(f"worker {shard} died before replying: {exc!r}")
                    continue
                if reply[0] == "ok":
                    # device ↛ two shards: both mappings' keys disjoint
                    merged.update(reply[1])
                    self._device_reports.update(reply[2])
                else:
                    errors.append(reply[1])
        finally:
            self.close()
        if errors:
            raise RuntimeError(f"sharded ingestion failed: {errors[0]}")
        return merged

    def feed_report(self) -> FeedReport:
        """The fleet-wide sanitation ledger, merged across every shard.

        Populated by :meth:`finish_all` (the workers own the counters
        until they seal); empty before it, and without a policy.
        """
        report = FeedReport()
        for device_report in self._device_reports.values():
            report = report.merged(device_report)
        return report

    def device_feed_reports(self) -> Dict[DeviceId, FeedReport]:
        """Per-device ledgers merged at :meth:`finish_all` (see above)."""
        return dict(self._device_reports)

    def close(self) -> None:
        """Tear the workers down (idempotent; called by ``finish_all``)."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
