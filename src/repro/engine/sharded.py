"""Sharded multi-core fleet engine: hash(device) → worker process.

:class:`ShardedStreamEngine` runs one :class:`~repro.engine.core.
StreamEngine` per worker process and routes every device to exactly one
worker by a stable hash of its id, so per-device fix order — and therefore
per-device output — is preserved no matter how batches interleave.

Two data planes, selected with ``transport=``:

``"shm"`` (the fast path)
    Per-worker ``multiprocessing.shared_memory`` ring buffers carry
    length-prefixed columnar frames (tagged device ids + raw
    little-endian ``f64`` columns, the write-ahead journal's encoding —
    see :mod:`repro.engine.transport`); only a tiny doorbell message
    ``("frame", seq, offset, length)`` crosses the control pipe, and the
    worker feeds the decoded per-device groups straight into
    ``push_grouped`` — no pickling, no worker-side regrouping.  Acks are
    pipelined: the parent keeps filling the ring up to ``ack_window``
    outstanding frames while the worker drains, and blocks only when the
    ring or the window is full.

``"pipe"`` (the parity baseline)
    Fix batches cross the process boundary as pickled columnar
    ``array('d')`` payloads over ``multiprocessing`` pipes and are
    regrouped per device worker-side.  Kept as the reference
    implementation the shm path is digest-checked against.

Both transports produce output bit-identical to the single-process
engine (the equivalence tests pin this); what sharding buys is CPU
scale-out — each worker burns its own core.  On a single-core host the
process hop is overhead, so expect speedups only when ``workers`` ≤
available cores; the fleet benchmark records both regimes honestly.

``compressor_factory`` must be picklable (a module-level function or a
``functools.partial`` over one), since it is shipped to the workers once at
start-up.

Crash supervision
-----------------

A worker process can die mid-stream (OOM kill, a segfault in a native
extension, an operator's ``kill -9``).  The engine always *detects* that
— a broken pipe or an EOF on the reply channel surfaces as a typed
:class:`ShardCrashError` naming the shard, its exit code, and the device
ids routed to it — and can optionally *survive* it: with ``journal_dir``
every worker journals its accepted batches to a per-shard
:class:`~repro.engine.journal.FixJournal`, and ``restart_workers=N``
allows up to N restarts per shard, where the parent respawns the worker,
the worker rebuilds its pre-crash state by replaying its shard journal
(``StreamEngine.recover``), and the parent re-drives the batches the
dead worker never journaled from its pending-acknowledgement buffer.
Supervised pushes are sequence-numbered and acknowledged after they are
journaled, so the buffer stays small and the re-drive is exact: no
acknowledged fix lost, none applied twice.  The shm transport reuses the
same machinery frame for frame — every frame is one journal record, the
pending buffer holds the encoded frame bytes, and a respawn resets the
ring and re-writes the unacknowledged tail — so ``journal_dir`` /
``restart_workers`` semantics are transport-independent.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import zlib
from array import array
from typing import Callable, Dict, Iterable, List, Sequence

from ..model.trajectory import CompressedTrajectory
from .core import DeviceId, Fix, StreamEngine
from .sanitize import FeedReport, SanitizePolicy
from .transport import (
    FRAME_HEADER_BYTES,
    MIN_RING_BYTES,
    RingWriter,
    TransportError,
    encode_payloads,
)

__all__ = [
    "ShardCrashError",
    "ShardedStreamEngine",
    "TransportError",
    "shard_of",
]

TRANSPORTS = ("pipe", "shm")

#: Cap on retained per-frame ack-latency samples (enough for any bench
#: run; pathological frame counts stop sampling, not ingesting).
_MAX_LATENCY_SAMPLES = 65536


class ShardCrashError(RuntimeError):
    """A shard worker died mid-ingest (and could not be restarted).

    Subclasses ``RuntimeError`` so existing ``except RuntimeError``
    handling keeps working; the message always starts with ``"sharded
    ingestion failed: "``.

    Attributes:
        shard: index of the dead worker.
        exitcode: the worker process's exit code (negative = killed by
            that signal), or ``None`` if it could not be reaped.
        device_ids: the device ids routed to that shard this run — the
            devices whose unsealed streams the crash affected.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int,
        exitcode: int | None = None,
        device_ids: tuple = (),
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.exitcode = exitcode
        self.device_ids = device_ids


def shard_of(device_id: DeviceId, workers: int) -> int:
    """Stable shard index of a device (crc32, not ``hash``: the builtin is
    salted per process and would re-shard devices on every restart)."""
    if isinstance(device_id, bytes):
        payload = device_id
    else:
        payload = str(device_id).encode("utf-8", "surrogatepass")
    return zlib.crc32(payload) % workers


def _shard_journal_path(journal_dir, shard: int) -> str:
    return os.path.join(os.fspath(journal_dir), f"shard-{shard:04d}")


class _ShardStats:
    """Per-shard transport counters (parent-side, cheap to update)."""

    __slots__ = (
        "frames",
        "fixes",
        "bytes",
        "acks",
        "ring_waits",
        "window_waits",
        "ack_wait_seconds",
        "max_in_flight",
        "ack_lat",
    )

    def __init__(self) -> None:
        self.frames = 0
        self.fixes = 0
        self.bytes = 0
        self.acks = 0
        self.ring_waits = 0
        self.window_waits = 0
        self.ack_wait_seconds = 0.0
        self.max_in_flight = 0
        self.ack_lat: List[float] = []


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    return sorted_values[int(q * (len(sorted_values) - 1))]


def _worker_main(
    conn,
    compressor_factory,
    engine_kwargs,
    sink_factory,
    shard,
    geodetic,
    transport="pipe",
    ring_name=None,
    journal_dir=None,
    journal_fsync=False,
    supervised=False,
    recover=False,
) -> None:
    """Worker loop: apply columnar pushes, answer ``finish`` with results.

    On an ingestion error the worker reports once, then keeps draining
    messages (discarding further pushes) so the parent never blocks on a
    full pipe; the error is re-raised parent-side at ``finish_all``.

    When a ``sink_factory`` is configured, the worker owns its shard's
    sink: built here (sinks — a store handle, a socket — generally cannot
    cross a process boundary, but a factory can), fed every sealed stream
    through the engine, and closed after ``finish`` so buffered output is
    durable before the parent sees the results.

    With ``geodetic``, the worker hosts a :class:`~repro.engine.geodetic.
    GeoStreamEngine`: the pushed coordinate columns are degrees, each
    device's UTM zone is selected worker-side from its first fix, and the
    projection work parallelizes with the compression.  Both engines share
    the ``push_columns`` / ``push_grouped`` shapes, so the message
    protocol is engine-agnostic.

    Message tags: ``push`` carries pickled columns (pipe transport),
    ``frame`` names a region of the shared ring (shm transport) that is
    decoded in place and fed through ``push_grouped``; every ``frame`` is
    acknowledged with ``("ack", seq)`` once applied (after its journal
    frame landed, when journaling) — the ack releases the parent's ring
    space and, under supervision, prunes the pending re-drive buffer.

    With ``journal_dir`` the worker's engine journals into its own
    per-shard directory.  ``supervised`` switches the protocol to
    sequence-numbered pushes: the worker opens with ``("ready",
    journal_seq)`` (after replaying the shard journal when ``recover``),
    and acknowledges every push once it is journaled — the parent's
    restart logic prunes its pending buffer on those acks and re-drives
    the unacknowledged tail after a respawn.
    """
    failure: str | None = None
    sink = None
    engine = None
    reader = None
    try:
        if sink_factory is not None:
            sink = sink_factory(shard)
        if geodetic:
            from .geodetic import GeoStreamEngine as engine_cls
        else:
            engine_cls = StreamEngine
        if journal_dir is not None:
            journal_path = _shard_journal_path(journal_dir, shard)
            if recover:
                # The shard's own durable store (when its sink is one)
                # closes the emit-before-checkpoint window during replay.
                dedupe = (
                    getattr(sink, "store", None)
                    if getattr(sink, "durable", False)
                    else None
                )
                engine = engine_cls.recover(
                    journal_path,
                    compressor_factory,
                    sink=sink,
                    dedupe_store=dedupe,
                    journal_fsync=journal_fsync,
                    **engine_kwargs,
                )
            else:
                engine = engine_cls(
                    compressor_factory,
                    sink=sink,
                    journal=journal_path,
                    journal_fsync=journal_fsync,
                    **engine_kwargs,
                )
        else:
            engine = engine_cls(compressor_factory, sink=sink, **engine_kwargs)
        if transport == "shm":
            from .transport import RingReader

            reader = RingReader(ring_name)
    except Exception as exc:
        failure = f"{type(exc).__name__}: {exc}"
        engine = None
    try:
        if supervised:
            base = 0
            if engine is not None and engine.journal is not None:
                base = engine.journal.last_seq
            conn.send(("ready", base))
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "push":
                if supervised:
                    seq, ids, ts, xs, ys = message[1:]
                else:
                    seq, (ids, ts, xs, ys) = None, message[1:]
                if failure is None:
                    try:
                        engine.push_columns(ids, ts, xs, ys)
                    except Exception as exc:  # reported, not fatal to the pipe
                        failure = f"{type(exc).__name__}: {exc}"
                if supervised:
                    # Ack after the journal frame landed (the engine
                    # journals write-ahead, so even a batch that raised
                    # mid-ingest is journaled before the error).
                    conn.send(("ack", seq))
            elif tag == "frame":
                seq, offset, length = message[1], message[2], message[3]
                if failure is None:
                    try:
                        groups = reader.read(seq, offset, length)
                        engine.push_grouped(groups)
                    except Exception as exc:
                        failure = f"{type(exc).__name__}: {exc}"
                # Always acked — even after a failure the parent's ring
                # accounting needs the space back (the drain contract the
                # pipe transport meets by consuming pushes).
                conn.send(("ack", seq))
            elif tag == "finish":
                if failure is None:
                    try:
                        results = engine.finish_all()
                        reports = engine.device_feed_reports()
                        if sink is not None:
                            sink.close()
                            sink = None
                    except Exception as exc:
                        failure = f"{type(exc).__name__}: {exc}"
                if failure is not None:
                    conn.send(("error", failure))
                else:
                    # Devices are disjoint across shards, so the parent
                    # can merge both mappings with plain dict updates.
                    conn.send(("ok", results, reports))
                return
            else:
                conn.send(("error", f"unknown message tag {tag!r}"))
                return
    except EOFError:
        pass
    finally:
        if reader is not None:
            reader.close()
        if sink is not None:
            try:
                sink.close()
            except Exception:
                pass
        conn.close()


class ShardedStreamEngine:
    """Fan a fleet of device streams out over worker processes.

    Accepts the same batch shapes as :class:`StreamEngine` and produces the
    same results; ``max_devices`` / ``idle_timeout`` policies apply *per
    shard*.  Sealed streams can flow to per-shard sinks: ``sink_factory``
    (picklable, called as ``sink_factory(shard_index)`` inside each worker)
    builds one :class:`~repro.engine.sinks.Sink` per worker — e.g. one
    :class:`~repro.storage.store.StoreSink` over a per-shard store
    directory, since the store is single-writer.  With ``geodetic=True``
    each worker hosts a :class:`~repro.engine.geodetic.GeoStreamEngine`
    instead: the pushed coordinate columns are interpreted as latitude /
    longitude degrees, each device's UTM zone is selected worker-side from
    its first fix, and sealed trajectories come back zone-stamped.  With
    ``collect=False``
    the workers retain no sealed state and :meth:`finish_all` merges empty
    ledgers — the sinks are then the only output path.  One behavioural
    difference from the in-process engine: this engine is one-shot — its
    workers exit at :meth:`finish_all`, so pushing afterwards raises
    ``RuntimeError`` (the in-process engine treats ``finish_all`` as a
    checkpoint and keeps accepting batches).  Use as a context manager, or
    call :meth:`finish_all` / :meth:`close` explicitly.

    ``transport`` selects the data plane: ``"shm"`` ships frames through
    per-worker shared-memory rings of ``ring_bytes`` each with up to
    ``ack_window`` frames in flight per shard (see the module docstring);
    ``"pipe"`` (default) pickles columns over the control pipe.  The shm
    transport requires str/int/bytes device ids — the same contract the
    write-ahead journal imposes — and raises :class:`TransportError` for
    anything else.  Output is bit-identical across transports; one caveat:
    a single batch larger than ``ring_bytes`` is split into several
    frames, and each frame is its own engine push, which batch-boundary
    policies (``idle_timeout``) observe.  Size the ring above the batch
    size (the defaults are comfortable) if that matters.

    ``journal_dir`` makes every worker journal its accepted batches into
    ``journal_dir/shard-%04d`` (see :class:`~repro.engine.journal.
    FixJournal`); ``journal_fsync`` extends the durability to power loss.
    ``restart_workers=N`` additionally *supervises* the shards: a worker
    that dies mid-ingest is respawned (up to N times per shard), replays
    its shard journal to rebuild its pre-crash state, and the parent
    re-drives the batches the dead worker never acknowledged.  A crash
    past the restart budget — or any crash when supervision is off —
    raises :class:`ShardCrashError` naming the shard, its exit code, and
    the devices routed to it.
    """

    def __init__(
        self,
        compressor_factory: Callable[[DeviceId], object],
        workers: int = 2,
        *,
        max_devices: int | None = None,
        idle_timeout: float | None = None,
        collect: bool = True,
        sink_factory: Callable[[int], object] | None = None,
        geodetic: bool = False,
        policy: SanitizePolicy | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
        journal_dir: str | os.PathLike | None = None,
        journal_fsync: bool = False,
        restart_workers: int = 0,
        transport: str = "pipe",
        ring_bytes: int = 4 << 20,
        ack_window: int = 32,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if restart_workers < 0:
            raise ValueError(
                f"restart_workers must be >= 0, got {restart_workers!r}"
            )
        if restart_workers and journal_dir is None:
            raise ValueError(
                "restart_workers requires journal_dir: a respawned worker "
                "rebuilds its state from its shard journal"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if transport == "shm":
            if ring_bytes < MIN_RING_BYTES:
                raise ValueError(
                    f"ring_bytes must be >= {MIN_RING_BYTES}, got {ring_bytes!r}"
                )
            if ack_window < 1:
                raise ValueError(
                    f"ack_window must be >= 1, got {ack_window!r}"
                )
        ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        # SanitizePolicy is a frozen scalar dataclass, so it ships to the
        # workers in the start-up pickle like the compressor factory.
        engine_kwargs = {
            "max_devices": max_devices,
            "idle_timeout": idle_timeout,
            "collect": collect,
            "policy": policy,
        }
        self.workers = workers
        self.transport = transport
        self._ack_window = ack_window
        self._conns = []
        self._procs = []
        self._finished = False
        #: Per-device sanitation ledgers, merged from the workers at
        #: :meth:`finish_all` (empty before it, and without a policy).
        self._device_reports: Dict[DeviceId, FeedReport] = {}
        self._supervised = restart_workers > 0
        self._restart_budget = restart_workers
        self._restarts = [0] * workers
        #: Everything a respawn needs to rebuild a worker.
        self._spawn_args = (
            compressor_factory,
            engine_kwargs,
            sink_factory,
            geodetic,
            journal_dir,
            journal_fsync,
        )
        self._ctx = ctx
        #: Device ids routed to each shard this run (the blast radius a
        #: :class:`ShardCrashError` reports).
        self._shard_devices: List[set] = [set() for _ in range(workers)]
        #: device id → shard index, filled on first sight: crc32 hashing
        #: (and, for shm, id encoding) happens once per device, not once
        #: per batch.  Bounded by the number of distinct devices pushed.
        self._route: Dict[DeviceId, int] = {}
        self._id_cache: Dict[DeviceId, bytes] | None = (
            {} if transport == "shm" else None
        )
        #: Supervised mode: per-shard batch sequence, unacknowledged
        #: batches (seq → columns for pipe, seq → frame bytes for shm,
        #: insertion-ordered), and the journal seq each worker started
        #: from (maps parent seq ↔ journal seq).  The shm transport
        #: sequences frames in both modes (acks drive its ring
        #: accounting); the pending buffer still exists only under
        #: supervision.
        self._seq = [0] * workers
        self._pending: List[Dict[int, tuple]] | None = (
            [{} for _ in range(workers)] if self._supervised else None
        )
        self._shard_base = [0] * workers
        self._rings: List[RingWriter | None] | None = None
        self._stats = [_ShardStats() for _ in range(workers)]
        self._send_times: List[Dict[int, float]] = [
            {} for _ in range(workers)
        ]
        try:
            if transport == "shm":
                self._rings = [None] * workers
                for shard in range(workers):
                    self._rings[shard] = RingWriter(ring_bytes)
            for shard in range(workers):
                self._conns.append(None)
                self._procs.append(None)
                self._spawn_worker(shard, recover=False)
            if self._supervised:
                for shard in range(workers):
                    self._shard_base[shard] = self._handshake(shard)
        except Exception:
            self.close()
            raise

    def _spawn_worker(self, shard: int, *, recover: bool) -> None:
        (
            compressor_factory,
            engine_kwargs,
            sink_factory,
            geodetic,
            journal_dir,
            journal_fsync,
        ) = self._spawn_args
        ring_name = None
        if self._rings is not None and self._rings[shard] is not None:
            ring_name = self._rings[shard].name
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                compressor_factory,
                engine_kwargs,
                sink_factory,
                shard,
                geodetic,
                self.transport,
                ring_name,
                journal_dir,
                journal_fsync,
                self._supervised,
                recover,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = proc

    def _handshake(self, shard: int) -> int:
        """Receive a supervised worker's ``("ready", journal_seq)``."""
        try:
            tag, base = self._conns[shard].recv()
        except (EOFError, OSError) as exc:
            raise self._crash_error(shard, cause=exc) from exc
        if tag != "ready":
            # A garbled handshake means the worker (or its pipe) cannot be
            # trusted — same blast radius as a crash.
            raise ShardCrashError(
                f"sharded ingestion failed: worker {shard} sent "
                f"{tag!r} instead of the ready handshake",
                shard=shard,
                device_ids=tuple(sorted(self._shard_devices[shard], key=str)),
            )
        return base

    def _crash_error(self, shard: int, cause=None) -> ShardCrashError:
        proc = self._procs[shard]
        exitcode = None
        if proc is not None:
            proc.join(timeout=5.0)
            exitcode = proc.exitcode
        devices = sorted(self._shard_devices[shard], key=str)
        sample = ", ".join(repr(d) for d in devices[:8])
        if len(devices) > 8:
            sample += f", ... ({len(devices) - 8} more)"
        detail = f" after {cause!r}" if cause is not None else ""
        return ShardCrashError(
            f"sharded ingestion failed: worker {shard} died "
            f"(exitcode {exitcode}){detail}; "
            f"{len(devices)} device(s) routed to it: [{sample}]",
            shard=shard,
            exitcode=exitcode,
            device_ids=tuple(devices),
        )

    # -- ingestion -----------------------------------------------------------

    def push_batch(self, fixes: Iterable[Fix]) -> int:
        """Route an interleaved ``(device_id, t, x, y)`` batch to the shards.

        Groups by shard directly from the tuple stream (one pass), the same
        way :meth:`StreamEngine.push_batch` groups by device.
        """
        workers = self.workers
        route = self._route
        if self.transport == "shm":
            shards: Dict[int, Dict[DeviceId, tuple]] = {}
            groups: Dict[DeviceId, tuple] = {}
            n = 0
            for device_id, t, x, y in fixes:
                cols = groups.get(device_id)
                if cols is None:
                    shard = route.get(device_id)
                    if shard is None:
                        shard = route[device_id] = shard_of(device_id, workers)
                    cols = groups[device_id] = (
                        array("d"),
                        array("d"),
                        array("d"),
                    )
                    shards.setdefault(shard, {})[device_id] = cols
                    self._shard_devices[shard].add(device_id)
                cols[0].append(t)
                cols[1].append(x)
                cols[2].append(y)
                n += 1
            self._send_frames(shards)
            return n
        shards_cols: Dict[int, tuple[list, array, array, array]] = {}
        get = shards_cols.get
        n = 0
        for device_id, t, x, y in fixes:
            shard = route.get(device_id)
            if shard is None:
                shard = route[device_id] = shard_of(device_id, workers)
            payload = get(shard)
            if payload is None:
                payload = ([], array("d"), array("d"), array("d"))
                shards_cols[shard] = payload
            payload[0].append(device_id)
            payload[1].append(t)
            payload[2].append(x)
            payload[3].append(y)
            n += 1
        self._send_shards(shards_cols)
        return n

    def push_columns(
        self,
        device_ids: Sequence[DeviceId],
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> int:
        """Route a columnar interleaved batch to the shards."""
        n = len(device_ids)
        if not (len(ts) == len(xs) == len(ys) == n):
            raise ValueError(
                "column length mismatch: "
                f"ids={n}, ts={len(ts)}, xs={len(xs)}, ys={len(ys)}"
            )
        workers = self.workers
        route = self._route
        if self.transport == "shm":
            # Group per device up front (first-appearance order — the same
            # order the workers' own regrouping would produce), so the
            # frame encoder writes columns straight into the ring and the
            # worker skips regrouping entirely.
            shards: Dict[int, Dict[DeviceId, tuple]] = {}
            groups: Dict[DeviceId, tuple] = {}
            for i in range(n):
                device_id = device_ids[i]
                cols = groups.get(device_id)
                if cols is None:
                    shard = route.get(device_id)
                    if shard is None:
                        shard = route[device_id] = shard_of(device_id, workers)
                    cols = groups[device_id] = (
                        array("d"),
                        array("d"),
                        array("d"),
                    )
                    shards.setdefault(shard, {})[device_id] = cols
                    self._shard_devices[shard].add(device_id)
                cols[0].append(ts[i])
                cols[1].append(xs[i])
                cols[2].append(ys[i])
            self._send_frames(shards)
            return n
        shards_cols: Dict[int, tuple[list, array, array, array]] = {}
        get = shards_cols.get
        for i in range(n):
            device_id = device_ids[i]
            shard = route.get(device_id)
            if shard is None:
                shard = route[device_id] = shard_of(device_id, workers)
            payload = get(shard)
            if payload is None:
                payload = ([], array("d"), array("d"), array("d"))
                shards_cols[shard] = payload
            payload[0].append(device_id)
            payload[1].append(ts[i])
            payload[2].append(xs[i])
            payload[3].append(ys[i])
        self._send_shards(shards_cols)
        return n

    def _ensure_not_finished(self) -> None:
        if self._finished:
            # Use-after-finish is caller lifecycle misuse (a bug in the
            # calling code), not a data-plane failure a caller should
            # route on — a deliberately untyped error.
            # repro: ignore[RA04] lifecycle misuse by the caller, not a routable data-plane failure
            raise RuntimeError("finish_all() already called")

    # -- pipe data plane -----------------------------------------------------

    def _send_shards(self, shards) -> None:
        self._ensure_not_finished()
        if self._supervised:
            # Drain every shard's acks first so the reply pipes never
            # back up no matter how batches distribute across shards.
            for shard in range(self.workers):
                self._drain_queued_acks(shard)
        for shard, (ids, ts, xs, ys) in shards.items():
            self._shard_devices[shard].update(ids)
            stats = self._stats[shard]
            stats.frames += 1
            stats.fixes += len(ids)
            if self._supervised:
                seq = self._seq[shard] + 1
                self._seq[shard] = seq
                self._pending[shard][seq] = (ids, ts, xs, ys)
                self._send_times[shard][seq] = time.perf_counter()
                try:
                    self._conns[shard].send(("push", seq, ids, ts, xs, ys))
                except (BrokenPipeError, OSError):
                    # The batch is already in the pending buffer; the
                    # restart re-drives it with everything else unacked.
                    self._restart_shard(shard)
            else:
                try:
                    self._conns[shard].send(("push", ids, ts, xs, ys))
                except (BrokenPipeError, OSError) as exc:
                    raise self._crash_error(shard, cause=exc) from exc

    # -- shm data plane ------------------------------------------------------

    def _send_frames(self, shards: Dict[int, Dict[DeviceId, tuple]]) -> None:
        self._ensure_not_finished()
        for shard in range(self.workers):
            self._drain_queued_acks(shard)
        for shard, groups in shards.items():
            stats = self._stats[shard]
            ring = self._rings[shard]
            payloads = encode_payloads(
                groups, ring.max_payload, self._id_cache
            )
            # Counted only after the whole batch encoded — a rejected id
            # (TransportError) ships nothing, so it must account nothing.
            stats.fixes += sum(len(cols[0]) for cols in groups.values())
            for payload in payloads:
                seq = self._seq[shard] + 1
                self._seq[shard] = seq
                if self._pending is not None:
                    self._pending[shard][seq] = payload
                self._write_and_doorbell(shard, seq, payload)

    def _write_and_doorbell(self, shard: int, seq: int, payload) -> None:
        """Write one frame into the shard's ring (blocking on acks for ring
        or window space) and ring the doorbell.

        If a supervised restart fires while waiting, the restart has
        already re-driven every pending frame — this one included — so
        the method returns without shipping a duplicate.
        """
        ring = self._rings[shard]
        stats = self._stats[shard]
        epoch = self._restarts[shard]
        while True:
            if ring.in_flight >= self._ack_window:
                stats.window_waits += 1
                self._await_ack(shard)
            else:
                offset = ring.try_write(seq, payload)
                if offset is not None:
                    break
                stats.ring_waits += 1
                self._await_ack(shard)
            if self._restarts[shard] != epoch:
                return
        stats.frames += 1
        stats.bytes += FRAME_HEADER_BYTES + len(payload)
        if ring.in_flight > stats.max_in_flight:
            stats.max_in_flight = ring.in_flight
        self._send_times[shard][seq] = time.perf_counter()
        try:
            self._conns[shard].send(
                ("frame", seq, offset, FRAME_HEADER_BYTES + len(payload))
            )
        except (BrokenPipeError, OSError):
            self._restart_shard(shard)

    def _await_ack(self, shard: int) -> None:
        """Block until the shard acknowledges a frame (or dies, in which
        case the supervised path restarts it and the unsupervised path
        raises :class:`ShardCrashError`)."""
        conn = self._conns[shard]
        t0 = time.perf_counter()
        try:
            message = conn.recv()
        except (EOFError, OSError):
            self._restart_shard(shard)
            return
        self._stats[shard].ack_wait_seconds += time.perf_counter() - t0
        if message[0] == "ack":
            self._on_ack(shard, message[1])

    # -- shared ack plumbing -------------------------------------------------

    def _on_ack(self, shard: int, seq: int) -> None:
        """One ack: free ring space, prune pending, record latency."""
        stats = self._stats[shard]
        stats.acks += 1
        if self._rings is not None and self._rings[shard] is not None:
            self._rings[shard].release(seq)
        if self._pending is not None:
            self._pending[shard].pop(seq, None)
        sent = self._send_times[shard].pop(seq, None)
        if sent is not None and len(stats.ack_lat) < _MAX_LATENCY_SAMPLES:
            stats.ack_lat.append(time.perf_counter() - sent)

    def _drain_queued_acks(self, shard: int) -> None:
        """Apply any queued acks without blocking (no-op for the
        unsupervised pipe transport, which never acks)."""
        if not (self._supervised or self.transport == "shm"):
            return
        conn = self._conns[shard]
        try:
            while conn.poll(0):
                message = conn.recv()
                if message[0] == "ack":
                    self._on_ack(shard, message[1])
        except (EOFError, OSError):
            self._restart_shard(shard)

    def _restart_shard(self, shard: int) -> None:
        """Respawn a dead worker and re-drive its unacknowledged batches.

        Raises the :class:`ShardCrashError` instead when supervision is
        off or the shard's restart budget is spent.
        """
        proc = self._procs[shard]
        if proc is not None and proc.is_alive():
            # The pipe broke but the process lives (wedged worker): a
            # restart would fork a competitor for its journal and sink.
            proc.terminate()
        if not self._supervised or self._restarts[shard] >= self._restart_budget:
            raise self._crash_error(shard)
        if proc is not None:
            proc.join(timeout=5.0)  # reap the corpse before respawning
        self._restarts[shard] += 1
        try:
            self._conns[shard].close()
        except OSError:
            pass
        if self._rings is not None and self._rings[shard] is not None:
            # The ring's unacked contents died with the worker; pending
            # frames are re-written below, so the ring restarts empty.
            self._rings[shard].reset()
            self._send_times[shard].clear()
        self._spawn_worker(shard, recover=True)
        journal_seq = self._handshake(shard)
        delivered = journal_seq - self._shard_base[shard]
        pending = self._pending[shard]
        for seq in [s for s in pending if s <= delivered]:
            del pending[seq]
        if self.transport == "shm":
            epoch = self._restarts[shard]
            for seq, payload in sorted(pending.items()):
                self._write_and_doorbell(shard, seq, payload)
                if self._restarts[shard] != epoch:
                    return  # a nested restart re-drove the rest
        else:
            for seq, (ids, ts, xs, ys) in sorted(pending.items()):
                try:
                    self._conns[shard].send(("push", seq, ids, ts, xs, ys))
                except (BrokenPipeError, OSError):
                    return self._restart_shard(shard)

    # -- lifecycle -----------------------------------------------------------

    def finish_all(self) -> Dict[DeviceId, List[CompressedTrajectory]]:
        """Seal every stream on every worker and merge their results.

        Raises :class:`ShardCrashError` if a worker died (and, under
        supervision, could not be restarted within budget), or a plain
        ``RuntimeError`` carrying the first worker-side ingestion error.
        Healthy shards' results are still merged before the raise is
        decided, and the workers are torn down either way.
        """
        self._ensure_not_finished()
        self._finished = True
        merged: Dict[DeviceId, List[CompressedTrajectory]] = {}
        errors: List[str] = []
        crash: ShardCrashError | None = None
        try:
            for shard in range(self.workers):
                try:
                    reply = self._finish_shard(shard)
                except ShardCrashError as exc:
                    # Keep the healthy shards' results and report the
                    # casualty after every shard had its chance.
                    if crash is None:
                        crash = exc
                    continue
                if reply[0] == "ok":
                    # device ↛ two shards: both mappings' keys disjoint
                    merged.update(reply[1])
                    self._device_reports.update(reply[2])
                else:
                    errors.append(reply[1])
        finally:
            self.close()
        if crash is not None:
            raise crash
        if errors:
            # The worker is alive and drained — this is not a crash, and
            # the docstring promises a *plain* RuntimeError for worker-side
            # ingestion errors (the message carries the worker's own typed
            # error text).  ShardCrashError would claim a dead shard.
            # repro: ignore[RA04] documented plain-RuntimeError contract for live-worker ingest errors
            raise RuntimeError(f"sharded ingestion failed: {errors[0]}")
        return merged

    def _finish_shard(self, shard: int):
        """Send ``finish`` to one shard and return its final reply,
        restarting the worker (within budget) if it dies on the way."""
        while True:
            conn = self._conns[shard]
            try:
                conn.send(("finish",))
                while True:
                    reply = conn.recv()
                    if reply[0] == "ack":
                        self._on_ack(shard, reply[1])
                        continue
                    return reply
            except (BrokenPipeError, EOFError, OSError):
                # Raises ShardCrashError when restarting is not allowed;
                # otherwise the worker is rebuilt from its journal and
                # the loop re-sends the finish.
                self._restart_shard(shard)

    def transport_stats(self) -> List[dict]:
        """Per-shard data-plane counters (valid after :meth:`finish_all`,
        and live during ingest).

        Every transport reports ``frames`` (messages sent), ``fixes``
        routed, ``utilization`` (this shard's share of all routed fixes —
        the load-balance view), ``restarts``, and — whenever acks flow
        (shm always, pipe under supervision) — ``acks`` plus
        send-to-ack latency percentiles in microseconds.  The shm
        transport adds ring accounting: ``bytes`` through the ring,
        ``max_in_flight`` frames, and how often the parent blocked on a
        full ring (``ring_waits``) or an exhausted ack window
        (``window_waits``), with the total blocked wall in
        ``ack_wait_seconds``.
        """
        total_fixes = sum(s.fixes for s in self._stats)
        out = []
        for shard, s in enumerate(self._stats):
            lat = sorted(s.ack_lat)
            out.append(
                {
                    "shard": shard,
                    "transport": self.transport,
                    "frames": s.frames,
                    "fixes": s.fixes,
                    "bytes": s.bytes,
                    "acks": s.acks,
                    "max_in_flight": s.max_in_flight,
                    "ring_waits": s.ring_waits,
                    "window_waits": s.window_waits,
                    "ack_wait_seconds": round(s.ack_wait_seconds, 6),
                    "restarts": self._restarts[shard],
                    "utilization": (
                        round(s.fixes / total_fixes, 4) if total_fixes else 0.0
                    ),
                    "ack_us_p50": round(_percentile(lat, 0.5) * 1e6, 1),
                    "ack_us_p99": round(_percentile(lat, 0.99) * 1e6, 1),
                }
            )
        return out

    def feed_report(self) -> FeedReport:
        """The fleet-wide sanitation ledger, merged across every shard.

        Populated by :meth:`finish_all` (the workers own the counters
        until they seal); empty before it, and without a policy.
        """
        report = FeedReport()
        for device_report in self._device_reports.values():
            report = report.merged(device_report)
        return report

    def device_feed_reports(self) -> Dict[DeviceId, FeedReport]:
        """Per-device ledgers merged at :meth:`finish_all` (see above)."""
        return dict(self._device_reports)

    def close(self) -> None:
        """Tear the workers down (idempotent; called by ``finish_all``)."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        self._conns = []
        self._procs = []
        if self._rings is not None:
            for ring in self._rings:
                if ring is not None:
                    ring.close(unlink=True)
            self._rings = None

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
