"""Shared-memory ring transport for the sharded engine's data plane.

The pipe transport pickles every columnar batch through a
``multiprocessing.Pipe``; this module is the zero-copy alternative: the
parent writes length-prefixed columnar frames straight into a per-worker
``multiprocessing.shared_memory`` ring buffer, and only a tiny doorbell
message ``("frame", seq, offset, length)`` crosses the control pipe.  The
worker decodes the frame in place (one copy from the ring into ``array``
columns, no pickle) and replies ``("ack", seq)``, which both releases the
ring space parent-side and — under supervision — prunes the pending
re-drive buffer.

Frame layout in the ring (all integers little-endian)::

    u32       payload length
    u32       frame seq (low 32 bits; the doorbell carries the full seq)
    payload:
        uvarint  n_groups
        per group:
            tagged device id    (the journal's str/int/bytes encoding)
            uvarint  n_fixes
            n_fixes × f64  ts
            n_fixes × f64  xs
            n_fixes × f64  ys

The payload reuses the write-ahead journal's framing idioms byte for byte
(:func:`~repro.engine.journal._append_device_id` for ids, raw
little-endian ``f64`` columns), so the same str/int/bytes device-id
contract applies — a device id that cannot be journaled cannot cross the
shm transport either.

Space accounting is single-producer/single-consumer and entirely
parent-side: the :class:`RingWriter` keeps an in-flight deque of
``(seq, offset, length)`` and frees the head on each in-order ack, so no
cross-process atomics or wrap markers are needed — the worker is told
explicit offsets.  A frame that will not fit the contiguous tail wraps to
offset 0 (the tail gap is reclaimed when the frames before it ack);
batches larger than the ring are split into multiple frames by
:func:`encode_payloads`.
"""

from __future__ import annotations

import struct
import sys
from array import array
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from ..storage.codec import _append_uvarint, _read_uvarint
from .journal import _append_device_id, _pack_doubles, _read_device_id

__all__ = [
    "FRAME_HEADER_BYTES",
    "RingReader",
    "RingWriter",
    "TransportError",
    "attach_shared_memory",
    "decode_payload",
    "encode_payloads",
]

_FRAME_HEADER = struct.Struct("<II")  # payload length, seq (low 32 bits)
FRAME_HEADER_BYTES = _FRAME_HEADER.size

#: Smallest useful ring: one header + a one-fix frame with a long id,
#: with room to breathe.  Tiny rings are still allowed above this floor
#: so backpressure tests can force wraparound on purpose.
MIN_RING_BYTES = 256


class TransportError(RuntimeError):
    """The shm transport's protocol was violated (an out-of-order ack, a
    frame header that disagrees with its doorbell, a device id that
    cannot cross the ring)."""


def attach_shared_memory(name: str):
    """Attach to an existing shared-memory segment *without* registering
    it with this process's resource tracker.

    CPython registers a segment with the resource tracker on *attach* as
    well as on create (bpo-38119), and the tracker process is shared with
    the parent — so a plain worker-side attach would add, and its cleanup
    would later remove, the very entry the owner's unlink relies on,
    leaking (or double-freeing) ``/dev/shm`` segments.  The owner of the
    segment manages its lifetime; every non-owning attach in this repo
    must go through this helper (enforced by ``repro.analysis`` rule
    RA06).
    """
    from multiprocessing import resource_tracker, shared_memory

    real_register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register


def _read_column(view, pos: int, n: int) -> Tuple[array, int]:
    end = pos + 8 * n
    if end > len(view):
        raise TransportError("truncated float column in shm frame")
    col = array("d")
    col.frombytes(view[pos:end])
    if sys.byteorder == "big":
        col.byteswap()
    return col, end


def _group_blobs(device_id, ts, xs, ys, budget: int, id_cache) -> Iterable[Tuple[bytes, int]]:
    """Encode one device's columns as ``(blob, n_fixes)`` chunks, splitting
    the columns so every blob fits ``budget`` bytes."""
    id_blob = id_cache.get(device_id) if id_cache is not None else None
    if id_blob is None:
        buf = bytearray()
        try:
            _append_device_id(buf, device_id)
        except Exception as exc:
            raise TransportError(
                f"device id {device_id!r} cannot cross the shm transport "
                f"({exc}); use transport='pipe' for exotic id types"
            ) from exc
        id_blob = bytes(buf)
        if id_cache is not None:
            id_cache[device_id] = id_blob
    n = len(ts)
    # id + uvarint count + 24 bytes per fix must fit the budget.
    max_fixes = max(1, (budget - len(id_blob) - 5) // 24)
    start = 0
    while start < n:
        stop = min(n, start + max_fixes)
        blob = bytearray(id_blob)
        _append_uvarint(blob, stop - start)
        blob += _pack_doubles(ts[start:stop])
        blob += _pack_doubles(xs[start:stop])
        blob += _pack_doubles(ys[start:stop])
        yield bytes(blob), stop - start
        start = stop


def encode_payloads(
    groups: Dict[object, tuple],
    max_payload: int,
    id_cache: Optional[Dict[object, bytes]] = None,
) -> List[bytes]:
    """Encode per-device ``(ts, xs, ys)`` groups into one or more frame
    payloads, each at most ``max_payload`` bytes.

    The common case is one payload per call; a batch larger than the ring
    splits greedily at group (and, for an oversized single device, column
    slice) boundaries.  Group order — and therefore per-device fix order —
    is preserved across the split, so a multi-frame batch replays as the
    same fixes in the same order (each frame is its own engine push, which
    only matters to batch-boundary policies like ``idle_timeout``).
    ``id_cache`` maps device ids to their encoded blobs so steady-state
    batches skip re-encoding every id.
    """
    if max_payload < MIN_RING_BYTES - FRAME_HEADER_BYTES:
        raise ValueError(
            f"max_payload must be >= {MIN_RING_BYTES - FRAME_HEADER_BYTES}, "
            f"got {max_payload}"
        )
    budget = max_payload - 5  # room for the n_groups uvarint
    payloads: List[bytes] = []
    blobs: List[bytes] = []
    size = 0

    def flush() -> None:
        nonlocal blobs, size
        if not blobs:
            return
        payload = bytearray()
        _append_uvarint(payload, len(blobs))
        for blob in blobs:
            payload += blob
        payloads.append(bytes(payload))
        blobs = []
        size = 0

    for device_id, (ts, xs, ys) in groups.items():
        for blob, _ in _group_blobs(device_id, ts, xs, ys, budget, id_cache):
            if size and size + len(blob) > budget:
                flush()
            blobs.append(blob)
            size += len(blob)
    flush()
    return payloads


def decode_payload(view) -> Dict[object, tuple]:
    """Decode one frame payload back into per-device column groups.

    ``view`` is a memoryview over exactly the payload bytes (straight off
    the shared ring — the only copy is into the returned ``array``
    columns).  A device split across blobs within one payload is merged
    back in order.
    """
    pos = 0
    n_groups, pos = _read_uvarint(view, pos)
    groups: Dict[object, tuple] = {}
    for _ in range(n_groups):
        device_id, pos = _read_device_id(view, pos)
        n, pos = _read_uvarint(view, pos)
        ts, pos = _read_column(view, pos, n)
        xs, pos = _read_column(view, pos, n)
        ys, pos = _read_column(view, pos, n)
        existing = groups.get(device_id)
        if existing is None:
            groups[device_id] = (ts, xs, ys)
        else:
            existing[0].extend(ts)
            existing[1].extend(xs)
            existing[2].extend(ys)
    if pos != len(view):
        raise TransportError(
            f"shm frame has {len(view) - pos} trailing byte(s)"
        )
    return groups


class RingWriter:
    """Parent-side shared-memory ring: write frames, free them on acks.

    Frames are freed strictly in write order (the worker processes
    doorbells in pipe order and acks each one), so the live region is a
    contiguous ``[head, tail)`` span — possibly wrapped — and free-space
    checks need only the head frame's offset and the write position.
    """

    def __init__(self, capacity: int) -> None:
        from multiprocessing import shared_memory

        if capacity < MIN_RING_BYTES:
            raise ValueError(
                f"ring capacity must be >= {MIN_RING_BYTES}, got {capacity}"
            )
        self._shm = shared_memory.SharedMemory(create=True, size=capacity)
        # SharedMemory may round up to a page; honour what we asked for so
        # tiny test rings genuinely force wraparound.
        self.capacity = capacity
        self._write_pos = 0
        self._in_flight: deque = deque()  # (seq, offset, total_length)
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def max_payload(self) -> int:
        return self.capacity - FRAME_HEADER_BYTES

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def _fit(self, total: int) -> Optional[int]:
        if total > self.capacity:
            return None
        if not self._in_flight:
            self._write_pos = 0
            return 0
        head = self._in_flight[0][1]
        tail = self._write_pos
        if tail > head:
            if self.capacity - tail >= total:
                return tail
            if head >= total:  # wrap; the tail gap frees with the head
                return 0
            return None
        if tail < head:
            return tail if head - tail >= total else None
        return None  # tail == head with frames in flight: ring full

    def try_write(self, seq: int, payload: bytes) -> Optional[int]:
        """Write header + payload at the next fitting offset; ``None`` when
        the ring cannot take the frame until an ack frees space."""
        total = FRAME_HEADER_BYTES + len(payload)
        offset = self._fit(total)
        if offset is None:
            return None
        buf = self._shm.buf
        _FRAME_HEADER.pack_into(buf, offset, len(payload), seq & 0xFFFFFFFF)
        buf[offset + FRAME_HEADER_BYTES : offset + total] = payload
        self._in_flight.append((seq, offset, total))
        self._write_pos = offset + total
        return offset

    def release(self, seq: int) -> None:
        """Free the oldest in-flight frame, which must carry ``seq`` —
        acks arrive in doorbell order on a healthy worker, so anything
        else is a protocol bug worth failing loudly on."""
        if not self._in_flight:
            raise TransportError(f"ack for seq {seq} with no frame in flight")
        head_seq = self._in_flight[0][0]
        if head_seq != seq:
            raise TransportError(
                f"out-of-order ack: got seq {seq}, head frame is {head_seq}"
            )
        self._in_flight.popleft()

    def reset(self) -> None:
        """Forget all in-flight frames (supervised restart: the ring's
        contents die with the worker; pending frames are re-written)."""
        self._in_flight.clear()
        self._write_pos = 0

    def close(self, *, unlink: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except OSError:
            pass
        if unlink:
            try:
                self._shm.unlink()
            except (FileNotFoundError, OSError):
                pass


class RingReader:
    """Worker-side view of the ring: decode the frame a doorbell names."""

    def __init__(self, name: str) -> None:
        # The parent owns this segment's lifetime; attach with resource-
        # tracker registration suppressed (see attach_shared_memory).
        self._shm = attach_shared_memory(name)
        self._closed = False

    def read(self, seq: int, offset: int, length: int) -> Dict[object, tuple]:
        buf = self._shm.buf
        if offset < 0 or offset + length > len(buf):
            raise TransportError(
                f"doorbell names bytes [{offset}, {offset + length}) outside "
                f"the {len(buf)}-byte ring"
            )
        payload_len, frame_seq = _FRAME_HEADER.unpack_from(buf, offset)
        if payload_len != length - FRAME_HEADER_BYTES or frame_seq != (
            seq & 0xFFFFFFFF
        ):
            raise TransportError(
                f"ring frame header mismatch at offset {offset}: header says "
                f"payload {payload_len} seq {frame_seq}, doorbell says "
                f"payload {length - FRAME_HEADER_BYTES} seq {seq}"
            )
        start = offset + FRAME_HEADER_BYTES
        with memoryview(buf)[start : start + payload_len] as view:
            return decode_payload(view)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except OSError:
            pass
