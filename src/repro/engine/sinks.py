"""Sinks: where sealed trajectories go when a stream finishes.

The engine seals a device stream for three reasons — an explicit
``finish_device`` / ``finish_all``, the LRU ``max_devices`` cap, or the
``idle_timeout`` policy — and every sealed trajectory flows through the
same :class:`Sink` interface regardless of the reason.  That closes the
loss window the callback-or-collect design had: an engine configured with
``collect=False`` and no callback would silently drop trajectories sealed
by an eviction policy, because nothing was listening when the policy
fired.  With sinks, eviction *is* delivery.

``Sink`` (protocol)
    ``emit(device_id, trajectory)`` receives every sealed stream the
    moment it is sealed; ``close()`` flushes/releases whatever the sink
    holds.  The engine never calls ``close()`` — sink lifetime belongs to
    whoever created it (the sharded engine's workers are the exception:
    they own their per-shard sinks and close them at ``finish``).

``ListSink``
    The collect-in-memory behaviour as a sink: trajectories accumulate in
    ``results`` (``device_id -> [CompressedTrajectory]`` in completion
    order).  :class:`~repro.engine.core.StreamEngine` uses one internally
    when ``collect=True``, bound to its ``results`` dict.

``CallbackSink``
    Adapts a plain ``fn(device_id, trajectory)`` callable (the historical
    ``on_finish=`` contract) to the sink interface.

``repro.storage`` ships :class:`~repro.storage.store.StoreSink`, which
encodes each trajectory with the binary codec and appends it to a
:class:`~repro.storage.store.TrajectoryStore` — a fleet run streaming
straight to disk.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Protocol, runtime_checkable

from ..model.trajectory import CompressedTrajectory

__all__ = ["Sink", "ListSink", "CallbackSink"]


@runtime_checkable
class Sink(Protocol):
    """Receives every trajectory the engine seals, eviction included."""

    def emit(
        self, device_id: Hashable, trajectory: CompressedTrajectory
    ) -> None:
        """Deliver one sealed stream (called in completion order)."""
        ...

    def close(self) -> None:
        """Flush and release; no ``emit`` may follow."""
        ...


class ListSink:
    """Collect sealed trajectories in memory, per device.

    ``results`` maps each device id to its sealed trajectories in
    completion order (a device evicted and reopened accumulates one entry
    per stream).  Pass an existing dict to collect into it — the engine
    binds its public ``results`` attribute this way.
    """

    __slots__ = ("results",)

    def __init__(
        self,
        results: Dict[Hashable, List[CompressedTrajectory]] | None = None,
    ) -> None:
        self.results = {} if results is None else results

    def emit(
        self, device_id: Hashable, trajectory: CompressedTrajectory
    ) -> None:
        self.results.setdefault(device_id, []).append(trajectory)

    def close(self) -> None:  # nothing held outside the dict
        pass

    def __len__(self) -> int:
        """Total sealed trajectories across all devices."""
        return sum(len(v) for v in self.results.values())


class CallbackSink:
    """Adapt a ``fn(device_id, trajectory)`` callable to the sink interface."""

    __slots__ = ("_fn",)

    def __init__(
        self, fn: Callable[[Hashable, CompressedTrajectory], None]
    ) -> None:
        self._fn = fn

    def emit(
        self, device_id: Hashable, trajectory: CompressedTrajectory
    ) -> None:
        self._fn(device_id, trajectory)

    def close(self) -> None:
        pass
