"""CLI demo: ``python -m repro.engine``.

Simulates a fleet of devices streaming interleaved fixes and drives them
through the engine, printing throughput and the compression outcome::

    PYTHONPATH=src python -m repro.engine --devices 200 --fixes 500
    PYTHONPATH=src python -m repro.engine --devices 200 --fixes 500 --workers 2
    PYTHONPATH=src python -m repro.engine --devices 100 --fixes 300 --geodetic --multi-zone

The default runs the single-process :class:`~repro.engine.core.
StreamEngine`; ``--workers N`` (N >= 1) runs the sharded multiprocessing
engine instead.  ``--geodetic`` feeds raw GPS ``(lat, lon)`` fixes through
the :class:`~repro.engine.geodetic.GeoStreamEngine` front-end (UTM zone
auto-selected per device; ``--multi-zone`` scatters the fleet across two
zone boundaries on both hemispheres, ``--noise-m`` adds GPS noise) and
reports the zones the run stamped.  Use the benchmark subsystem
(``python -m repro.bench``) for recorded, comparable numbers — this entry
point is for watching the engine work.
"""

from __future__ import annotations

import argparse
import functools
import sys
import time
from typing import Sequence

from .core import StreamEngine
from .geodetic import GeoStreamEngine
from .sharded import ShardedStreamEngine
from .simulate import (
    bqs_fleet_factory,
    fleet_fixes,
    gps_fleet_fixes,
    iter_fix_batches,
    iter_geo_fix_batches,
)

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.engine",
        description="Stream a simulated device fleet through the engine.",
    )
    parser.add_argument("--devices", type=int, default=100)
    parser.add_argument("--fixes", type=int, default=300, help="fixes per device")
    parser.add_argument("--epsilon", type=float, default=10.0, help="metres")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--batch", type=int, default=4096, help="fixes per batch")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard over N worker processes (0 = single-process engine)",
    )
    parser.add_argument(
        "--max-devices",
        type=int,
        default=None,
        help="LRU-evict streams past this cap (per shard when sharded)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="finish streams idle for this many stream-seconds",
    )
    parser.add_argument(
        "--geodetic",
        action="store_true",
        help="feed raw GPS (lat, lon) fixes through the geodetic front-end "
        "(per-device UTM zone auto-selection, zone-stamped output)",
    )
    parser.add_argument(
        "--multi-zone",
        action="store_true",
        help="with --geodetic: scatter the fleet across two UTM zone "
        "boundaries on both hemispheres",
    )
    parser.add_argument(
        "--noise-m",
        type=float,
        default=0.0,
        help="with --geodetic: Gaussian GPS noise sigma in metres",
    )
    args = parser.parse_args(argv)
    if (args.multi_zone or args.noise_m) and not args.geodetic:
        parser.error("--multi-zone/--noise-m require --geodetic")

    factory = functools.partial(bqs_fleet_factory, args.epsilon)
    if args.geodetic:
        ids, ts, lats, lons = gps_fleet_fixes(
            args.devices,
            args.fixes,
            seed=args.seed,
            multi_zone=args.multi_zone,
            noise_m=args.noise_m,
        )
        batches = iter_geo_fix_batches(ids, ts, lats, lons, args.batch)
    else:
        ids, cols = fleet_fixes(args.devices, args.fixes, seed=args.seed)
        batches = iter_fix_batches(ids, cols, args.batch)
    total = len(ids)
    print(
        f"fleet: {args.devices} devices x {args.fixes} fixes "
        f"({total} total), epsilon={args.epsilon} m, "
        f"{'GPS-native, ' if args.geodetic else ''}"
        f"{'sharded x' + str(args.workers) if args.workers else 'single-process'}",
        file=sys.stderr,
    )

    start = time.perf_counter()
    if args.workers:
        engine = ShardedStreamEngine(
            factory,
            workers=args.workers,
            max_devices=args.max_devices,
            idle_timeout=args.idle_timeout,
            geodetic=args.geodetic,
        )
    elif args.geodetic:
        engine = GeoStreamEngine(
            factory,
            max_devices=args.max_devices,
            idle_timeout=args.idle_timeout,
        )
    else:
        engine = StreamEngine(
            factory,
            max_devices=args.max_devices,
            idle_timeout=args.idle_timeout,
        )
    for batch in batches:
        engine.push_columns(*batch)
    results = engine.finish_all()
    wall = time.perf_counter() - start

    trajectories = sum(len(v) for v in results.values())
    key_points = sum(len(t) for v in results.values() for t in v)
    print(
        f"{total} fixes -> {trajectories} trajectories, "
        f"{key_points} key points "
        f"(rate {key_points / total:.3f}) in {wall:.3f}s "
        f"= {total / wall:,.0f} fixes/s"
    )
    if args.geodetic:
        zones = sorted(
            {
                (t.frame.zone, "S" if t.frame.south else "N")
                for v in results.values()
                for t in v
                if t.frame is not None
            }
        )
        print(
            "zones stamped: "
            + (", ".join(f"{z}{h}" for z, h in zones) or "none")
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
