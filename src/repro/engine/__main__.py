"""CLI demo: ``python -m repro.engine``.

Simulates a fleet of devices streaming interleaved fixes and drives them
through the engine, printing throughput and the compression outcome::

    PYTHONPATH=src python -m repro.engine --devices 200 --fixes 500
    PYTHONPATH=src python -m repro.engine --devices 200 --fixes 500 --workers 2
    PYTHONPATH=src python -m repro.engine --devices 100 --fixes 300 --geodetic --multi-zone

The default runs the single-process :class:`~repro.engine.core.
StreamEngine`; ``--workers N`` (N >= 1) runs the sharded multiprocessing
engine instead (``--transport shm`` switches its data plane to the
zero-copy shared-memory rings).  ``--geodetic`` feeds raw GPS ``(lat, lon)`` fixes through
the :class:`~repro.engine.geodetic.GeoStreamEngine` front-end (UTM zone
auto-selected per device; ``--multi-zone`` scatters the fleet across two
zone boundaries on both hemispheres, ``--noise-m`` adds GPS noise) and
reports the zones the run stamped.  Use the benchmark subsystem
(``python -m repro.bench``) for recorded, comparable numbers — this entry
point is for watching the engine work.

``--dirty`` turns the simulated feed hostile: seeded disorder is injected
into the stream (``--swaps`` late arrivals, ``--dups`` duplicates,
``--teleports`` position spikes, ``--gaps`` long silences) and a
:class:`~repro.engine.sanitize.SanitizePolicy` is put in front of the
compressors; the run prints the resulting ``FeedReport`` and
``--check-feed`` exits non-zero unless the sanitizer's counters match the
injection ground truth exactly (the CI smoke runs this).

``python -m repro.engine ingest-csv FILE`` is the real-feed adapter: it
streams ``device_id,t,x,y`` (or ``device_id,t,lat,lon`` with
``--geodetic``) rows through the engine with the sanitizer on by default,
prints the per-run feed ledger, and can persist sealed trajectories
straight to a store directory with ``--store``.
"""

from __future__ import annotations

import argparse
import csv
import functools
import sys
import time
from array import array
from typing import Sequence

from .core import StreamEngine
from .geodetic import GeoStreamEngine
from .sanitize import (
    DROP_DUPLICATE,
    DROP_OUT_OF_ORDER,
    DROP_TELEPORT,
    SPLIT_GAP,
    FeedReport,
    SanitizePolicy,
    format_feed_report,
)
from .sharded import ShardedStreamEngine
from .simulate import (
    DisorderSummary,
    bqs_fleet_factory,
    fleet_fixes,
    gps_fleet_fixes,
    inject_disorder,
    iter_fix_batches,
    iter_geo_fix_batches,
)

__all__ = ["main"]


def _policy_from_args(args) -> SanitizePolicy:
    return SanitizePolicy(
        max_lateness=args.max_lateness,
        max_speed_mps=args.max_speed,
        gap_seconds=args.gap_seconds,
        split_zones=getattr(args, "split_zones", False),
    )


def _add_policy_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-lateness",
        type=float,
        default=0.0,
        help="reorder-buffer window in seconds (0 = drop late fixes)",
    )
    parser.add_argument(
        "--max-speed",
        type=float,
        default=50.0,
        help="teleport gate in m/s",
    )
    parser.add_argument(
        "--gap-seconds",
        type=float,
        default=60.0,
        help="silence beyond this splits the stream",
    )


def _expected_report(
    summary: DisorderSummary, policy: SanitizePolicy, fixes_in: int
) -> FeedReport:
    """The ledger a clean run over the injected stream must produce."""
    dropped = {}
    reordered = 0
    if policy.max_lateness > 0.0:
        reordered = summary.swaps
    elif summary.swaps:
        dropped[DROP_OUT_OF_ORDER] = summary.swaps
    if summary.dups:
        dropped[DROP_DUPLICATE] = summary.dups
    if summary.teleports:
        dropped[DROP_TELEPORT] = summary.teleports
    splits = {SPLIT_GAP: summary.gaps} if summary.gaps else {}
    return FeedReport(
        fixes_in=fixes_in,
        fixes_out=fixes_in - sum(dropped.values()),
        buffered=0,
        reordered=reordered,
        dropped=dropped,
        splits=splits,
    )


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "ingest-csv":
        return _ingest_csv_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.engine",
        description="Stream a simulated device fleet through the engine.",
    )
    parser.add_argument("--devices", type=int, default=100)
    parser.add_argument("--fixes", type=int, default=300, help="fixes per device")
    parser.add_argument("--epsilon", type=float, default=10.0, help="metres")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--batch", type=int, default=4096, help="fixes per batch")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard over N worker processes (0 = single-process engine)",
    )
    parser.add_argument(
        "--transport",
        choices=("pipe", "shm"),
        default="pipe",
        help="sharded data plane: pickled pipes (default) or zero-copy "
        "shared-memory rings (requires --workers)",
    )
    parser.add_argument(
        "--max-devices",
        type=int,
        default=None,
        help="LRU-evict streams past this cap (per shard when sharded)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="finish streams idle for this many stream-seconds",
    )
    parser.add_argument(
        "--geodetic",
        action="store_true",
        help="feed raw GPS (lat, lon) fixes through the geodetic front-end "
        "(per-device UTM zone auto-selection, zone-stamped output)",
    )
    parser.add_argument(
        "--multi-zone",
        action="store_true",
        help="with --geodetic: scatter the fleet across two UTM zone "
        "boundaries on both hemispheres",
    )
    parser.add_argument(
        "--noise-m",
        type=float,
        default=0.0,
        help="with --geodetic: Gaussian GPS noise sigma in metres",
    )
    parser.add_argument(
        "--dirty",
        action="store_true",
        help="inject seeded disorder into the feed and sanitize it",
    )
    parser.add_argument(
        "--swaps", type=int, default=0, help="with --dirty: late arrivals"
    )
    parser.add_argument(
        "--dups", type=int, default=0, help="with --dirty: duplicated fixes"
    )
    parser.add_argument(
        "--teleports", type=int, default=0, help="with --dirty: position spikes"
    )
    parser.add_argument(
        "--gaps", type=int, default=0, help="with --dirty: inserted silences"
    )
    _add_policy_flags(parser)
    parser.add_argument(
        "--check-feed",
        action="store_true",
        help="with --dirty: fail unless the FeedReport matches the "
        "injection ground truth exactly",
    )
    args = parser.parse_args(argv)
    if (args.multi_zone or args.noise_m) and not args.geodetic:
        parser.error("--multi-zone/--noise-m require --geodetic")
    if (
        args.swaps or args.dups or args.teleports or args.gaps or args.check_feed
    ) and not args.dirty:
        parser.error("--swaps/--dups/--teleports/--gaps/--check-feed require --dirty")
    if args.transport != "pipe" and not args.workers:
        parser.error("--transport shm requires --workers")

    factory = functools.partial(bqs_fleet_factory, args.epsilon)
    summary = None
    if args.geodetic:
        ids, ts, lats, lons = gps_fleet_fixes(
            args.devices,
            args.fixes,
            seed=args.seed,
            multi_zone=args.multi_zone,
            noise_m=args.noise_m,
        )
        if args.dirty:
            # Teleport offset in degrees of latitude: far beyond any speed
            # gate, but never across a UTM zone (longitude) boundary.
            ids, ts, lats, lons, summary = inject_disorder(
                ids,
                ts,
                lats,
                lons,
                seed=args.seed,
                swaps=args.swaps,
                dups=args.dups,
                teleports=args.teleports,
                gaps=args.gaps,
                teleport_offset=0.5,
            )
        batches = iter_geo_fix_batches(ids, ts, lats, lons, args.batch)
    else:
        ids, cols = fleet_fixes(args.devices, args.fixes, seed=args.seed)
        if args.dirty:
            ids, ts, xs, ys, summary = inject_disorder(
                ids,
                cols.ts,
                cols.xs,
                cols.ys,
                seed=args.seed,
                swaps=args.swaps,
                dups=args.dups,
                teleports=args.teleports,
                gaps=args.gaps,
            )
            batches = iter_geo_fix_batches(ids, ts, xs, ys, args.batch)
        else:
            batches = iter_fix_batches(ids, cols, args.batch)
    policy = _policy_from_args(args) if args.dirty else None
    total = len(ids)
    print(
        f"fleet: {args.devices} devices x {args.fixes} fixes "
        f"({total} total), epsilon={args.epsilon} m, "
        f"{'GPS-native, ' if args.geodetic else ''}"
        f"{'dirty feed, ' if args.dirty else ''}"
        f"{'sharded x' + str(args.workers) + ' (' + args.transport + ')' if args.workers else 'single-process'}",
        file=sys.stderr,
    )

    start = time.perf_counter()
    if args.workers:
        engine = ShardedStreamEngine(
            factory,
            workers=args.workers,
            max_devices=args.max_devices,
            idle_timeout=args.idle_timeout,
            geodetic=args.geodetic,
            policy=policy,
            transport=args.transport,
        )
    elif args.geodetic:
        engine = GeoStreamEngine(
            factory,
            max_devices=args.max_devices,
            idle_timeout=args.idle_timeout,
            policy=policy,
        )
    else:
        engine = StreamEngine(
            factory,
            max_devices=args.max_devices,
            idle_timeout=args.idle_timeout,
            policy=policy,
        )
    for batch in batches:
        engine.push_columns(*batch)
    results = engine.finish_all()
    wall = time.perf_counter() - start

    trajectories = sum(len(v) for v in results.values())
    key_points = sum(len(t) for v in results.values() for t in v)
    print(
        f"{total} fixes -> {trajectories} trajectories, "
        f"{key_points} key points "
        f"(rate {key_points / total:.3f}) in {wall:.3f}s "
        f"= {total / wall:,.0f} fixes/s"
    )
    if args.geodetic:
        zones = sorted(
            {
                (t.frame.zone, "S" if t.frame.south else "N")
                for v in results.values()
                for t in v
                if t.frame is not None
            }
        )
        print(
            "zones stamped: "
            + (", ".join(f"{z}{h}" for z, h in zones) or "none")
        )
    if policy is not None:
        report = engine.feed_report()
        print(format_feed_report(report))
        if args.check_feed:
            expected = _expected_report(summary, policy, total)
            if not report.reconciles:
                print("FAIL: feed ledger does not reconcile", file=sys.stderr)
                return 1
            if report.to_json() != expected.to_json():
                print(
                    "FAIL: feed report does not match injection ground "
                    f"truth\n  expected: {expected.to_json()}\n"
                    f"  actual:   {report.to_json()}",
                    file=sys.stderr,
                )
                return 1
            print("feed report matches injection ground truth")
    return 0


def _ingest_csv_main(argv: Sequence[str]) -> int:
    """``python -m repro.engine ingest-csv FILE`` — the real-feed adapter."""
    parser = argparse.ArgumentParser(
        prog="repro.engine ingest-csv",
        description="Stream a CSV feed of device fixes through the engine.",
    )
    parser.add_argument(
        "path", help="CSV file with device_id,t,x,y rows ('-' for stdin)"
    )
    parser.add_argument("--epsilon", type=float, default=10.0, help="metres")
    parser.add_argument("--batch", type=int, default=4096)
    parser.add_argument(
        "--geodetic",
        action="store_true",
        help="coordinate columns are latitude/longitude degrees",
    )
    parser.add_argument(
        "--split-zones",
        action="store_true",
        help="with --geodetic: seal/reopen streams at UTM zone boundaries",
    )
    parser.add_argument(
        "--no-header",
        action="store_true",
        help="columns are positional device_id,t,x,y (no header row)",
    )
    parser.add_argument(
        "--no-sanitize",
        action="store_true",
        help="trust the feed: no sanitizer, dirty rows fail the run",
    )
    _add_policy_flags(parser)
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persist sealed trajectories to this store directory",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="write-ahead journal directory: every accepted batch is "
        "durable before it is compressed, so a crashed run can be "
        "replayed exactly (StreamEngine.recover / GeoStreamEngine."
        "recover on this directory)",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync journal frames and store appends (survives power "
        "loss, not just process death)",
    )
    args = parser.parse_args(argv)
    if args.split_zones and not args.geodetic:
        parser.error("--split-zones requires --geodetic")
    if args.fsync and args.journal is None and args.store is None:
        parser.error("--fsync needs --journal and/or --store to act on")
    policy = None if args.no_sanitize else _policy_from_args(args)

    sink = None
    store = None
    if args.store is not None:
        from ..storage.store import StoreSink, TrajectoryStore

        store = TrajectoryStore(args.store, fsync=args.fsync)
        sink = StoreSink(store)
    factory = functools.partial(bqs_fleet_factory, args.epsilon)
    cls = GeoStreamEngine if args.geodetic else StreamEngine
    engine = cls(
        factory,
        policy=policy,
        sink=sink,
        collect=sink is None,
        journal=args.journal,
        journal_fsync=args.fsync,
    )

    coord_names = ("lat", "lon") if args.geodetic else ("x", "y")
    handle = sys.stdin if args.path == "-" else open(args.path, newline="")
    rows_in = 0
    try:
        reader = csv.reader(handle)
        columns = (0, 1, 2, 3)
        if not args.no_header:
            try:
                header = next(reader)
            except StopIteration:
                print("empty feed", file=sys.stderr)
                return 1
            names = [h.strip().lower() for h in header]
            aliases = {
                "device_id": ("device_id", "device", "id"),
                "t": ("t", "timestamp", "time"),
                coord_names[0]: (coord_names[0], "latitude")
                if args.geodetic
                else (coord_names[0],),
                coord_names[1]: (coord_names[1], "longitude")
                if args.geodetic
                else (coord_names[1],),
            }
            resolved = []
            for field, candidates in aliases.items():
                for candidate in candidates:
                    if candidate in names:
                        resolved.append(names.index(candidate))
                        break
                else:
                    parser.error(
                        f"header {header!r} has no {field!r} column "
                        "(use --no-header for positional columns)"
                    )
            columns = tuple(resolved)
        ids: list = []
        ts = array("d")
        c1 = array("d")
        c2 = array("d")
        start = time.perf_counter()
        for row in reader:
            if not row:
                continue
            ids.append(row[columns[0]])
            # float('nan') on unparseable numbers would be silent; let a
            # malformed row fail loudly with its line number.
            try:
                ts.append(float(row[columns[1]]))
                c1.append(float(row[columns[2]]))
                c2.append(float(row[columns[3]]))
            except (ValueError, IndexError) as exc:
                print(
                    f"line {reader.line_num}: bad row {row!r}: {exc}",
                    file=sys.stderr,
                )
                return 1
            rows_in += 1
            if len(ids) >= args.batch:
                engine.push_columns(ids, ts, c1, c2)
                ids, ts = [], array("d")
                c1, c2 = array("d"), array("d")
        if ids:
            engine.push_columns(ids, ts, c1, c2)
        results = engine.finish_all()
        wall = time.perf_counter() - start
    finally:
        if handle is not sys.stdin:
            handle.close()
        if sink is not None:
            sink.close()
        if store is not None:
            store.close()

    trajectories = (
        sum(len(v) for v in results.values())
        if sink is None
        else engine.sealed_trajectories
    )
    key_points = sum(len(t) for v in results.values() for t in v)
    print(
        f"{rows_in} rows -> {trajectories} trajectories"
        + (f", {key_points} key points" if sink is None else "")
        + f" in {wall:.3f}s"
        + (f" -> store {args.store}" if sink is not None else "")
    )
    if policy is not None:
        print(format_feed_report(engine.feed_report()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
