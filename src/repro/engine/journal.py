"""The write-ahead fix journal: crash-durable acknowledged ingestion.

Every unsealed compressor stream is state that dies with the process —
potentially thousands of devices × hundreds of buffered fixes that were
already acknowledged to the uplink.  :class:`FixJournal` closes that hole
the way the segment store closes it for sealed output: an append-only log
of CRC-framed, length-prefixed records, written *before* the engine
dispatches a batch, so any accepted fix is on disk before the push call
returns.

Recovery replays the journal through a **fresh engine with the same
configuration** (same factory, policy, eviction caps).  Because the whole
pipeline — sanitizer, splits, evictions, compressors — is deterministic
over the pushed batches, the replayed engine reaches exactly the
pre-crash state and re-seals exactly the trajectories the crashed run
sealed, in the same order.  Seal-checkpoint records make the replay's
*output* start after the last sealed trajectory: each seal the original
run delivered to its sinks is recorded, and the replay suppresses that
many re-emissions per device, so nothing sealed before the crash is
delivered twice.

On-disk format (one directory, ``wal-%08d.log`` segments):

=============  ==========================================================
header         ``BQSWAL1\\n`` magic, version byte, flags byte (bit 0:
               geodetic — the coordinate columns are degrees)
frame          u32 payload length, u32 crc32(payload), payload — the
               store's segment framing, with the same torn-tail recovery:
               scan stops at the first bad frame, counts the damage, and
               appends roll to a fresh segment
``push``       record type 1: uvarint batch seq, uvarint group count,
               then per device group: tagged device id, uvarint fix
               count, and the raw ``ts``/``xs``/``ys`` columns as
               little-endian f64 — floats are stored bit-exact (the
               codec's quantizing varints would break bit-identical
               replay), the varint idioms carry every count and length
``seal``       record type 2: tagged device id, uvarint cumulative
               non-empty seals delivered for that device — written
               *after* the sink accepted the trajectory
``checkpoint`` record type 3: uvarint seq — first frame of a rotated
               segment, carrying the batch sequence across rotation
``finish``     record type 4: tagged device id — an explicit
               ``finish_device`` call (evictions and splits need no
               record: the replayed pushes reproduce them)
``finish_all`` record type 5: an explicit ``finish_all`` call
=============  ==========================================================

Device ids round-trip by type (str / int / bytes — the ids the engines
and the store actually see); anything else raises :class:`JournalError`
at push time rather than surfacing as a replay mismatch after a crash.

The one unavoidable crash window is between a sink accepting a sealed
trajectory and its ``seal`` record landing: replay would deliver that
trajectory a second time.  :class:`EmitGate` closes it for store-backed
sinks by checking the device's most recent stored record before the
first unsuppressed re-emission (byte-level blob comparison at the stored
quanta) — exactly-once into a :class:`~repro.storage.store.
TrajectoryStore`, at-least-once into sinks that cannot be asked.

``finish_all`` rotates the journal: with every stream sealed and every
seal checkpointed there is nothing left to replay, so a fresh segment
(holding only a ``checkpoint`` frame) replaces the old ones and the
journal stays bounded by the work since the last quiesce.
"""

from __future__ import annotations

import os
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Sequence, Tuple

from .. import fsio
from ..storage.codec import (
    CodecError,
    _append_svarint,
    _append_uvarint,
    _read_svarint,
    _read_uvarint,
)

__all__ = ["EmitGate", "FixJournal", "JournalError", "RecoveryReport"]

_MAGIC = b"BQSWAL1\n"
_VERSION = 1
_HEADER = struct.Struct("<8sBB")  # magic, version, flags
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_SEGMENT_FMT = "wal-{:08d}.log"
_SEGMENT_GLOB = "wal-*.log"

FLAG_GEODETIC = 0x01

_REC_PUSH = 1
_REC_SEAL = 2
_REC_CHECKPOINT = 3
_REC_FINISH = 4
_REC_FINISH_ALL = 5

_ID_STR = 0
_ID_INT = 1
_ID_BYTES = 2


class JournalError(ValueError):
    """The journal cannot guarantee a faithful replay (bad magic, damage
    before the final segment, a device id that cannot round-trip, a
    geodetic journal opened by a planar engine, ...)."""


def _append_device_id(buf: bytearray, device_id: Hashable) -> None:
    if isinstance(device_id, str):
        raw = device_id.encode("utf-8", "surrogatepass")
        buf.append(_ID_STR)
        _append_uvarint(buf, len(raw))
        buf += raw
    elif isinstance(device_id, bool):
        # bool is an int subclass but would come back as int and miss the
        # device's open stream on replay.
        raise JournalError(
            f"device id {device_id!r} (bool) cannot be journaled"
        )
    elif isinstance(device_id, int):
        buf.append(_ID_INT)
        _append_svarint(buf, device_id)
    elif isinstance(device_id, bytes):
        buf.append(_ID_BYTES)
        _append_uvarint(buf, len(device_id))
        buf += device_id
    else:
        raise JournalError(
            f"device id {device_id!r} of type {type(device_id).__name__} "
            "cannot be journaled (str, int and bytes ids round-trip)"
        )


def _read_device_id(data, pos: int) -> Tuple[Hashable, int]:
    if pos >= len(data):
        raise CodecError("truncated device id")
    tag = data[pos]
    pos += 1
    if tag == _ID_STR:
        n, pos = _read_uvarint(data, pos)
        if pos + n > len(data):
            raise CodecError("truncated device id")
        return bytes(data[pos : pos + n]).decode("utf-8", "surrogatepass"), pos + n
    if tag == _ID_INT:
        return _read_svarint(data, pos)
    if tag == _ID_BYTES:
        n, pos = _read_uvarint(data, pos)
        if pos + n > len(data):
            raise CodecError("truncated device id")
        return bytes(data[pos : pos + n]), pos + n
    raise CodecError(f"unknown device id tag {tag}")


def _pack_doubles(values: Sequence[float]) -> bytes:
    col = values if isinstance(values, array) and values.typecode == "d" else array(
        "d", values
    )
    if sys.byteorder == "big":
        col = array("d", col)
        col.byteswap()
    return col.tobytes()


def _read_doubles(data, pos: int, n: int) -> Tuple[array, int]:
    end = pos + 8 * n
    if end > len(data):
        raise CodecError("truncated float column")
    col = array("d")
    col.frombytes(bytes(data[pos:end]))
    if sys.byteorder == "big":
        col.byteswap()
    return col, end


@dataclass
class RecoveryReport:
    """What :meth:`StreamEngine.recover` replayed and re-delivered."""

    last_seq: int  #: highest journaled batch sequence — resume input after it
    batches_replayed: int = 0
    fixes_replayed: int = 0
    seals_suppressed: int = 0  #: already delivered and checkpointed pre-crash
    seals_deduped: int = 0  #: delivered pre-crash, caught by the store check
    seals_reemitted: int = 0  #: lost with the crash, delivered again now
    damaged_bytes: int = 0  #: torn-tail bytes dropped by the journal scan
    segments: int = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)


class FixJournal:
    """Append-only write-ahead journal of accepted fixes for one engine.

    Args:
        directory: journal directory (created if missing); one engine per
            journal — it is single-writer, like the store.
        fsync: fsync every frame.  Off (the default) the journal survives
            process death (frames are flushed to the kernel before the
            push is acknowledged); on, it also survives power loss, at
            the cost of a disk round-trip per batch.
        geodetic: the pushed coordinate columns are degrees (stamped into
            the segment headers; a journal replays only into the kind of
            engine that wrote it).
        keep_records: retain parsed records from the open scan for
            :meth:`iter_records` — recovery needs them, a fresh ingest
            run does not.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: bool = False,
        geodetic: bool = False,
        keep_records: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._geodetic = geodetic
        self._flags = FLAG_GEODETIC if geodetic else 0
        self._handle = None
        self._active: str | None = None
        self._last_seq = 0
        self._seal_counts: Dict[Hashable, int] = {}
        self._records: List[tuple] | None = [] if keep_records else None
        self.damaged_bytes = 0
        self._segments: List[str] = sorted(
            p.name for p in self.directory.glob(_SEGMENT_GLOB)
        )
        self._closed = False
        if self._segments:
            self._scan()
        if self._handle is None:
            if self._segments:
                # Clean reopen: keep appending to the scanned tail.
                self._active = self._segments[-1]
                self._handle = fsio.open_file(
                    self.directory / self._active, "ab"
                )
            else:
                self._new_segment(checkpoint=False)

    # -- introspection -------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent journaled push batch."""
        return self._last_seq

    @property
    def geodetic(self) -> bool:
        return self._geodetic

    @property
    def fsync(self) -> bool:
        return self._fsync

    @property
    def segments(self) -> List[str]:
        return list(self._segments)

    def seal_counts(self) -> Dict[Hashable, int]:
        """Non-empty seals checkpointed per device (cumulative)."""
        return dict(self._seal_counts)

    def total_bytes(self) -> int:
        return sum(
            (self.directory / name).stat().st_size
            for name in self._segments
            if (self.directory / name).exists()
        )

    # -- opening -------------------------------------------------------------

    def _scan(self) -> None:
        last = len(self._segments) - 1
        for si, name in enumerate(self._segments):
            data = (self.directory / name).read_bytes()
            if len(data) < _HEADER.size:
                raise JournalError(f"{name}: truncated header")
            magic, version, flags = _HEADER.unpack_from(data, 0)
            if magic != _MAGIC:
                raise JournalError(f"{name}: bad magic {magic!r}")
            if version != _VERSION:
                raise JournalError(f"{name}: unsupported version {version}")
            if bool(flags & FLAG_GEODETIC) != self._geodetic:
                kind = "geodetic" if flags & FLAG_GEODETIC else "planar"
                raise JournalError(
                    f"{name}: journal is {kind}; this engine is "
                    f"{'geodetic' if self._geodetic else 'planar'}"
                )
            pos = _HEADER.size
            size = len(data)
            while pos < size:
                if pos + _FRAME.size > size:
                    break  # torn frame header
                length, crc = _FRAME.unpack_from(data, pos)
                end = pos + _FRAME.size + length
                if end > size:
                    break  # torn payload
                payload = data[pos + _FRAME.size : end]
                if zlib.crc32(payload) != crc:
                    break
                try:
                    self._apply_record(payload)
                except (CodecError, JournalError):
                    break  # damaged record — same policy as a bad CRC
                pos = end
            if pos < size:
                damage = size - pos
                if si != last:
                    # A hole before the final segment means replay would
                    # silently skip acknowledged fixes — refuse.
                    raise JournalError(
                        f"{name}: {damage} damaged bytes before the final "
                        "segment; the journal cannot replay faithfully"
                    )
                # Truncate the tear: once this recovery rolls a fresh
                # segment the damaged one is no longer final, and a second
                # crash before the next quiesce must still reopen clean.
                # The truncate mutates the log, so it goes through the
                # seam like every other write-side repair.
                with fsio.open_file(self.directory / name, "r+b") as repair:
                    repair.truncate(pos)
                self.damaged_bytes += damage
        if self.damaged_bytes:
            # Bytes appended after a tear would be unreachable to the
            # scan; seal the damaged segment and roll — the store does
            # the same for its logs.
            self._new_segment(checkpoint=True)

    def _apply_record(self, payload) -> None:
        if not payload:
            raise CodecError("empty record")
        rtype = payload[0]
        if rtype == _REC_PUSH:
            seq, pos = _read_uvarint(payload, 1)
            n_groups, pos = _read_uvarint(payload, pos)
            groups: Dict[Hashable, tuple] = {}
            for _ in range(n_groups):
                device_id, pos = _read_device_id(payload, pos)
                n, pos = _read_uvarint(payload, pos)
                ts, pos = _read_doubles(payload, pos, n)
                xs, pos = _read_doubles(payload, pos, n)
                ys, pos = _read_doubles(payload, pos, n)
                groups[device_id] = (ts, xs, ys)
            if seq <= self._last_seq:
                raise CodecError(
                    f"push seq {seq} not after {self._last_seq}"
                )
            self._last_seq = seq
            if self._records is not None:
                self._records.append(("push", seq, groups))
        elif rtype == _REC_SEAL:
            device_id, pos = _read_device_id(payload, 1)
            count, pos = _read_uvarint(payload, pos)
            if count > self._seal_counts.get(device_id, 0):
                self._seal_counts[device_id] = count
        elif rtype == _REC_CHECKPOINT:
            seq, _ = _read_uvarint(payload, 1)
            if seq > self._last_seq:
                self._last_seq = seq
        elif rtype == _REC_FINISH:
            device_id, _ = _read_device_id(payload, 1)
            if self._records is not None:
                self._records.append(("finish", device_id))
        elif rtype == _REC_FINISH_ALL:
            if self._records is not None:
                self._records.append(("finish_all",))
        else:
            raise CodecError(f"unknown journal record type {rtype}")

    def iter_records(self) -> Iterator[tuple]:
        """Parsed replayable records, in journal order: ``("push", seq,
        groups)``, ``("finish", device_id)``, ``("finish_all",)``.
        Requires ``keep_records=True`` at open."""
        if self._records is None:
            raise JournalError("journal opened without keep_records")
        return iter(self._records)

    def drop_records(self) -> None:
        """Release the retained replay records after recovery."""
        self._records = None

    # -- writing -------------------------------------------------------------

    def _new_segment(self, *, checkpoint: bool) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        next_index = 1
        if self._segments:
            next_index = (
                int(self._segments[-1][len("wal-") : -len(".log")]) + 1
            )
        name = _SEGMENT_FMT.format(next_index)
        # "wb": segment numbers never repeat within a journal's life, but
        # truncating is the safe idiom for any orphan under this name.
        handle = fsio.open_file(self.directory / name, "wb")
        try:
            handle.write(_HEADER.pack(_MAGIC, _VERSION, self._flags))
            handle.flush()
            if self._fsync:
                fsio.fsync(handle.fileno())
        except BaseException:
            handle.close()
            raise
        self._segments.append(name)
        self._active = name
        self._handle = handle
        if checkpoint:
            payload = bytearray((_REC_CHECKPOINT,))
            _append_uvarint(payload, self._last_seq)
            self._write_frame(bytes(payload))

    def _write_frame(self, payload: bytes) -> None:
        if self._closed:
            raise JournalError("journal is closed")
        handle = self._handle
        handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        handle.write(payload)
        # Flush to the kernel before the caller acknowledges the batch:
        # process death cannot lose it, only power loss can (see fsync).
        handle.flush()
        if self._fsync:
            fsio.fsync(handle.fileno())

    def log_push(
        self,
        groups: Dict[
            Hashable, Tuple[Sequence[float], Sequence[float], Sequence[float]]
        ],
    ) -> int:
        """Journal one accepted push batch (all device groups, one frame —
        a torn tail drops whole batches, never half of one); returns the
        batch's sequence number."""
        seq = self._last_seq + 1
        payload = bytearray((_REC_PUSH,))
        _append_uvarint(payload, seq)
        _append_uvarint(payload, len(groups))
        for device_id, (ts, xs, ys) in groups.items():
            _append_device_id(payload, device_id)
            _append_uvarint(payload, len(ts))
            payload += _pack_doubles(ts)
            payload += _pack_doubles(xs)
            payload += _pack_doubles(ys)
        self._write_frame(bytes(payload))
        self._last_seq = seq
        return seq

    def log_seal(self, device_id: Hashable) -> None:
        """Checkpoint one delivered non-empty seal (call *after* the sinks
        accepted the trajectory)."""
        count = self._seal_counts.get(device_id, 0) + 1
        self._seal_counts[device_id] = count
        payload = bytearray((_REC_SEAL,))
        _append_device_id(payload, device_id)
        _append_uvarint(payload, count)
        self._write_frame(bytes(payload))

    def log_finish(self, device_id: Hashable) -> None:
        """Journal an explicit ``finish_device`` (write-ahead, so replay
        re-seals at the same point)."""
        payload = bytearray((_REC_FINISH,))
        _append_device_id(payload, device_id)
        self._write_frame(bytes(payload))

    def log_finish_all(self) -> None:
        """Journal an explicit ``finish_all``."""
        self._write_frame(bytes((_REC_FINISH_ALL,)))

    def rotate(self) -> None:
        """Start a fresh segment and drop the old ones.

        Only meaningful at a quiesce point (every stream sealed, every
        seal checkpointed — ``finish_all`` calls this): the old segments
        replay to a state with nothing undelivered, so they are dead
        weight.  Crash-ordered: the new segment (with its ``checkpoint``
        frame carrying the batch sequence) exists before any old one is
        unlinked, and a replay spanning both is correct either way.
        """
        old = list(self._segments)
        self._new_segment(checkpoint=True)
        self._seal_counts.clear()
        if self._records is not None:
            self._records = []
        for name in old:
            try:
                fsio.unlink(self.directory / name)
            except OSError:
                pass  # an orphan is replay-correct, just not free
            if name in self._segments:
                self._segments.remove(name)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True


def _sealed_duplicate(store, device_id, trajectory) -> bool:
    """Whether the device's most recent stored record is byte-identical
    (at its stored quanta) to this about-to-be-re-emitted trajectory —
    the emit-before-checkpoint crash window, caught via the store."""
    from ..storage.codec import encode_trajectory

    key = device_id if isinstance(device_id, str) else str(device_id)
    try:
        refs = store.device_manifest(key)
        if not refs:
            return False
        decoded = store.read(refs[-1])
        candidate = encode_trajectory(
            trajectory,
            xy_quantum=decoded.xy_quantum,
            t_quantum=decoded.t_quantum,
        )
        stored = encode_trajectory(
            decoded.to_trajectory(),
            xy_quantum=decoded.xy_quantum,
            t_quantum=decoded.t_quantum,
        )
    except Exception:
        return False  # unsure means not a duplicate: never drop data on a guess
    return candidate == stored


class EmitGate:
    """The single funnel between an engine's seal paths and its sinks.

    Normal operation: deliver to every sink, then checkpoint the seal in
    the journal (non-empty trajectories only — empty seals never reach a
    store and are not counted on either side).  During recovery replay it
    additionally suppresses the seals the journal says were already
    delivered, and closes the emit-before-checkpoint window against a
    store (see :func:`_sealed_duplicate`).
    """

    __slots__ = (
        "journal",
        "suppress",
        "checked",
        "dedupe_store",
        "replaying",
        "suppressed",
        "deduped",
        "reemitted",
    )

    def __init__(self, journal: FixJournal | None = None) -> None:
        self.journal = journal
        self.suppress: Dict[Hashable, int] | None = None
        self.checked: set | None = None
        self.dedupe_store = None
        self.replaying = False
        self.suppressed = 0
        self.deduped = 0
        self.reemitted = 0

    def begin_replay(self, seal_counts: Dict[Hashable, int], dedupe_store) -> None:
        self.suppress = {d: c for d, c in seal_counts.items() if c > 0}
        self.checked = set()
        self.dedupe_store = dedupe_store
        self.replaying = True
        self.suppressed = self.deduped = self.reemitted = 0

    def end_replay(self) -> Tuple[int, int, int]:
        stats = (self.suppressed, self.deduped, self.reemitted)
        self.suppress = None
        self.checked = None
        self.dedupe_store = None
        self.replaying = False
        return stats

    def deliver(self, device_id, trajectory, sinks) -> bool:
        """Deliver one sealed trajectory; returns whether every sink saw it
        now (False: durable sinks already had it before the crash).

        Suppression is a *durable-sink* concept: a sink marked
        ``durable = True`` (the store) kept its pre-crash deliveries, so a
        suppressed seal must not reach it twice — but volatile sinks (the
        in-memory collect ledger, callbacks) lost theirs with the process,
        so the replay re-delivers to them unconditionally.  That is what
        makes a recovered ``finish_all()`` result digest-identical to the
        uninterrupted run *and* the store exactly-once at the same time.
        """
        countable = bool(trajectory.original_count)
        if self.replaying and countable:
            left = self.suppress.get(device_id, 0)
            if left > 0:
                self.suppress[device_id] = left - 1
                self.suppressed += 1
                self._emit_volatile(device_id, trajectory, sinks)
                return False
            if device_id not in self.checked:
                self.checked.add(device_id)
                if self.dedupe_store is not None and _sealed_duplicate(
                    self.dedupe_store, device_id, trajectory
                ):
                    # Delivered pre-crash, checkpoint lost with the crash:
                    # record it now instead of delivering twice.
                    self.deduped += 1
                    self._emit_volatile(device_id, trajectory, sinks)
                    if self.journal is not None:
                        self.journal.log_seal(device_id)
                    return False
        for sink in sinks:
            sink.emit(device_id, trajectory)
        if countable:
            if self.replaying:
                self.reemitted += 1
            if self.journal is not None:
                self.journal.log_seal(device_id)
        return True

    @staticmethod
    def _emit_volatile(device_id, trajectory, sinks) -> None:
        for sink in sinks:
            if not getattr(sink, "durable", False):
                sink.emit(device_id, trajectory)
