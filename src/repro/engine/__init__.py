"""Multi-stream fleet engine: many devices, bounded memory, optional shards.

Sits between :mod:`repro.compression` (which it drives) and
:mod:`repro.bench` (which measures it).  Two engines behind one batch
interface:

:class:`StreamEngine`
    Single-process multiplexer: per-device compressor state behind dict
    dispatch, interleaved ``(device_id, t, x, y)`` batches regrouped into
    per-device columns and ingested through the zero-object ``push_xyt``
    path, bounded memory via ``max_devices`` (LRU finish/evict) and
    ``idle_timeout`` policies.

:class:`ShardedStreamEngine`
    Multi-core scale-out: hash(device id) → worker process, columnar
    batches over pipes, identical results to the single-process engine.

:class:`GeoStreamEngine`
    GPS-native front-end: ``(device_id, t, lat, lon)`` batches, per-device
    UTM zone auto-selection from the first fix, bulk projection through
    the vectorized ``forward_columns`` path, and zone-stamped sealed
    trajectories (``ShardedStreamEngine(geodetic=True)`` hosts one per
    worker).

:mod:`repro.engine.simulate`
    Seeded fleet workload generator for benchmarks and demos
    (``python -m repro.engine`` drives it end to end), including seeded
    disorder injection for dirty-feed runs.

:mod:`repro.engine.sanitize`
    The feed sanitizer every engine can put in front of its compressors:
    a :class:`SanitizePolicy` handles out-of-order, duplicate, non-finite
    and teleporting fixes, splits streams at long silences and (geodetic)
    UTM zone boundaries, and accounts every dropped fix in a
    :class:`FeedReport`.

:mod:`repro.engine.journal`
    The write-ahead fix journal behind every engine's ``journal=`` /
    ``recover()`` crash-durability path: acknowledged batches are durable
    before dispatch, sealed deliveries are checkpointed, and replay
    through the same deterministic pipeline rebuilds the exact pre-crash
    state (the sharded engine journals per shard and can restart dead
    workers from their journals).
"""

from .core import BatchIngestError, DeviceId, Fix, StreamEngine
from .geodetic import GeoFix, GeoStreamEngine
from .journal import FixJournal, JournalError, RecoveryReport
from .sanitize import FeedReport, FeedSanitizer, SanitizePolicy
from .sharded import (
    ShardCrashError,
    ShardedStreamEngine,
    TransportError,
    shard_of,
)
from .simulate import (
    DisorderSummary,
    bqs_fleet_factory,
    fleet_fixes,
    gps_fleet_fixes,
    inject_disorder,
    iter_fix_batches,
    iter_geo_fix_batches,
)
from .sinks import CallbackSink, ListSink, Sink

__all__ = [
    "BatchIngestError",
    "CallbackSink",
    "DeviceId",
    "DisorderSummary",
    "FeedReport",
    "FeedSanitizer",
    "Fix",
    "FixJournal",
    "GeoFix",
    "GeoStreamEngine",
    "JournalError",
    "ListSink",
    "RecoveryReport",
    "SanitizePolicy",
    "ShardCrashError",
    "ShardedStreamEngine",
    "TransportError",
    "Sink",
    "StreamEngine",
    "bqs_fleet_factory",
    "fleet_fixes",
    "gps_fleet_fixes",
    "inject_disorder",
    "iter_fix_batches",
    "iter_geo_fix_batches",
    "shard_of",
]
