"""Feed sanitization: the messy-GPS layer in front of the compressors.

The paper pitches BQS as compression *on the go* — field devices with
flaky receivers, lossy uplinks, drifting clocks — but every compressor in
:mod:`repro.compression` (correctly) demands a clean stream: timestamps
non-decreasing, coordinates finite, every fix genuine.  Real feeds break
all of that routinely: UDP reorders batches, gateways retransmit
duplicates, receivers emit (0, 0) or NaN while searching for satellites,
multipath teleports a fix across town, and a device going dark for an
hour should *end* a trajectory, not stretch one segment over the silence.

:class:`FeedSanitizer` is the per-device gatekeeper that turns a raw feed
into the stream the compressors were designed for.  It is configured by a
:class:`SanitizePolicy` (a frozen, picklable dataclass — the sharded
engine ships it to workers) and runs a fixed stage pipeline over every
fix:

1. **Finiteness** — a non-finite timestamp or coordinate is dropped
   (reason ``non_finite``) before it can poison any later stage.
2. **Reorder buffer** (``max_lateness > 0``) — fixes are held back and
   re-sorted by timestamp until the stream's watermark (max timestamp
   seen) has passed them by ``max_lateness`` seconds, so bounded network
   reordering is *repaired* instead of dropped.  The buffer is capped at
   ``reorder_capacity`` fixes; overflow force-releases the oldest.
3. **Ordering** — a fix still older than the released stream after the
   buffer (or any out-of-order fix when the buffer is off) is dropped
   (reason ``out_of_order``).
4. **Duplicates** — a fix co-timestamped with the last accepted one is
   dropped (first arrival wins), as is a near-duplicate within
   ``dup_dt`` seconds *and* ``dup_epsilon_m`` metres (reason
   ``duplicate``).
5. **Gap splitting** — silence longer than ``gap_seconds`` seals the
   stream and reopens a fresh one (split reason ``gap``): the fix after
   the gap starts a new trajectory, the amnesic behaviour a device going
   dark demands.
6. **Teleport gate** — a fix implying speed above ``max_speed_mps`` from
   the last accepted fix is dropped (reason ``teleport``).  A genuine
   relocation would starve forever behind a stale anchor, so after
   ``teleport_rejoin`` consecutive gated fixes the sanitizer concedes the
   device really moved: it accepts the fix and splits the stream there
   (split reason ``teleport``).  The gate is suspended for the first fix
   after a gap split — average speed across a long silence is
   meaningless.

Every fix is accounted for: the shared :class:`FeedCounters` /
:class:`FeedReport` machinery guarantees ``fixes_in == fixes_out +
dropped (by reason) + buffered`` at any instant, per device and in
aggregate, so sanitization can never silently lose data — the engines
expose the ledger via ``feed_report()``.

Zone splitting — the geodetic twin of gap splitting (seal in the old UTM
frame at a zone boundary, reopen in the new) — is policy-driven too
(``split_zones`` / ``zone_margin_deg``) but necessarily lives in
:class:`~repro.engine.geodetic.GeoStreamEngine`, the only layer that
still sees degrees.  This module contributes the geodetic validation
helpers (:func:`first_invalid_geo`, :func:`filter_geo_columns`) it uses
at the boundary.

With no policy configured the engines bypass this module entirely — the
clean-input fast paths are bit-identical to the pre-sanitizer engine,
which the bench digests pin.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_right, insort
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "DROP_DUPLICATE",
    "DROP_NON_FINITE",
    "DROP_OUT_OF_ORDER",
    "DROP_OUT_OF_RANGE",
    "DROP_TELEPORT",
    "SPLIT_GAP",
    "SPLIT_TELEPORT",
    "SPLIT_ZONE",
    "FeedChunk",
    "FeedCounters",
    "FeedReport",
    "FeedSanitizer",
    "SanitizePolicy",
    "filter_geo_columns",
    "first_invalid_geo",
    "format_feed_report",
]

# -- drop / split reason vocabulary (stable strings: they appear in
# FeedReport JSON, bench records, and CLI output) ---------------------------

DROP_OUT_OF_ORDER = "out_of_order"  #: timestamp behind the released stream
DROP_DUPLICATE = "duplicate"  #: exact or near-duplicate of the last fix
DROP_NON_FINITE = "non_finite"  #: NaN/inf timestamp or coordinate
DROP_OUT_OF_RANGE = "out_of_range"  #: latitude/longitude outside the globe
DROP_TELEPORT = "teleport"  #: implied speed above the policy gate

SPLIT_GAP = "gap"  #: silence exceeded ``gap_seconds``
SPLIT_ZONE = "zone"  #: device left its UTM frame (geodetic engines)
SPLIT_TELEPORT = "teleport"  #: relocation conceded after a gated run

#: One sanitized run of fixes for the compressor: ``(seal_before, ts, xs,
#: ys)``.  ``seal_before`` asks the engine to seal the device's open
#: stream (if it has any fixes) before pushing the columns — the split
#: mechanic for gaps and teleport rejoins.
FeedChunk = Tuple[bool, "array[float]", "array[float]", "array[float]"]


@dataclass(frozen=True)
class SanitizePolicy:
    """How a feed is cleaned; one frozen object shared by every device.

    The default policy repairs nothing but exact/near duplicates and
    ordering (drop mode): enable the stages a deployment needs.  Frozen
    and purely scalar, so it pickles to sharded workers and serializes
    into bench records via :meth:`to_json`.

    Attributes:
        max_lateness: seconds of reordering the buffer absorbs; ``0``
            drops out-of-order fixes instead of re-sorting them.
        reorder_capacity: max fixes the reorder buffer may hold back per
            device; overflow force-releases the oldest.
        drop_duplicates: drop fixes co-timestamped with the last accepted
            fix (and near-duplicates per ``dup_dt`` / ``dup_epsilon_m``).
        dup_dt: near-duplicate time window in seconds (``0`` = exact
            same-timestamp only).
        dup_epsilon_m: near-duplicate distance in metres; a fix within
            ``dup_dt`` *and* ``dup_epsilon_m`` of the last accepted fix
            is dropped.
        max_speed_mps: teleport gate in metres/second; ``None`` disables.
        teleport_rejoin: consecutive gated fixes after which the gate
            concedes a genuine relocation (accept + split); ``None``
            never concedes.
        gap_seconds: silence beyond this seals the stream and reopens a
            fresh one; ``None`` disables gap splitting.
        split_zones: geodetic engines seal/reopen when a device leaves
            its UTM frame's strip (plus margin).
        zone_margin_deg: hysteresis in degrees longitude past the zone
            boundary before a zone split fires, so boundary-straddling
            tracks do not shatter into per-fix trajectories.
    """

    max_lateness: float = 0.0
    reorder_capacity: int = 512
    drop_duplicates: bool = True
    dup_dt: float = 0.0
    dup_epsilon_m: float = 0.0
    max_speed_mps: float | None = None
    teleport_rejoin: int | None = 8
    gap_seconds: float | None = None
    split_zones: bool = False
    zone_margin_deg: float = 0.05

    def __post_init__(self) -> None:
        if not (self.max_lateness >= 0.0 and math.isfinite(self.max_lateness)):
            raise ValueError(
                f"max_lateness must be finite and >= 0, got {self.max_lateness!r}"
            )
        if self.reorder_capacity < 1:
            raise ValueError(
                f"reorder_capacity must be >= 1, got {self.reorder_capacity!r}"
            )
        if not (self.dup_dt >= 0.0 and math.isfinite(self.dup_dt)):
            raise ValueError(f"dup_dt must be finite and >= 0, got {self.dup_dt!r}")
        if not (
            self.dup_epsilon_m >= 0.0 and math.isfinite(self.dup_epsilon_m)
        ):
            raise ValueError(
                f"dup_epsilon_m must be finite and >= 0, got {self.dup_epsilon_m!r}"
            )
        if self.max_speed_mps is not None and not (self.max_speed_mps > 0.0):
            raise ValueError(
                f"max_speed_mps must be > 0, got {self.max_speed_mps!r}"
            )
        if self.teleport_rejoin is not None and self.teleport_rejoin < 1:
            raise ValueError(
                f"teleport_rejoin must be >= 1, got {self.teleport_rejoin!r}"
            )
        if self.gap_seconds is not None and not (self.gap_seconds > 0.0):
            raise ValueError(
                f"gap_seconds must be > 0, got {self.gap_seconds!r}"
            )
        if not (
            self.zone_margin_deg >= 0.0 and math.isfinite(self.zone_margin_deg)
        ):
            raise ValueError(
                f"zone_margin_deg must be finite and >= 0, "
                f"got {self.zone_margin_deg!r}"
            )

    def to_json(self) -> dict:
        """A plain-JSON rendering (recorded in bench documents)."""
        return asdict(self)


class FeedCounters:
    """Mutable per-device sanitation ledger (one per device id, persistent
    across gap/zone splits *and* evictions — the engine owns the dict).

    The invariant every mutation preserves:
    ``fixes_in == fixes_out + sum(dropped.values()) + buffered``.
    """

    __slots__ = ("fixes_in", "fixes_out", "buffered", "reordered", "dropped", "splits")

    def __init__(self) -> None:
        self.fixes_in = 0  #: raw fixes handed to the sanitizer
        self.fixes_out = 0  #: fixes accepted and forwarded to a compressor
        self.buffered = 0  #: fixes currently held by the reorder buffer
        self.reordered = 0  #: fixes the buffer re-sequenced (insert not at tail)
        self.dropped: Dict[str, int] = {}  #: reason -> count
        self.splits: Dict[str, int] = {}  #: reason -> count

    def drop(self, reason: str) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + 1

    def split(self, reason: str) -> None:
        self.splits[reason] = self.splits.get(reason, 0) + 1

    def snapshot(self) -> "FeedReport":
        return FeedReport(
            fixes_in=self.fixes_in,
            fixes_out=self.fixes_out,
            buffered=self.buffered,
            reordered=self.reordered,
            dropped=dict(self.dropped),
            splits=dict(self.splits),
        )


@dataclass(frozen=True)
class FeedReport:
    """An immutable snapshot of sanitation counters (per device or merged).

    ``dropped`` and ``splits`` map reason strings (the module constants)
    to counts.  :attr:`reconciles` is the no-silent-loss audit: every raw
    fix is either compressed, dropped with a reason, or still buffered.
    """

    fixes_in: int = 0
    fixes_out: int = 0
    buffered: int = 0
    reordered: int = 0
    dropped: Dict[str, int] = field(default_factory=dict)
    splits: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    @property
    def splits_total(self) -> int:
        return sum(self.splits.values())

    @property
    def reconciles(self) -> bool:
        """``fixes_in == fixes_out + dropped + buffered`` — always true
        for reports produced by this package; exposed so benches and CI
        can assert it end to end."""
        return self.fixes_in == self.fixes_out + self.dropped_total + self.buffered

    def merged(self, other: "FeedReport") -> "FeedReport":
        """The element-wise sum of two reports (device -> fleet rollup)."""
        dropped = dict(self.dropped)
        for reason, n in other.dropped.items():
            dropped[reason] = dropped.get(reason, 0) + n
        splits = dict(self.splits)
        for reason, n in other.splits.items():
            splits[reason] = splits.get(reason, 0) + n
        return FeedReport(
            fixes_in=self.fixes_in + other.fixes_in,
            fixes_out=self.fixes_out + other.fixes_out,
            buffered=self.buffered + other.buffered,
            reordered=self.reordered + other.reordered,
            dropped=dropped,
            splits=splits,
        )

    def to_json(self) -> dict:
        return {
            "fixes_in": self.fixes_in,
            "fixes_out": self.fixes_out,
            "buffered": self.buffered,
            "reordered": self.reordered,
            "dropped": dict(sorted(self.dropped.items())),
            "splits": dict(sorted(self.splits.items())),
        }


def format_feed_report(report: FeedReport) -> str:
    """One-line human rendering for CLI output."""
    dropped = (
        ", ".join(f"{r}={n}" for r, n in sorted(report.dropped.items())) or "none"
    )
    splits = (
        ", ".join(f"{r}={n}" for r, n in sorted(report.splits.items())) or "none"
    )
    tail = "" if report.reconciles else "  [LEDGER DOES NOT RECONCILE]"
    return (
        f"feed: {report.fixes_in} in -> {report.fixes_out} compressed, "
        f"dropped {report.dropped_total} ({dropped}), "
        f"splits ({splits}), reordered {report.reordered}, "
        f"buffered {report.buffered}{tail}"
    )


class FeedSanitizer:
    """Per-device stream cleaner: raw fixes in, compressor-safe chunks out.

    One instance guards one device stream; the engine builds it alongside
    the device's compressor and drives it through :meth:`process` (per
    batch) and :meth:`flush` (at seal).  Both return :data:`FeedChunk`
    lists: runs of accepted fixes, each optionally demanding a stream
    seal first (gap / teleport-rejoin splits).

    State is O(policy.reorder_capacity): the reorder buffer plus the last
    accepted fix.  Counters live in the caller-owned
    :class:`FeedCounters` so the ledger survives the sanitizer itself
    (a device evicted and reborn keeps accumulating into the same row).
    """

    __slots__ = (
        "policy",
        "counters",
        "_last_t",
        "_last_x",
        "_last_y",
        "_has_last",
        "_gate_suspended",
        "_teleport_run",
        "_pend_t",
        "_pend_x",
        "_pend_y",
        "_watermark",
        "_carry_seal",
        "_out",
        "_cur",
    )

    def __init__(
        self, policy: SanitizePolicy, counters: FeedCounters | None = None
    ) -> None:
        self.policy = policy
        self.counters = counters if counters is not None else FeedCounters()
        self._last_t = -math.inf  #: timestamp of the last accepted fix
        self._last_x = 0.0
        self._last_y = 0.0
        self._has_last = False
        #: Gate suspension: the first fix of a fresh sub-stream (after a
        #: gap split) has no meaningful speed reference.
        self._gate_suspended = False
        self._teleport_run = 0
        # Reorder buffer: parallel t/x/y lists kept sorted by t (stable
        # for ties — bisect_right preserves arrival order of equal
        # timestamps, so the duplicate stage still sees first-arrival-wins).
        self._pend_t: List[float] = []
        self._pend_x: List[float] = []
        self._pend_y: List[float] = []
        self._watermark = -math.inf
        self._carry_seal = False  # a split marked with no fixes released yet
        self._out: List[FeedChunk] = []
        self._cur: tuple = ()

    # -- public API ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Fixes currently held back by the reorder buffer."""
        return len(self._pend_t)

    def process(
        self,
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> List[FeedChunk]:
        """Fold one batch of raw fixes in; return released, cleaned chunks.

        With the reorder buffer active the returned fixes can lag the
        input (recent fixes are still held back); :meth:`flush` drains
        the remainder at seal time.
        """
        self._begin()
        counters = self.counters
        lateness = self.policy.max_lateness
        buffered = lateness > 0.0
        for i in range(len(ts)):
            t = ts[i]
            x = xs[i]
            y = ys[i]
            counters.fixes_in += 1
            if not (
                math.isfinite(t) and math.isfinite(x) and math.isfinite(y)
            ):
                counters.drop(DROP_NON_FINITE)
                continue
            if not buffered:
                self._stage(t, x, y)
                continue
            self._insert(t, x, y)
            if t > self._watermark:
                self._watermark = t
            self._release(self._watermark - lateness)
        return self._end()

    def flush(self) -> List[FeedChunk]:
        """Drain the reorder buffer through the stages (stream sealing)."""
        self._begin()
        self._release(math.inf)
        return self._end()

    # -- chunk assembly ------------------------------------------------------

    def _begin(self) -> None:
        self._out = []
        self._cur = (array("d"), array("d"), array("d"))
        # A split marked at the tail of the previous batch whose chunk
        # never materialized must not be lost across batch boundaries.
        # (carry_seal stays set until a fix follows it.)

    def _end(self) -> List[FeedChunk]:
        out = self._out
        cur = self._cur
        if len(cur[0]):
            out.append((self._carry_seal, cur[0], cur[1], cur[2]))
            self._carry_seal = False
        self._out = []
        self._cur = ()
        return out

    def _mark_split(self, reason: str) -> None:
        self.counters.split(reason)
        cur = self._cur
        if len(cur[0]):
            self._out.append((self._carry_seal, cur[0], cur[1], cur[2]))
            self._cur = (array("d"), array("d"), array("d"))
        self._carry_seal = True

    # -- reorder buffer ------------------------------------------------------

    def _insert(self, t: float, x: float, y: float) -> None:
        pend_t = self._pend_t
        pos = bisect_right(pend_t, t)
        if pos != len(pend_t):
            self.counters.reordered += 1
        pend_t.insert(pos, t)
        self._pend_x.insert(pos, x)
        self._pend_y.insert(pos, y)
        self.counters.buffered += 1
        if len(pend_t) > self.policy.reorder_capacity:
            self._release_one()

    def _release(self, horizon: float) -> None:
        pend_t = self._pend_t
        while pend_t and pend_t[0] <= horizon:
            self._release_one()

    def _release_one(self) -> None:
        t = self._pend_t.pop(0)
        x = self._pend_x.pop(0)
        y = self._pend_y.pop(0)
        self.counters.buffered -= 1
        self._stage(t, x, y)

    # -- the stage pipeline (post-buffer, fixes in released order) -----------

    def _stage(self, t: float, x: float, y: float) -> None:
        counters = self.counters
        policy = self.policy
        last_t = self._last_t

        # Ordering: behind the accepted stream is unrecoverable here —
        # either the buffer was off, or the fix outran its lateness window.
        if t < last_t:
            counters.drop(DROP_OUT_OF_ORDER)
            return

        if self._has_last:
            dt = t - last_t
            dx = x - self._last_x
            dy = y - self._last_y

            # Duplicates: first arrival wins on a shared timestamp; near
            # duplicates collapse retransmit jitter.
            if policy.drop_duplicates:
                if dt == 0.0:
                    counters.drop(DROP_DUPLICATE)
                    return
                if dt <= policy.dup_dt and (
                    dx * dx + dy * dy
                    <= policy.dup_epsilon_m * policy.dup_epsilon_m
                ):
                    counters.drop(DROP_DUPLICATE)
                    return

            # Gap: long silence ends the trajectory; the fix after the
            # gap starts a fresh one, with the speed gate suspended (no
            # meaningful reference across the silence).
            if policy.gap_seconds is not None and dt > policy.gap_seconds:
                self._mark_split(SPLIT_GAP)
                self._gate_suspended = True

            # Teleport gate: implied speed above the policy maximum.
            if (
                policy.max_speed_mps is not None
                and not self._gate_suspended
            ):
                limit = policy.max_speed_mps * dt
                if dx * dx + dy * dy > limit * limit:
                    rejoin = policy.teleport_rejoin
                    if rejoin is None or self._teleport_run + 1 < rejoin:
                        self._teleport_run += 1
                        counters.drop(DROP_TELEPORT)
                        return
                    # The device insists: concede a relocation — accept
                    # the fix but start a new trajectory there.
                    self._mark_split(SPLIT_TELEPORT)

        # Accepted.
        self._teleport_run = 0
        self._gate_suspended = False
        self._has_last = True
        self._last_t = t
        self._last_x = x
        self._last_y = y
        cur = self._cur
        cur[0].append(t)
        cur[1].append(x)
        cur[2].append(y)
        counters.fixes_out += 1


# -- geodetic boundary validation -------------------------------------------
#
# The geodetic engine is the only layer that still sees degrees, so
# latitude/longitude domain validation belongs at its boundary: without a
# policy an invalid fix raises with the device and index named (instead
# of a bare ``math domain error`` from deep inside the projection); with
# a policy the invalid fixes are dropped and counted here, before zone
# selection or projection ever sees them.


def first_invalid_geo(
    lats: Sequence[float], lons: Sequence[float]
) -> Tuple[int, str, float] | None:
    """``(index, reason, offending_value)`` of the first invalid
    coordinate, or ``None`` for a fully valid batch.

    Valid means finite latitude in [-90, 90] and finite longitude in
    [-180, 180] (both antimeridian spellings are legal; zone selection
    canonicalizes them).  NaN fails the range comparison, so one
    comparison pair per column covers both reasons.
    """
    for i in range(len(lats)):
        lat = lats[i]
        if not (-90.0 <= lat <= 90.0):
            reason = (
                DROP_OUT_OF_RANGE if math.isfinite(lat) else DROP_NON_FINITE
            )
            return i, reason, lat
        lon = lons[i]
        if not (-180.0 <= lon <= 180.0):
            reason = (
                DROP_OUT_OF_RANGE if math.isfinite(lon) else DROP_NON_FINITE
            )
            return i, reason, lon
    return None


def filter_geo_columns(
    ts: Sequence[float],
    lats: Sequence[float],
    lons: Sequence[float],
    counters: FeedCounters,
) -> Tuple[Sequence[float], Sequence[float], Sequence[float]]:
    """The valid subsequence of a geodetic batch, drops counted.

    Returns the input sequences untouched when every fix is valid (the
    overwhelmingly common case — one screening pass, no copies).  Dropped
    fixes are charged to ``counters`` as ``fixes_in`` plus the per-reason
    drop, so the ledger reconciles with the sanitizer counting only the
    surviving fixes downstream.
    """
    bad = first_invalid_geo(lats, lons)
    if bad is None:
        return ts, lats, lons
    keep_t = array("d", ts[: bad[0]])
    keep_lat = array("d", lats[: bad[0]])
    keep_lon = array("d", lons[: bad[0]])
    for i in range(bad[0], len(ts)):
        lat = lats[i]
        lon = lons[i]
        if not (-90.0 <= lat <= 90.0):
            counters.fixes_in += 1
            counters.drop(
                DROP_OUT_OF_RANGE if math.isfinite(lat) else DROP_NON_FINITE
            )
            continue
        if not (-180.0 <= lon <= 180.0):
            counters.fixes_in += 1
            counters.drop(
                DROP_OUT_OF_RANGE if math.isfinite(lon) else DROP_NON_FINITE
            )
            continue
        keep_t.append(ts[i])
        keep_lat.append(lat)
        keep_lon.append(lon)
    return keep_t, keep_lat, keep_lon
