"""Seeded fleet simulation: many devices, one interleaved fix stream.

Builds the input shape the fleet engine is designed for — thousands of
devices reporting on a shared clock, their fixes arriving interleaved the
way a gateway would deliver them.  Each device runs its own correlated
random walk (:func:`repro.compression.evaluate.synthetic_track` with a
per-device seed), and the interleaving rotates the device order every tick
so batches never align with device boundaries.  Fully deterministic for a
given seed, pure stdlib, columnar from the start.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..compression.bqs import BQSCompressor
from ..compression.evaluate import synthetic_track
from ..model.columns import TrajectoryColumns
from ..model.projection import LocalTangentProjection

__all__ = [
    "DisorderSummary",
    "bqs_fleet_factory",
    "fleet_fixes",
    "gps_fleet_fixes",
    "inject_disorder",
    "iter_fix_batches",
    "iter_geo_fix_batches",
]


def bqs_fleet_factory(epsilon: float, device_id) -> BQSCompressor:
    """The canonical per-device BQS factory for fleet demos and benchmarks.

    Module-level (and ``functools.partial``-friendly) so
    :class:`~repro.engine.sharded.ShardedStreamEngine` workers can unpickle
    it; the engine CLI and the fleet benchmark share it so they always
    measure the same compressor configuration.
    """
    return BQSCompressor(epsilon)


def fleet_fixes(
    devices: int,
    fixes_per_device: int,
    seed: int = 7,
) -> Tuple[List[str], TrajectoryColumns]:
    """One interleaved fleet stream as parallel ``(device_ids, columns)``.

    Returns ``ids`` (one device id per fix, e.g. ``"dev-0042"``) parallel
    to a :class:`TrajectoryColumns` of the fixes.  All devices share the
    1 Hz clock, so timestamps are non-decreasing globally as well as per
    device; within each tick the reporting order rotates by one device per
    tick.
    """
    if devices < 1:
        raise ValueError(f"need at least one device, got {devices!r}")
    if fixes_per_device < 1:
        raise ValueError(
            f"need at least one fix per device, got {fixes_per_device!r}"
        )
    names = [f"dev-{i:04d}" for i in range(devices)]
    tracks = [
        synthetic_track(fixes_per_device, seed=seed * 10_007 + i)
        for i in range(devices)
    ]
    ids: List[str] = []
    cols = TrajectoryColumns()
    append_t = cols.ts.append
    append_x = cols.xs.append
    append_y = cols.ys.append
    for tick in range(fixes_per_device):
        offset = tick % devices
        for j in range(devices):
            d = (j + offset) % devices
            p = tracks[d][tick]
            ids.append(names[d])
            append_t(p.t)
            append_x(p.x)
            append_y(p.y)
    return ids, cols


#: Anchor clusters for the multi-zone GPS fleet: two UTM zone boundaries
#: (32|33 at 12°E, 22|23 at 48°W), one per hemisphere, so one simulated
#: fleet exercises zone selection, hemisphere stamping and
#: boundary-straddling tracks at once.  Longitudes sit close enough to the
#: boundary that a ±10 km track crosses it.
_MULTI_ZONE_ANCHORS = (
    (41.3, 11.98),  # zone 32/33 boundary, northern hemisphere
    (41.3, 12.02),  # just east of it: first fix usually lands in zone 33
    (-23.3, -48.02),  # zone 22/23 boundary, southern hemisphere
    (-23.3, -47.98),
)


def gps_fleet_fixes(
    devices: int,
    fixes_per_device: int,
    seed: int = 7,
    *,
    origin: Tuple[float, float] = (47.36, 8.55),
    multi_zone: bool = False,
    noise_m: float = 0.0,
) -> Tuple[List[str], array, array, array]:
    """One interleaved fleet stream as raw GPS: ``(ids, ts, lats, lons)``.

    The geodetic twin of :func:`fleet_fixes`: the same per-device
    correlated random walks and the same rotating interleave, but each
    device's metric track is placed on the ellipsoid through its own
    seeded :class:`~repro.model.projection.LocalTangentProjection` anchor
    (the simulator's metres → degrees leg; ingestion projects them back
    with the full UTM machinery, so the round trip crosses two distinct
    projections the way real GPS data crosses receiver and consumer).

    ``origin`` anchors a single-zone fleet (default: zone 32, north);
    ``multi_zone`` scatters devices over :data:`_MULTI_ZONE_ANCHORS`
    instead — two zone boundaries, both hemispheres, tracks crossing the
    boundary.  ``noise_m`` adds seeded Gaussian metre noise to every fix
    before unprojection (the noisy-GPS variant).  Fully deterministic for
    a given seed.
    """
    ids, cols = fleet_fixes(devices, fixes_per_device, seed=seed)
    anchor_rng = random.Random(seed * 40_009 + devices)
    projections = {}
    # Device names in index order, recovered from the stream itself (the
    # first tick reports devices 0..n-1 in order) — no duplication of
    # fleet_fixes' id format here.
    for i, name in enumerate(dict.fromkeys(ids)):
        if multi_zone:
            base_lat, base_lon = _MULTI_ZONE_ANCHORS[
                i % len(_MULTI_ZONE_ANCHORS)
            ]
        else:
            base_lat, base_lon = origin
        projections[name] = LocalTangentProjection(
            ref_latitude=base_lat + anchor_rng.uniform(-0.02, 0.02),
            ref_longitude=base_lon + anchor_rng.uniform(-0.02, 0.02),
        )
    noise_rng = random.Random(seed * 48_611 + devices) if noise_m > 0.0 else None
    n = len(ids)
    lats = array("d", bytes(8 * n))
    lons = array("d", bytes(8 * n))
    xs, ys = cols.xs, cols.ys
    for k in range(n):
        x = xs[k]
        y = ys[k]
        if noise_rng is not None:
            x += noise_rng.gauss(0.0, noise_m)
            y += noise_rng.gauss(0.0, noise_m)
        lat, lon = projections[ids[k]].inverse(x, y)
        lats[k] = lat
        lons[k] = lon
    return ids, cols.ts, lats, lons


@dataclass(frozen=True)
class DisorderSummary:
    """What :func:`inject_disorder` actually planted — the ground truth a
    dirty-feed run is audited against (each artifact kind maps to exactly
    one sanitizer counter under the matching policy)."""

    swaps: int  #: adjacent same-device fixes exchanged in arrival order
    dups: int  #: fixes emitted twice back to back
    teleports: int  #: fixes displaced by the teleport offset
    gaps: int  #: silences inserted by shifting a device's tail timestamps

    @property
    def artifacts(self) -> int:
        return self.swaps + self.dups + self.teleports + self.gaps


def inject_disorder(
    device_ids: Sequence[str],
    ts: Sequence[float],
    c1: Sequence[float],
    c2: Sequence[float],
    *,
    seed: int = 7,
    swaps: int = 0,
    dups: int = 0,
    teleports: int = 0,
    gaps: int = 0,
    teleport_offset: float = 50_000.0,
    gap_offset: float = 3_600.0,
) -> Tuple[List[str], array, array, array, DisorderSummary]:
    """A seeded dirty copy of an interleaved fleet stream.

    Plants four artifact kinds into a clean ``(ids, ts, c1, c2)`` stream
    (planar metres or geodetic degrees — the coordinate columns are
    opaque):

    * **swap** — two adjacent same-device fixes exchange their global
      arrival positions: one fix arrives exactly one tick late.  Under a
      drop-mode policy that is one ``out_of_order`` drop; with a reorder
      buffer (``max_lateness >=`` the tick) it is repaired, counted in
      ``reordered``, and the output matches the clean run.
    * **dup** — a fix is emitted twice back to back: one ``duplicate``
      drop.
    * **teleport** — a fix's first coordinate is displaced by
      ``teleport_offset`` (metres planar; pass degrees of *latitude* for
      geodetic streams so the spike never crosses a UTM zone boundary):
      one ``teleport`` drop under a max-speed gate.
    * **gap** — a device's timestamps from a cut onward all shift by
      ``gap_offset`` seconds: one ``gap`` split under a gap policy (and
      no drops — every fix is genuine).

    Artifact sites are chosen by a seeded RNG with at least two clean
    fixes between any two artifacts on the same device and the first fix
    of every device left untouched (so geodetic zone selection and the
    speed gate's anchor see clean data).  The planted counts are exact —
    the returned :class:`DisorderSummary` is ground truth the ingest's
    :class:`~repro.engine.sanitize.FeedReport` can be asserted against —
    and a placement that cannot satisfy the spacing raises ``ValueError``
    rather than silently planting less.
    """
    n = len(device_ids)
    if not (len(ts) == len(c1) == len(c2) == n):
        raise ValueError(
            "ids/columns length mismatch: "
            f"ids={n}, ts={len(ts)}, c1={len(c1)}, c2={len(c2)}"
        )
    for name, count in (
        ("swaps", swaps),
        ("dups", dups),
        ("teleports", teleports),
        ("gaps", gaps),
    ):
        if count < 0:
            raise ValueError(f"{name} must be >= 0, got {count!r}")
    # Device-local fix positions in the global stream, in arrival order.
    positions: Dict[str, List[int]] = {}
    for g, device_id in enumerate(device_ids):
        positions.setdefault(device_id, []).append(g)
    names = list(positions)
    rng = random.Random(seed * 65_537 + n)
    used: Dict[str, Set[int]] = {name: set() for name in names}

    def place(kind: str, lo_pad: int, hi_pad: int, footprint: int) -> Tuple[str, int]:
        """A seeded (device, device-local index) site with ±2 spacing from
        every other artifact on that device."""
        for _ in range(400):
            device_id = names[rng.randrange(len(names))]
            length = len(positions[device_id])
            lo, hi = lo_pad, length - hi_pad
            if hi <= lo:
                continue
            j = rng.randrange(lo, hi)
            taken = used[device_id]
            if any(
                abs(j + k - u) <= 2 for u in taken for k in range(footprint)
            ):
                continue
            for k in range(footprint):
                taken.add(j + k)
            return device_id, j
        # Argument validation of the caller's requested artifact counts
        # against the stream they supplied — ValueError is the right type,
        # it just is not expressible as a guard over one parameter name.
        # repro: ignore[RA04] rejects caller-requested counts that cannot fit the caller's stream — argument validation
        raise ValueError(
            f"could not place {kind} artifact: stream too small or too "
            f"dirty for the requested counts"
        )

    ts_out = array("d", ts)
    c1_out = array("d", c1)
    c2_out = array("d", c2)
    # Gaps first: they rewrite a suffix of a device's timestamps, which
    # every later artifact must see (a swap near the shifted region still
    # swaps fixes 1 tick apart, both shifted identically).
    for _ in range(gaps):
        device_id, j = place("gap", 2, 3, 2)
        for g in positions[device_id][j:]:
            ts_out[g] += gap_offset
    for _ in range(teleports):
        device_id, j = place("teleport", 1, 2, 1)
        c1_out[positions[device_id][j]] += teleport_offset
    swap_map: Dict[int, int] = {}
    for _ in range(swaps):
        device_id, j = place("swap", 1, 2, 2)
        a = positions[device_id][j]
        b = positions[device_id][j + 1]
        swap_map[a] = b
        swap_map[b] = a
    dup_sites: Set[int] = set()
    for _ in range(dups):
        device_id, j = place("dup", 1, 1, 1)
        dup_sites.add(positions[device_id][j])
    ids_dirty: List[str] = []
    ts_dirty = array("d")
    c1_dirty = array("d")
    c2_dirty = array("d")
    for g in range(n):
        source = swap_map.get(g, g)
        ids_dirty.append(device_ids[source])
        ts_dirty.append(ts_out[source])
        c1_dirty.append(c1_out[source])
        c2_dirty.append(c2_out[source])
        if g in dup_sites:
            ids_dirty.append(device_ids[g])
            ts_dirty.append(ts_out[g])
            c1_dirty.append(c1_out[g])
            c2_dirty.append(c2_out[g])
    return (
        ids_dirty,
        ts_dirty,
        c1_dirty,
        c2_dirty,
        DisorderSummary(swaps=swaps, dups=dups, teleports=teleports, gaps=gaps),
    )


def iter_geo_fix_batches(
    device_ids: Sequence[str],
    ts: Sequence[float],
    lats: Sequence[float],
    lons: Sequence[float],
    batch_size: int,
) -> Iterator[Tuple[Sequence[str], Sequence[float], Sequence[float], Sequence[float]]]:
    """Chunk an interleaved GPS stream into ``(ids, ts, lats, lons)`` batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
    n = len(device_ids)
    if not (len(ts) == len(lats) == len(lons) == n):
        raise ValueError(
            "ids/columns length mismatch: "
            f"ids={n}, ts={len(ts)}, lats={len(lats)}, lons={len(lons)}"
        )
    for start in range(0, n, batch_size):
        stop = start + batch_size
        yield (
            device_ids[start:stop],
            ts[start:stop],
            lats[start:stop],
            lons[start:stop],
        )


def iter_fix_batches(
    device_ids: Sequence[str],
    cols: TrajectoryColumns,
    batch_size: int,
) -> Iterator[Tuple[Sequence[str], Sequence[float], Sequence[float], Sequence[float]]]:
    """Chunk an interleaved fleet stream into ``(ids, ts, xs, ys)`` batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
    n = len(device_ids)
    if len(cols) != n:
        raise ValueError(
            f"ids/columns length mismatch: {n} vs {len(cols)}"
        )
    for start in range(0, n, batch_size):
        stop = start + batch_size
        yield (
            device_ids[start:stop],
            cols.ts[start:stop],
            cols.xs[start:stop],
            cols.ys[start:stop],
        )
