"""Seeded fleet simulation: many devices, one interleaved fix stream.

Builds the input shape the fleet engine is designed for — thousands of
devices reporting on a shared clock, their fixes arriving interleaved the
way a gateway would deliver them.  Each device runs its own correlated
random walk (:func:`repro.compression.evaluate.synthetic_track` with a
per-device seed), and the interleaving rotates the device order every tick
so batches never align with device boundaries.  Fully deterministic for a
given seed, pure stdlib, columnar from the start.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..compression.bqs import BQSCompressor
from ..compression.evaluate import synthetic_track
from ..model.columns import TrajectoryColumns

__all__ = ["bqs_fleet_factory", "fleet_fixes", "iter_fix_batches"]


def bqs_fleet_factory(epsilon: float, device_id) -> BQSCompressor:
    """The canonical per-device BQS factory for fleet demos and benchmarks.

    Module-level (and ``functools.partial``-friendly) so
    :class:`~repro.engine.sharded.ShardedStreamEngine` workers can unpickle
    it; the engine CLI and the fleet benchmark share it so they always
    measure the same compressor configuration.
    """
    return BQSCompressor(epsilon)


def fleet_fixes(
    devices: int,
    fixes_per_device: int,
    seed: int = 7,
) -> Tuple[List[str], TrajectoryColumns]:
    """One interleaved fleet stream as parallel ``(device_ids, columns)``.

    Returns ``ids`` (one device id per fix, e.g. ``"dev-0042"``) parallel
    to a :class:`TrajectoryColumns` of the fixes.  All devices share the
    1 Hz clock, so timestamps are non-decreasing globally as well as per
    device; within each tick the reporting order rotates by one device per
    tick.
    """
    if devices < 1:
        raise ValueError(f"need at least one device, got {devices!r}")
    if fixes_per_device < 1:
        raise ValueError(
            f"need at least one fix per device, got {fixes_per_device!r}"
        )
    names = [f"dev-{i:04d}" for i in range(devices)]
    tracks = [
        synthetic_track(fixes_per_device, seed=seed * 10_007 + i)
        for i in range(devices)
    ]
    ids: List[str] = []
    cols = TrajectoryColumns()
    append_t = cols.ts.append
    append_x = cols.xs.append
    append_y = cols.ys.append
    for tick in range(fixes_per_device):
        offset = tick % devices
        for j in range(devices):
            d = (j + offset) % devices
            p = tracks[d][tick]
            ids.append(names[d])
            append_t(p.t)
            append_x(p.x)
            append_y(p.y)
    return ids, cols


def iter_fix_batches(
    device_ids: Sequence[str],
    cols: TrajectoryColumns,
    batch_size: int,
) -> Iterator[Tuple[Sequence[str], Sequence[float], Sequence[float], Sequence[float]]]:
    """Chunk an interleaved fleet stream into ``(ids, ts, xs, ys)`` batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
    n = len(device_ids)
    if len(cols) != n:
        raise ValueError(
            f"ids/columns length mismatch: {n} vs {len(cols)}"
        )
    for start in range(0, n, batch_size):
        stop = start + batch_size
        yield (
            device_ids[start:stop],
            cols.ts[start:stop],
            cols.xs[start:stop],
            cols.ys[start:stop],
        )
