"""GPS-native ingestion: the geodetic front-end over the stream engine.

The paper builds every BQS in a *UTM-projected* frame (Section V-A), but
real traffic arrives as ``(device_id, t, lat, lon)`` fixes.
:class:`GeoStreamEngine` closes that gap: it accepts geodetic batches in
the same interleaved shapes :class:`~repro.engine.core.StreamEngine`
accepts planar ones, auto-selects each device's UTM zone from its **first
fix** (:meth:`UTMProjection.for_coordinate` — the standard convention for
single-deployment trajectory datasets), projects each device's columns in
bulk through the vectorized ``forward_columns`` path (no
``LocationPoint`` / ``PlanePoint`` objects per fix — the zero-object
ingestion path stays zero-object), and feeds the projected columns to an
inner :class:`StreamEngine`.

**Zone stamping.**  When a stream is sealed — explicitly or by an
eviction policy — the front-end stamps the device's
:class:`~repro.model.projection.UTMProjection` onto the trajectory's
``frame`` field before it reaches any sink, ledger or callback.  The
storage layer reads that frame: :class:`~repro.storage.store.StoreSink` /
:func:`~repro.storage.codec.encode_trajectory` write the UTM
zone/hemisphere into every blob header, so a store built from GPS traffic
answers lat/lon queries (:func:`repro.storage.query.geo_range_query`)
without out-of-band context.

A sealed device's projection is forgotten with its stream: a device that
reappears after eviction re-selects its zone from its new first fix, the
geodetic mirror of the engine's fresh-compressor semantics (a vehicle
evicted in zone 32 may well wake up in zone 33).  A device that *crosses*
a zone boundary mid-stream keeps its first fix's frame by default — UTM
projects consistently outside the nominal strip, so the plane stays
continuous.  With a :class:`~repro.engine.sanitize.SanitizePolicy` whose
``split_zones`` is on, the front-end instead **splits at the boundary**:
the stream is sealed in the old frame (stamped with its zone like any
seal) and reopened in the new zone selected from the first fix past the
boundary, with ``zone_margin_deg`` of hysteresis so a device straddling
the boundary does not shatter its track into per-fix trajectories.

For multi-core scale-out, :class:`~repro.engine.sharded.
ShardedStreamEngine` accepts ``geodetic=True`` and builds one
``GeoStreamEngine`` per worker — lat/lon columns cross the pipe and the
projection work parallelizes with the compression.

Latitude/longitude are validated **at this boundary** (finite, |lat| ≤
90°, |lon| ≤ 180°): without a policy an invalid fix raises
:class:`~repro.engine.core.BatchIngestError` naming the device and fix
index *before* any of the batch is dispatched (instead of a bare ``math
domain error`` from deep inside the projection); with a policy invalid
fixes are dropped and charged to the device's feed ledger.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import replace
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

from ..compression.base import StreamingCompressor
from ..model.projection import UTMProjection, utm_zone_for
from ..model.trajectory import CompressedTrajectory
from .core import (
    BatchIngestError,
    DeviceId,
    StreamEngine,
    group_fix_columns,
    group_fix_stream,
)
from .journal import EmitGate, FixJournal, RecoveryReport
from .sanitize import (
    SPLIT_ZONE,
    FeedReport,
    SanitizePolicy,
    filter_geo_columns,
    first_invalid_geo,
)
from .sinks import CallbackSink, ListSink, Sink

__all__ = ["GeoStreamEngine", "GeoFix"]

GeoFix = Tuple[DeviceId, float, float, float]  #: ``(device_id, t, lat, lon)``


def _stamped(
    trajectory: CompressedTrajectory, projection: UTMProjection | None
) -> CompressedTrajectory:
    """The trajectory with ``frame`` set (cheap field rebuild, no copy of
    the key-point tuple)."""
    if projection is None or trajectory.frame is projection:
        return trajectory
    return replace(trajectory, frame=projection)


def _zone_cuts(
    lats: Sequence[float],
    lons: Sequence[float],
    projection: UTMProjection,
    margin: float,
) -> List[int] | None:
    """Indices where a device's columns exit their current UTM frame.

    A fix cuts only when it is *both* outside the frame's nominal 6°
    longitude strip widened by ``margin`` degrees of hysteresis *and*
    assigned a different zone by :func:`utm_zone_for` (which honours the
    Norway/Svalbard exceptions, so a zone-32V widening never splits).
    Later fixes are judged against the frame opened at the previous cut.
    Returns ``None`` on the no-split fast path — the whole batch stays
    inside the widened strip, decided by two C-speed column scans.
    """
    west = projection.zone * 6.0 - 186.0
    east = west + 6.0
    if min(lons) >= west - margin and max(lons) <= east + margin:
        return None
    zone = projection.zone
    cuts: List[int] = []
    for i in range(len(lons)):
        lon = lons[i]
        if west - margin <= lon <= east + margin:
            continue
        new_zone = utm_zone_for(lats[i], lon)
        if new_zone == zone:
            continue
        cuts.append(i)
        zone = new_zone
        west = zone * 6.0 - 186.0
        east = west + 6.0
    return cuts or None


class _FrameStampSink:
    """Inner-engine sink: stamp the device's UTM frame, fan out, forget.

    Sits between the inner :class:`StreamEngine` and the caller-facing
    sinks so *every* seal path — ``finish_device``, ``finish_all``, LRU
    and idle evictions, and the policy path's gap/teleport splits —
    delivers zone-stamped trajectories.  The projection is popped only
    when the device's stream is actually closed (keeping the registry
    bounded by *open* streams and making a reappearing device re-select
    its zone); a mid-stream split emits with the device still open, and
    the frame must survive for the sub-trajectories that follow.
    """

    __slots__ = ("_projections", "_sinks", "_gate", "is_open")

    def __init__(
        self,
        projections: Dict[DeviceId, UTMProjection],
        sinks: Sequence[Sink],
        gate: EmitGate,
    ) -> None:
        self._projections = projections
        self._sinks = tuple(sinks)
        #: The geodetic front-end's emit gate: seals are checkpointed in
        #: (and, during recovery, suppressed against) the *geodetic*
        #: journal, after stamping — the inner engine has no journal.
        self._gate = gate
        #: The inner engine's ``is_open`` — assigned right after that
        #: engine is constructed (it takes this sink as an argument).
        self.is_open: Callable[[DeviceId], bool] | None = None

    def emit(
        self, device_id: Hashable, trajectory: CompressedTrajectory
    ) -> None:
        if self.is_open is not None and self.is_open(device_id):
            projection = self._projections.get(device_id)
        else:
            projection = self._projections.pop(device_id, None)
        stamped = _stamped(trajectory, projection)
        self._gate.deliver(device_id, stamped, self._sinks)

    def close(self) -> None:
        pass


class GeoStreamEngine:
    """Multiplex GPS device streams: project per device, compress, stamp.

    Mirrors the :class:`~repro.engine.core.StreamEngine` constructor and
    batch interface, with columns in **degrees** (``lats``/``lons``
    replacing ``xs``/``ys``) — so the sharded engine's workers can host
    either engine behind the same message protocol.

    Args:
        compressor_factory: ``factory(device_id) -> StreamingCompressor``,
            exactly as for :class:`StreamEngine`.
        max_devices / idle_timeout: the inner engine's bounded-memory
            policies, unchanged.
        on_finish: ``(device_id, trajectory)`` callback; receives
            zone-stamped trajectories.
        collect: keep stamped trajectories in :attr:`results`.
        sink: any :class:`~repro.engine.sinks.Sink`; receives every
            stamped sealed stream, evictions included.
        policy: a :class:`~repro.engine.sanitize.SanitizePolicy` enables
            the feed sanitizer exactly as for :class:`StreamEngine`, plus
            the geodetic-only behaviours: invalid lat/lon fixes are
            dropped (instead of failing the batch) and, with
            ``split_zones`` on, a device crossing a UTM zone boundary is
            sealed in its old frame and reopened in the new.
    """

    def __init__(
        self,
        compressor_factory: Callable[[DeviceId], StreamingCompressor],
        *,
        max_devices: int | None = None,
        idle_timeout: float | None = None,
        on_finish: Callable[[DeviceId, CompressedTrajectory], None] | None = None,
        collect: bool = True,
        sink: Sink | None = None,
        policy: SanitizePolicy | None = None,
        journal: FixJournal | str | os.PathLike | None = None,
        journal_fsync: bool = False,
    ) -> None:
        #: Open streams' UTM projections (device id -> zone frame chosen
        #: from the device's first fix); entries live exactly as long as
        #: the stream.
        self._projections: Dict[DeviceId, UTMProjection] = {}
        #: Stamped sealed trajectories per device, when ``collect`` is on.
        self.results: Dict[DeviceId, List[CompressedTrajectory]] = {}
        if journal is not None and not isinstance(journal, FixJournal):
            journal = FixJournal(journal, fsync=journal_fsync, geodetic=True)
        if journal is not None and not journal.geodetic:
            raise ValueError(
                "a planar journal cannot drive a GeoStreamEngine"
            )
        #: The geodetic write-ahead journal: raw lat/lon batches are
        #: journaled *before* validation or projection, so replay passes
        #: through the identical zone-selection and sanitation pipeline.
        self._journal = journal
        self._gate = EmitGate(journal)
        self.recovery: RecoveryReport | None = None
        sinks: List[Sink] = []
        if collect:
            sinks.append(ListSink(self.results))
        if on_finish is not None:
            sinks.append(CallbackSink(on_finish))
        if sink is not None:
            sinks.append(sink)
        stamp_sink = _FrameStampSink(self._projections, sinks, self._gate)
        self._engine = StreamEngine(
            compressor_factory,
            max_devices=max_devices,
            idle_timeout=idle_timeout,
            collect=False,
            sink=stamp_sink,
            policy=policy,
        )
        stamp_sink.is_open = self._engine.is_open
        self._policy = policy

    # -- introspection -------------------------------------------------------

    @property
    def active_devices(self) -> int:
        return self._engine.active_devices

    @property
    def total_fixes(self) -> int:
        return self._engine.total_fixes

    @property
    def sealed_trajectories(self) -> int:
        return self._engine.sealed_trajectories

    @property
    def evictions(self) -> int:
        return self._engine.evictions

    @property
    def clock(self) -> float:
        return self._engine.clock

    def device_ids(self) -> list[DeviceId]:
        return self._engine.device_ids()

    def projection_for(self, device_id: DeviceId) -> UTMProjection | None:
        """The UTM frame of an *open* stream (``None`` once sealed)."""
        return self._projections.get(device_id)

    @property
    def policy(self) -> SanitizePolicy | None:
        """The sanitization policy, or ``None`` on the trusted fast path."""
        return self._policy

    @property
    def journal(self) -> FixJournal | None:
        """The geodetic write-ahead journal, or ``None`` when not durable."""
        return self._journal

    def feed_report(self) -> FeedReport:
        """The merged sanitation ledger (boundary drops included)."""
        return self._engine.feed_report()

    def device_feed_reports(self) -> Dict[DeviceId, FeedReport]:
        """Per-device sanitation ledgers (empty without a policy)."""
        return self._engine.device_feed_reports()

    # -- ingestion -----------------------------------------------------------

    def push_fix(
        self, device_id: DeviceId, t: float, latitude: float, longitude: float
    ) -> None:
        """Fold a single GPS fix in (convenience; batches are the fast path)."""
        self.push_columns((device_id,), (t,), (latitude,), (longitude,))

    def push_batch(self, fixes: Iterable[GeoFix]) -> int:
        """Fold an interleaved ``(device_id, t, lat, lon)`` batch in."""
        return self._project_and_dispatch(group_fix_stream(fixes))

    def push_columns(
        self,
        device_ids: Sequence[DeviceId],
        ts: Sequence[float],
        lats: Sequence[float],
        lons: Sequence[float],
    ) -> int:
        """Fold a columnar interleaved geodetic batch in.

        Same shape as :meth:`StreamEngine.push_columns` with the
        coordinate columns in degrees; the zero-object GPS path end to
        end (group → pick/reuse zone → bulk-project → compress).
        """
        return self._project_and_dispatch(
            group_fix_columns(
                device_ids, ts, lats, lons, c1_name="lats", c2_name="lons"
            )
        )

    def push_grouped(
        self,
        groups: Dict[DeviceId, tuple],
    ) -> int:
        """Fold per-device ``(ts, lats, lons)`` degree columns in without
        regrouping (mirrors :meth:`StreamEngine.push_grouped`; the entry
        point for the sharded shm transport, whose frames arrive already
        device-grouped)."""
        for device_id, (ts, lats, lons) in groups.items():
            if not (len(ts) == len(lats) == len(lons)):
                raise ValueError(
                    f"column length mismatch for device {device_id!r}: "
                    f"ts={len(ts)}, lats={len(lats)}, lons={len(lons)}"
                )
        return self._project_and_dispatch(groups)

    def _project_and_dispatch(
        self, groups: Dict[DeviceId, tuple[array, array, array]]
    ) -> int:
        """Validate, project each device's columns in its frame, dispatch.

        Boundary validation comes first: without a policy one invalid
        lat/lon fails the *whole* batch (consumed = 0) with the device
        and index named; with a policy invalid fixes are dropped into the
        device's ledger before zone selection or projection sees them.
        With ``split_zones`` on, a device's columns are sliced at zone
        exits — the first slice dispatches batched with everyone else's,
        each continuation seals the old frame and reopens in the new.
        """
        if self._journal is not None and not self._gate.replaying:
            # Write-ahead at the geodetic boundary: raw degrees, before
            # validation or projection, so replay reproduces the whole
            # pipeline (zone selection included) bit for bit.
            self._journal.log_push(groups)
        projections = self._projections
        policy = self._policy
        engine = self._engine
        if policy is None:
            for device_id, (ts, lats, lons) in groups.items():
                bad = first_invalid_geo(lats, lons)
                if bad is not None:
                    index, reason, value = bad
                    raise BatchIngestError(
                        f"device {device_id!r}: fix {index}: {reason} "
                        f"coordinate {value!r} [batch consumed 0 fixes]",
                        device_id=device_id,
                        index=index,
                    )
        else:
            cleaned: Dict[DeviceId, tuple] = {}
            for device_id, (ts, lats, lons) in groups.items():
                ts, lats, lons = filter_geo_columns(
                    ts, lats, lons, engine._counters(device_id)
                )
                if len(ts):
                    cleaned[device_id] = (ts, lats, lons)
            groups = cleaned
        split_zones = policy is not None and policy.split_zones
        projected: Dict[DeviceId, tuple[array, array, array]] = {}
        batch_frames: Dict[DeviceId, UTMProjection] = {}
        continuations: List[tuple] = []
        for device_id, (ts, lats, lons) in groups.items():
            projection = projections.get(device_id)
            if projection is None:
                projection = UTMProjection.for_coordinate(lats[0], lons[0])
                projections[device_id] = projection
            batch_frames[device_id] = projection
            cuts = (
                _zone_cuts(lats, lons, projection, policy.zone_margin_deg)
                if split_zones
                else None
            )
            if not cuts:
                xs, ys = projection.forward_columns(lats, lons)
                projected[device_id] = (ts, xs, ys)
            else:
                first = cuts[0]
                xs, ys = projection.forward_columns(lats[:first], lons[:first])
                projected[device_id] = (ts[:first], xs, ys)
                bounds = list(cuts) + [len(ts)]
                continuations.append(
                    (
                        device_id,
                        [
                            (ts[s:e], lats[s:e], lons[s:e])
                            for s, e in zip(bounds, bounds[1:])
                        ],
                    )
                )
        consumed = 0
        try:
            consumed = engine.push_grouped(projected)
        finally:
            # Re-sync the registry with the inner engine's open streams —
            # dispatch can desync it in both directions:
            # * An eviction *inside* the dispatch (LRU cap hit by a new
            #   device, or the idle policy at batch end) pops the sealed
            #   stream's projection — but if fixes for that device later
            #   in the same batch reopened it, the reopened compressor
            #   already holds coordinates projected in the old frame; a
            #   later batch would select a fresh zone and stamp
            #   mixed-frame output.  Restore the batch's frame.
            # * A dispatch error (e.g. backwards timestamps in another
            #   device's group) can leave a newly-registered device with
            #   no opened stream; drop the entry so its zone is
            #   re-selected from the first fix actually ingested.  The
            #   policy path can also close a stream without an emit (an
            #   all-dropped device sealed empty), which the stamp sink
            #   never sees — prune every closed device so the registry
            #   stays bounded by open streams.
            for device_id, projection in batch_frames.items():
                if engine.is_open(device_id):
                    projections.setdefault(device_id, projection)
            for device_id in [
                d for d in projections if not engine.is_open(d)
            ]:
                del projections[device_id]
        # Continuation slices (zone splits): seal what the device has in
        # its old frame — the stamp sink delivers it zone-stamped like any
        # seal — then reopen in the zone of the first fix past the
        # boundary and dispatch the slice there.
        for device_id, slices in continuations:
            counters = engine._counters(device_id)
            for ts, lats, lons in slices:
                if engine.is_open(device_id):
                    sealed = engine.finish_device(device_id)
                    if sealed.original_count:
                        counters.split(SPLIT_ZONE)
                projection = UTMProjection.for_coordinate(lats[0], lons[0])
                projections[device_id] = projection
                xs, ys = projection.forward_columns(lats, lons)
                consumed += engine.push_grouped({device_id: (ts, xs, ys)})
                if not engine.is_open(device_id):
                    projections.pop(device_id, None)
        return consumed

    # -- sealing -------------------------------------------------------------

    def finish_device(self, device_id: DeviceId) -> CompressedTrajectory:
        """Seal one device's stream now; returns the stamped trajectory."""
        if (
            self._journal is not None
            and not self._gate.replaying
            and self._engine.is_open(device_id)
        ):
            self._journal.log_finish(device_id)
        projection = self._projections.get(device_id)
        try:
            return _stamped(self._engine.finish_device(device_id), projection)
        finally:
            # The stamp sink pops on emit, but the policy path suppresses
            # empty seals — drop the entry unconditionally so a reborn
            # device always re-selects its zone.
            self._projections.pop(device_id, None)

    def finish_all(self) -> Dict[DeviceId, List[CompressedTrajectory]]:
        """Seal every open stream; returns the stamped collected results.

        With a journal this is its quiesce point (see
        :meth:`StreamEngine.finish_all`): the journal rotates once every
        stream is sealed and checkpointed.
        """
        journal = None
        if self._journal is not None and not self._gate.replaying:
            journal = self._journal
            journal.log_finish_all()
        self._engine.finish_all()
        self._projections.clear()
        if journal is not None:
            journal.rotate()
        return self.results

    # -- crash recovery ------------------------------------------------------

    @classmethod
    def recover(
        cls,
        journal_dir: FixJournal | str | os.PathLike,
        compressor_factory: Callable[[DeviceId], StreamingCompressor],
        *,
        max_devices: int | None = None,
        idle_timeout: float | None = None,
        on_finish: Callable[[DeviceId, CompressedTrajectory], None] | None = None,
        collect: bool = True,
        sink: Sink | None = None,
        policy: SanitizePolicy | None = None,
        dedupe_store=None,
        journal_fsync: bool = False,
    ) -> "GeoStreamEngine":
        """Rebuild a geodetic engine's pre-crash state from its journal.

        The geodetic twin of :meth:`StreamEngine.recover`: the journal
        holds raw lat/lon batches, and replaying them through the same
        validation → zone-selection → projection → sanitation pipeline
        (with the same configuration) reproduces the crashed engine's
        state — projections registry included — exactly.  Already
        delivered seals are suppressed via the journal's checkpoints and,
        through ``dedupe_store``, the emit-before-checkpoint window.
        """
        journal = journal_dir
        if not isinstance(journal, FixJournal):
            journal = FixJournal(
                journal, fsync=journal_fsync, geodetic=True, keep_records=True
            )
        engine = cls(
            compressor_factory,
            max_devices=max_devices,
            idle_timeout=idle_timeout,
            on_finish=on_finish,
            collect=collect,
            sink=sink,
            policy=policy,
            journal=journal,
        )
        engine.recovery = engine._replay(dedupe_store)
        return engine

    def _replay(self, dedupe_store) -> RecoveryReport:
        journal = self._journal
        gate = self._gate
        gate.begin_replay(journal.seal_counts(), dedupe_store)
        batches = fixes = 0
        try:
            for record in journal.iter_records():
                kind = record[0]
                if kind == "push":
                    batches += 1
                    try:
                        fixes += self._project_and_dispatch(record[2])
                    except BatchIngestError:
                        # Same error, same point, same consumed prefix as
                        # the crashed run — the state already matches.
                        pass
                elif kind == "finish":
                    if self._engine.is_open(record[1]):
                        self.finish_device(record[1])
                else:  # finish_all
                    self.finish_all()
        finally:
            suppressed, deduped, reemitted = gate.end_replay()
        journal.drop_records()
        return RecoveryReport(
            last_seq=journal.last_seq,
            batches_replayed=batches,
            fixes_replayed=fixes,
            seals_suppressed=suppressed,
            seals_deduped=deduped,
            seals_reemitted=reemitted,
            damaged_bytes=journal.damaged_bytes,
            segments=len(journal.segments),
        )
