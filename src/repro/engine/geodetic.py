"""GPS-native ingestion: the geodetic front-end over the stream engine.

The paper builds every BQS in a *UTM-projected* frame (Section V-A), but
real traffic arrives as ``(device_id, t, lat, lon)`` fixes.
:class:`GeoStreamEngine` closes that gap: it accepts geodetic batches in
the same interleaved shapes :class:`~repro.engine.core.StreamEngine`
accepts planar ones, auto-selects each device's UTM zone from its **first
fix** (:meth:`UTMProjection.for_coordinate` — the standard convention for
single-deployment trajectory datasets), projects each device's columns in
bulk through the vectorized ``forward_columns`` path (no
``LocationPoint`` / ``PlanePoint`` objects per fix — the zero-object
ingestion path stays zero-object), and feeds the projected columns to an
inner :class:`StreamEngine`.

**Zone stamping.**  When a stream is sealed — explicitly or by an
eviction policy — the front-end stamps the device's
:class:`~repro.model.projection.UTMProjection` onto the trajectory's
``frame`` field before it reaches any sink, ledger or callback.  The
storage layer reads that frame: :class:`~repro.storage.store.StoreSink` /
:func:`~repro.storage.codec.encode_trajectory` write the UTM
zone/hemisphere into every blob header, so a store built from GPS traffic
answers lat/lon queries (:func:`repro.storage.query.geo_range_query`)
without out-of-band context.

A sealed device's projection is forgotten with its stream: a device that
reappears after eviction re-selects its zone from its new first fix, the
geodetic mirror of the engine's fresh-compressor semantics (a vehicle
evicted in zone 32 may well wake up in zone 33).  A device that *crosses*
a zone boundary mid-stream keeps its first fix's frame — UTM projects
consistently outside the nominal strip, so the plane stays continuous;
splitting at the boundary is future work (see ROADMAP).

For multi-core scale-out, :class:`~repro.engine.sharded.
ShardedStreamEngine` accepts ``geodetic=True`` and builds one
``GeoStreamEngine`` per worker — lat/lon columns cross the pipe and the
projection work parallelizes with the compression.

Latitude/longitude columns are trusted like every columnar input (no
range validation per fix); a genuinely out-of-domain latitude surfaces as
the projection's own ``ValueError`` / ``math domain error``.
"""

from __future__ import annotations

from array import array
from dataclasses import replace
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

from ..compression.base import StreamingCompressor
from ..model.projection import UTMProjection
from ..model.trajectory import CompressedTrajectory
from .core import DeviceId, StreamEngine, group_fix_columns, group_fix_stream
from .sinks import CallbackSink, ListSink, Sink

__all__ = ["GeoStreamEngine", "GeoFix"]

GeoFix = Tuple[DeviceId, float, float, float]  #: ``(device_id, t, lat, lon)``


def _stamped(
    trajectory: CompressedTrajectory, projection: UTMProjection | None
) -> CompressedTrajectory:
    """The trajectory with ``frame`` set (cheap field rebuild, no copy of
    the key-point tuple)."""
    if projection is None or trajectory.frame is projection:
        return trajectory
    return replace(trajectory, frame=projection)


class _FrameStampSink:
    """Inner-engine sink: stamp the device's UTM frame, fan out, forget.

    Sits between the inner :class:`StreamEngine` and the caller-facing
    sinks so *every* seal path — ``finish_device``, ``finish_all``, LRU
    and idle evictions — delivers zone-stamped trajectories.  Popping the
    projection on seal keeps the registry bounded by *open* streams and
    makes a reappearing device re-select its zone.
    """

    __slots__ = ("_projections", "_sinks")

    def __init__(
        self,
        projections: Dict[DeviceId, UTMProjection],
        sinks: Sequence[Sink],
    ) -> None:
        self._projections = projections
        self._sinks = tuple(sinks)

    def emit(
        self, device_id: Hashable, trajectory: CompressedTrajectory
    ) -> None:
        projection = self._projections.pop(device_id, None)
        stamped = _stamped(trajectory, projection)
        for sink in self._sinks:
            sink.emit(device_id, stamped)

    def close(self) -> None:
        pass


class GeoStreamEngine:
    """Multiplex GPS device streams: project per device, compress, stamp.

    Mirrors the :class:`~repro.engine.core.StreamEngine` constructor and
    batch interface, with columns in **degrees** (``lats``/``lons``
    replacing ``xs``/``ys``) — so the sharded engine's workers can host
    either engine behind the same message protocol.

    Args:
        compressor_factory: ``factory(device_id) -> StreamingCompressor``,
            exactly as for :class:`StreamEngine`.
        max_devices / idle_timeout: the inner engine's bounded-memory
            policies, unchanged.
        on_finish: ``(device_id, trajectory)`` callback; receives
            zone-stamped trajectories.
        collect: keep stamped trajectories in :attr:`results`.
        sink: any :class:`~repro.engine.sinks.Sink`; receives every
            stamped sealed stream, evictions included.
    """

    def __init__(
        self,
        compressor_factory: Callable[[DeviceId], StreamingCompressor],
        *,
        max_devices: int | None = None,
        idle_timeout: float | None = None,
        on_finish: Callable[[DeviceId, CompressedTrajectory], None] | None = None,
        collect: bool = True,
        sink: Sink | None = None,
    ) -> None:
        #: Open streams' UTM projections (device id -> zone frame chosen
        #: from the device's first fix); entries live exactly as long as
        #: the stream.
        self._projections: Dict[DeviceId, UTMProjection] = {}
        #: Stamped sealed trajectories per device, when ``collect`` is on.
        self.results: Dict[DeviceId, List[CompressedTrajectory]] = {}
        sinks: List[Sink] = []
        if collect:
            sinks.append(ListSink(self.results))
        if on_finish is not None:
            sinks.append(CallbackSink(on_finish))
        if sink is not None:
            sinks.append(sink)
        self._engine = StreamEngine(
            compressor_factory,
            max_devices=max_devices,
            idle_timeout=idle_timeout,
            collect=False,
            sink=_FrameStampSink(self._projections, sinks),
        )

    # -- introspection -------------------------------------------------------

    @property
    def active_devices(self) -> int:
        return self._engine.active_devices

    @property
    def total_fixes(self) -> int:
        return self._engine.total_fixes

    @property
    def sealed_trajectories(self) -> int:
        return self._engine.sealed_trajectories

    @property
    def evictions(self) -> int:
        return self._engine.evictions

    @property
    def clock(self) -> float:
        return self._engine.clock

    def device_ids(self) -> list[DeviceId]:
        return self._engine.device_ids()

    def projection_for(self, device_id: DeviceId) -> UTMProjection | None:
        """The UTM frame of an *open* stream (``None`` once sealed)."""
        return self._projections.get(device_id)

    # -- ingestion -----------------------------------------------------------

    def push_fix(
        self, device_id: DeviceId, t: float, latitude: float, longitude: float
    ) -> None:
        """Fold a single GPS fix in (convenience; batches are the fast path)."""
        self.push_columns((device_id,), (t,), (latitude,), (longitude,))

    def push_batch(self, fixes: Iterable[GeoFix]) -> int:
        """Fold an interleaved ``(device_id, t, lat, lon)`` batch in."""
        return self._project_and_dispatch(group_fix_stream(fixes))

    def push_columns(
        self,
        device_ids: Sequence[DeviceId],
        ts: Sequence[float],
        lats: Sequence[float],
        lons: Sequence[float],
    ) -> int:
        """Fold a columnar interleaved geodetic batch in.

        Same shape as :meth:`StreamEngine.push_columns` with the
        coordinate columns in degrees; the zero-object GPS path end to
        end (group → pick/reuse zone → bulk-project → compress).
        """
        return self._project_and_dispatch(
            group_fix_columns(
                device_ids, ts, lats, lons, c1_name="lats", c2_name="lons"
            )
        )

    def _project_and_dispatch(
        self, groups: Dict[DeviceId, tuple[array, array, array]]
    ) -> int:
        """Project each device's columns in its frame; feed the inner engine."""
        projections = self._projections
        projected: Dict[DeviceId, tuple[array, array, array]] = {}
        batch_frames: Dict[DeviceId, UTMProjection] = {}
        for device_id, (ts, lats, lons) in groups.items():
            projection = projections.get(device_id)
            if projection is None:
                projection = UTMProjection.for_coordinate(lats[0], lons[0])
                projections[device_id] = projection
            batch_frames[device_id] = projection
            xs, ys = projection.forward_columns(lats, lons)
            projected[device_id] = (ts, xs, ys)
        try:
            return self._engine.push_grouped(projected)
        finally:
            # Re-sync the registry with the inner engine's open streams
            # for every device this batch touched — dispatch can desync it
            # in both directions:
            # * An eviction *inside* the dispatch (LRU cap hit by a new
            #   device, or the idle policy at batch end) pops the sealed
            #   stream's projection — but if fixes for that device later
            #   in the same batch reopened it, the reopened compressor
            #   already holds coordinates projected in the old frame; a
            #   later batch would select a fresh zone and stamp
            #   mixed-frame output.  Restore the batch's frame.
            # * A dispatch error (e.g. backwards timestamps in another
            #   device's group) can leave a newly-registered device with
            #   no opened stream; drop the entry so its zone is
            #   re-selected from the first fix actually ingested, and the
            #   registry stays bounded by open streams.
            for device_id, projection in batch_frames.items():
                if self._engine.is_open(device_id):
                    projections.setdefault(device_id, projection)
                else:
                    projections.pop(device_id, None)

    # -- sealing -------------------------------------------------------------

    def finish_device(self, device_id: DeviceId) -> CompressedTrajectory:
        """Seal one device's stream now; returns the stamped trajectory."""
        projection = self._projections.get(device_id)
        return _stamped(self._engine.finish_device(device_id), projection)

    def finish_all(self) -> Dict[DeviceId, List[CompressedTrajectory]]:
        """Seal every open stream; returns the stamped collected results."""
        self._engine.finish_all()
        return self.results
