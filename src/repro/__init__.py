"""Reproduction of "Bounded Quadrant System: Error-bounded trajectory
compression on the go" (Liu et al., ICDE 2015).

Three layers, lowest first:

``repro.geometry``
    Dependency-free 2-D/3-D math kernels: distances, hulls, the wedge/box
    bound helpers behind the BQS deviation bounds.

``repro.model``
    The data model: GPS and plane points, projections, trajectories,
    compressed trajectories, temporal reconstruction, online statistics.

``repro.compression``
    The streaming compressors — BQS, Fast-BQS, dead reckoning, uniform
    sampling, Douglas-Peucker, TD-TR — behind one online protocol, plus the
    evaluation harness.

``repro.engine``
    The multi-stream fleet engine: multiplex thousands of device streams
    over per-device compressors, with bounded-memory eviction policies and
    an optional sharded multiprocessing mode.

``repro.bench``
    The reproducible benchmark subsystem (``python -m repro.bench``):
    seeded synthetic workloads, a two-pass timing harness with built-in
    correctness audits, and a comparison mode for recorded runs.

The most common entry points are re-exported here.
"""

from . import bench, compression, engine, geometry, model
from .compression import (
    BQSCompressor,
    DeadReckoningCompressor,
    DouglasPeucker,
    FastBQSCompressor,
    StreamingCompressor,
    TDTRCompressor,
    UniformSampler,
    evaluate_suite,
    synthetic_track,
)
from .engine import ShardedStreamEngine, StreamEngine
from .geometry import DistanceMetric
from .model import (
    CompressedTrajectory,
    LocationPoint,
    PlanePoint,
    Segment,
    Trajectory,
    TrajectoryColumns,
)

__all__ = [
    "BQSCompressor",
    "CompressedTrajectory",
    "DeadReckoningCompressor",
    "DistanceMetric",
    "DouglasPeucker",
    "FastBQSCompressor",
    "LocationPoint",
    "PlanePoint",
    "Segment",
    "ShardedStreamEngine",
    "StreamEngine",
    "StreamingCompressor",
    "TDTRCompressor",
    "Trajectory",
    "TrajectoryColumns",
    "UniformSampler",
    "bench",
    "compression",
    "engine",
    "evaluate_suite",
    "geometry",
    "model",
    "synthetic_track",
]
