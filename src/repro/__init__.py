"""Reproduction of "Bounded Quadrant System: Error-bounded trajectory
compression on the go" (Liu et al., ICDE 2015).

Three layers, lowest first:

``repro.geometry``
    Dependency-free 2-D/3-D math kernels: distances, hulls, the wedge/box
    bound helpers behind the BQS deviation bounds.

``repro.model``
    The data model: GPS and plane points, projections, trajectories,
    compressed trajectories, temporal reconstruction, online statistics.

``repro.compression``
    The streaming compressors — BQS, Fast-BQS, dead reckoning, uniform
    sampling, Douglas-Peucker, TD-TR — behind one online protocol, plus the
    evaluation harness.

``repro.engine``
    The multi-stream fleet engine: multiplex thousands of device streams
    over per-device compressors, with bounded-memory eviction policies,
    an optional sharded multiprocessing mode, and the ``Sink`` protocol
    every sealed stream is delivered through.

``repro.storage``
    Persistence and queries: a compact binary codec for compressed
    trajectories, an append-only segmented store with crash-safe appends
    and compaction, and error-aware spatio-temporal queries answered
    directly over the compressed records (``python -m repro.storage``).

``repro.bench``
    The reproducible benchmark subsystem (``python -m repro.bench``):
    seeded synthetic workloads, a two-pass timing harness with built-in
    correctness audits, and a comparison mode for recorded runs.

The most common entry points are re-exported here.
"""

from . import bench, compression, engine, geometry, model, storage
from .compression import (
    BQSCompressor,
    DeadReckoningCompressor,
    DouglasPeucker,
    FastBQSCompressor,
    StreamingCompressor,
    TDTRCompressor,
    UniformSampler,
    evaluate_suite,
    synthetic_track,
)
from .engine import GeoStreamEngine, ListSink, ShardedStreamEngine, Sink, StreamEngine
from .geometry import DistanceMetric
from .model import (
    CompressedTrajectory,
    LocationPoint,
    PlanePoint,
    Segment,
    Trajectory,
    TrajectoryColumns,
)
from .storage import StoreSink, TrajectoryStore

__all__ = [
    "BQSCompressor",
    "CompressedTrajectory",
    "DeadReckoningCompressor",
    "DistanceMetric",
    "DouglasPeucker",
    "FastBQSCompressor",
    "GeoStreamEngine",
    "ListSink",
    "LocationPoint",
    "PlanePoint",
    "Segment",
    "ShardedStreamEngine",
    "Sink",
    "StoreSink",
    "StreamEngine",
    "StreamingCompressor",
    "TDTRCompressor",
    "Trajectory",
    "TrajectoryColumns",
    "TrajectoryStore",
    "UniformSampler",
    "bench",
    "compression",
    "engine",
    "evaluate_suite",
    "geometry",
    "model",
    "storage",
    "synthetic_track",
]
