"""Reproduction of "Bounded Quadrant System: Error-bounded trajectory
compression on the go" (Liu et al., ICDE 2015).

Three layers, lowest first:

``repro.geometry``
    Dependency-free 2-D/3-D math kernels: distances, hulls, the wedge/box
    bound helpers behind the BQS deviation bounds.

``repro.model``
    The data model: GPS and plane points, projections, trajectories,
    compressed trajectories, temporal reconstruction, online statistics.

``repro.compression``
    The streaming compressors — BQS, Fast-BQS, dead reckoning, uniform
    sampling, Douglas-Peucker, TD-TR — behind one online protocol, plus the
    evaluation harness.

``repro.bench``
    The reproducible benchmark subsystem (``python -m repro.bench``):
    seeded synthetic workloads, a two-pass timing harness with built-in
    correctness audits, and a comparison mode for recorded runs.

The most common entry points are re-exported here.
"""

from . import bench, compression, geometry, model
from .compression import (
    BQSCompressor,
    DeadReckoningCompressor,
    DouglasPeucker,
    FastBQSCompressor,
    StreamingCompressor,
    TDTRCompressor,
    UniformSampler,
    evaluate_suite,
    synthetic_track,
)
from .geometry import DistanceMetric
from .model import (
    CompressedTrajectory,
    LocationPoint,
    PlanePoint,
    Segment,
    Trajectory,
)

__all__ = [
    "BQSCompressor",
    "CompressedTrajectory",
    "DeadReckoningCompressor",
    "DistanceMetric",
    "DouglasPeucker",
    "FastBQSCompressor",
    "LocationPoint",
    "PlanePoint",
    "Segment",
    "StreamingCompressor",
    "TDTRCompressor",
    "Trajectory",
    "UniformSampler",
    "bench",
    "compression",
    "evaluate_suite",
    "geometry",
    "model",
    "synthetic_track",
]
