"""Diff two benchmark result files and flag regressions.

``python -m repro.bench compare OLD.json NEW.json`` joins the two runs on
``(workload, algorithm)`` and reports the throughput ratio for every pair
present in both files.  A pair whose new throughput falls below
``threshold × old`` is flagged as a regression; a pair whose key-point
output changed (count, or exact points via the digest) is flagged as a
**behaviour change**, which is never timing noise.  Exit-code policy is
caller-selected: ``--strict`` exits non-zero on any flag,
``--fail-on-behaviour`` only on behaviour changes — the mode CI runs
against the committed baseline, so a digest drift fails the build while
cross-machine throughput deltas merely warn.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

__all__ = ["load_bench_file", "diff_benches", "format_diff"]

_Key = Tuple[str, str]


def load_bench_file(path: str) -> dict:
    """Load one ``BENCH_*.json`` document."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "results" not in doc:
        raise ValueError(f"{path}: not a bench result file (no 'results' key)")
    return doc


def _by_key(doc: dict) -> Dict[_Key, dict]:
    return {(r["workload"], r["algorithm"]): r for r in doc["results"]}


def diff_benches(
    old: dict, new: dict, threshold: float = 0.8
) -> Tuple[List[dict], List[dict]]:
    """Compare two bench documents.

    Returns ``(rows, flagged)``: one row per joined (workload, algorithm)
    with old/new throughput and the ratio, and the subset flagged as a
    regression (ratio below ``threshold``) or a behaviour change
    (key-point count or digest differs).  Each row carries a
    ``"behaviour"`` bool so callers can separate behaviour changes (always
    a bug) from timing deltas (possibly noise).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold!r}")
    old_rows = _by_key(old)
    new_rows = _by_key(new)
    rows: List[dict] = []
    flagged: List[dict] = []

    def add_row(row: dict) -> None:
        rows.append(row)
        if row["reasons"]:
            flagged.append(row)

    for key in sorted(old_rows.keys() & new_rows.keys()):
        o = old_rows[key]
        n = new_rows[key]
        old_pps = float(o["points_per_sec"])
        new_pps = float(n["points_per_sec"])
        ratio = new_pps / old_pps if old_pps > 0.0 else float("inf")
        timing_reasons = []
        behaviour_reasons = []
        if ratio < threshold:
            timing_reasons.append(f"throughput fell to {ratio:.2f}x")
        if o["points"] == n["points"]:
            if o["key_points"] != n["key_points"]:
                behaviour_reasons.append(
                    f"key points changed {o['key_points']} -> {n['key_points']}"
                )
            elif (
                o.get("key_digest")
                and n.get("key_digest")
                and o["key_digest"] != n["key_digest"]
            ):
                # Same count, different points — still a behaviour change.
                behaviour_reasons.append(
                    "key points moved (same count, digest differs)"
                )
        row = {
            "workload": key[0],
            "algorithm": key[1],
            "old_points_per_sec": old_pps,
            "new_points_per_sec": new_pps,
            "ratio": ratio,
            "reasons": timing_reasons + behaviour_reasons,
            "behaviour": bool(behaviour_reasons),
        }
        add_row(row)

    # Fleet section (schema 2+): joined on mode.  The digests cover every
    # device's exact output, so drift here is an engine behaviour change —
    # the in-run audit only checks modes against each other, not against
    # the recorded baseline.  Schema 8 widens the sharded modes with a
    # transport dimension ("sharded-N" stays the pipe baseline, so older
    # files keep joining; "sharded-N-shm" pairs up once both sides record
    # it) — the intersection join needs no special casing.
    old_fleet = {r["mode"]: r for r in old.get("fleet", [])}
    new_fleet = {r["mode"]: r for r in new.get("fleet", [])}
    for mode in sorted(old_fleet.keys() & new_fleet.keys()):
        o = old_fleet[mode]
        n = new_fleet[mode]
        old_fps = float(o["fixes_per_sec"])
        new_fps = float(n["fixes_per_sec"])
        ratio = new_fps / old_fps if old_fps > 0.0 else float("inf")
        timing_reasons = []
        behaviour_reasons = []
        if ratio < threshold:
            timing_reasons.append(f"throughput fell to {ratio:.2f}x")
        if (
            o["devices"] == n["devices"]
            and o["fixes_per_device"] == n["fixes_per_device"]
            and o["key_digest"] != n["key_digest"]
        ):
            behaviour_reasons.append("fleet output moved (digest differs)")
        add_row(
            {
                "workload": "fleet",
                "algorithm": mode,
                "old_points_per_sec": old_fps,
                "new_points_per_sec": new_fps,
                "ratio": ratio,
                "reasons": timing_reasons + behaviour_reasons,
                "behaviour": bool(behaviour_reasons),
            }
        )

    # Dirty-fleet section (schema 6+): one record, joined on the workload
    # shape.  Both digests are behaviour: the dirty digest pins the
    # sanitizer's exact decisions over the injected disorder, the clean
    # digest pins sanitizer-off output on clean input (it must also stay
    # bit-identical to the clean fleet engine record).  The feed ledger is
    # integer ground truth — any drift in drops/splits is a sanitizer
    # behaviour change, never noise.
    old_dirty = old.get("dirty_fleet")
    new_dirty = new.get("dirty_fleet")
    if old_dirty and new_dirty:
        old_fps = float(old_dirty["fixes_per_sec"])
        new_fps = float(new_dirty["fixes_per_sec"])
        ratio = new_fps / old_fps if old_fps > 0.0 else float("inf")
        timing_reasons = []
        behaviour_reasons = []
        if ratio < threshold:
            timing_reasons.append(f"throughput fell to {ratio:.2f}x")
        if (
            old_dirty["devices"] == new_dirty["devices"]
            and old_dirty["fixes_per_device"] == new_dirty["fixes_per_device"]
        ):
            if old_dirty["key_digest"] != new_dirty["key_digest"]:
                behaviour_reasons.append(
                    "dirty-feed output moved (digest differs)"
                )
            if old_dirty["clean_digest"] != new_dirty["clean_digest"]:
                behaviour_reasons.append(
                    "clean-feed output moved (digest differs)"
                )
            if old_dirty["feed"] != new_dirty["feed"]:
                behaviour_reasons.append(
                    "feed ledger changed (drops/splits moved)"
                )
        add_row(
            {
                "workload": "dirty-fleet",
                "algorithm": "sanitized",
                "old_points_per_sec": old_fps,
                "new_points_per_sec": new_fps,
                "ratio": ratio,
                "reasons": timing_reasons + behaviour_reasons,
                "behaviour": bool(behaviour_reasons),
            }
        )

    # Durability section (schema 7+): one record, joined on the workload
    # shape.  Both digests are behaviour: the store digest pins the exact
    # bytes the reference (journal-off) ingest persisted, the recovered
    # digest pins what the crash-recovery replay rebuilt — the in-run
    # audit already forces the two equal *within* a run, so a drift
    # against the baseline means the engine's persisted output (or the
    # replay that reproduces it) moved.  Journal overhead and recovery
    # wall are timing-only.
    old_dur = old.get("durability")
    new_dur = new.get("durability")
    if old_dur and new_dur:
        old_fps = float(old_dur["journal_fixes_per_sec"])
        new_fps = float(new_dur["journal_fixes_per_sec"])
        ratio = new_fps / old_fps if old_fps > 0.0 else float("inf")
        timing_reasons = []
        behaviour_reasons = []
        if ratio < threshold:
            timing_reasons.append(
                f"journaled ingest fell to {ratio:.2f}x"
            )
        if (
            old_dur["devices"] == new_dur["devices"]
            and old_dur["fixes_per_device"] == new_dur["fixes_per_device"]
        ):
            if old_dur["store_digest"] != new_dur["store_digest"]:
                behaviour_reasons.append(
                    "persisted store moved (digest differs)"
                )
            if old_dur["recovered_digest"] != new_dur["recovered_digest"]:
                behaviour_reasons.append(
                    "recovered store moved (digest differs)"
                )
        add_row(
            {
                "workload": "durability",
                "algorithm": "journal+recover",
                "old_points_per_sec": old_fps,
                "new_points_per_sec": new_fps,
                "ratio": ratio,
                "reasons": timing_reasons + behaviour_reasons,
                "behaviour": bool(behaviour_reasons),
            }
        )

    # Storage section (schema 3+): one record; the blob digest pins the
    # codec's exact bytes, the query digest pins both query answers.
    old_storage = old.get("storage")
    new_storage = new.get("storage")
    if old_storage and new_storage:
        old_ips = float(old_storage["ingest_fixes_per_sec"])
        new_ips = float(new_storage["ingest_fixes_per_sec"])
        ratio = new_ips / old_ips if old_ips > 0.0 else float("inf")
        timing_reasons = []
        behaviour_reasons = []
        if ratio < threshold:
            timing_reasons.append(f"ingest throughput fell to {ratio:.2f}x")
        comparable = (
            old_storage["points"] == new_storage["points"]
            and old_storage["fleet_devices"] == new_storage["fleet_devices"]
            and old_storage["fleet_fixes"] == new_storage["fleet_fixes"]
        )
        if comparable:
            if old_storage["blob_digest"] != new_storage["blob_digest"]:
                behaviour_reasons.append(
                    "codec output moved (blob digest differs)"
                )
            if old_storage["query_digest"] != new_storage["query_digest"]:
                behaviour_reasons.append(
                    "query results moved (digest differs)"
                )
        add_row(
            {
                "workload": "storage",
                "algorithm": "codec+query",
                "old_points_per_sec": old_ips,
                "new_points_per_sec": new_ips,
                "ratio": ratio,
                "reasons": timing_reasons + behaviour_reasons,
                "behaviour": bool(behaviour_reasons),
            }
        )

    # Scale section (schema 5+): synthetic stores joined on size.  The
    # workload is deterministic, so the match digest pins the candidate
    # selection of the mmap fast path — drift is a pruning or ordering
    # bug, never noise.  The throughput-like metric is records opened per
    # second down the sidecar path (open time is the stage's headline).
    old_scale = {
        (r["records"], r["devices"]): r for r in old.get("scale", [])
    }
    new_scale = {
        (r["records"], r["devices"]): r for r in new.get("scale", [])
    }
    for key in sorted(old_scale.keys() & new_scale.keys()):
        o = old_scale[key]
        n = new_scale[key]
        old_rps = (
            key[0] / float(o["open_indexed_seconds"])
            if float(o["open_indexed_seconds"]) > 0.0
            else 0.0
        )
        new_rps = (
            key[0] / float(n["open_indexed_seconds"])
            if float(n["open_indexed_seconds"]) > 0.0
            else 0.0
        )
        ratio = new_rps / old_rps if old_rps > 0.0 else float("inf")
        timing_reasons = []
        behaviour_reasons = []
        if ratio < threshold:
            timing_reasons.append(f"indexed open slowed to {ratio:.2f}x")
        if o["match_digest"] != n["match_digest"]:
            behaviour_reasons.append(
                "scale query results moved (digest differs)"
            )
        elif o["matches"] != n["matches"]:
            behaviour_reasons.append(
                f"scale matches changed {o['matches']} -> {n['matches']}"
            )
        add_row(
            {
                "workload": "scale",
                "algorithm": f"{key[0]}rec",
                "old_points_per_sec": old_rps,
                "new_points_per_sec": new_rps,
                "ratio": ratio,
                "reasons": timing_reasons + behaviour_reasons,
                "behaviour": bool(behaviour_reasons),
            }
        )

    # Geodetic section (schema 4+): fleet variants joined on name.  The
    # query digest covers the definite/exact/approximate device sets of
    # the geographic range query — membership decisions with metre-scale
    # margins, so drift is behaviour, not libm noise.  The projection
    # throughput records are timing-only and are not diffed (per-machine).
    old_geo = {
        r["variant"]: r
        for r in (old.get("geodetic") or {}).get("fleets", [])
    }
    new_geo = {
        r["variant"]: r
        for r in (new.get("geodetic") or {}).get("fleets", [])
    }
    for variant in sorted(old_geo.keys() & new_geo.keys()):
        o = old_geo[variant]
        n = new_geo[variant]
        old_ips = float(o["ingest_fixes_per_sec"])
        new_ips = float(n["ingest_fixes_per_sec"])
        ratio = new_ips / old_ips if old_ips > 0.0 else float("inf")
        timing_reasons = []
        behaviour_reasons = []
        if ratio < threshold:
            timing_reasons.append(f"ingest throughput fell to {ratio:.2f}x")
        if (
            o["devices"] == n["devices"]
            and o["fixes_per_device"] == n["fixes_per_device"]
        ):
            if o["query_digest"] != n["query_digest"]:
                behaviour_reasons.append(
                    "geodetic query results moved (digest differs)"
                )
            if o["zones"] != n["zones"]:
                behaviour_reasons.append(
                    f"stamped zones changed {o['zones']} -> {n['zones']}"
                )
        add_row(
            {
                "workload": "geodetic",
                "algorithm": variant,
                "old_points_per_sec": old_ips,
                "new_points_per_sec": new_ips,
                "ratio": ratio,
                "reasons": timing_reasons + behaviour_reasons,
                "behaviour": bool(behaviour_reasons),
            }
        )
    return rows, flagged


def format_diff(rows: List[dict]) -> str:
    """Plain-text comparison table with flags in the last column."""
    header = (
        f"{'workload':<16}{'algorithm':<18}{'old pts/s':>12}"
        f"{'new pts/s':>12}{'ratio':>8}  flags"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['workload']:<16}{r['algorithm']:<18}"
            f"{r['old_points_per_sec']:>12,.0f}"
            f"{r['new_points_per_sec']:>12,.0f}"
            f"{r['ratio']:>8.2f}  {'; '.join(r['reasons']) or 'ok'}"
        )
    return "\n".join(lines)
