"""Storage benchmark: codec density, ingest throughput, query latency.

Two measured stages, both digest-audited so the CI smoke run catches
behavioural drift in the storage layer the same way it catches key-point
drift in the compressors:

**Codec stage**
    Compress the random-walk workload with BQS, encode the result, and
    record the end-to-end density: bytes on disk per *original* GPS
    point (the honest figure — raw GPS → BQS key points → codec bytes)
    and per stored key point, plus the ratio against the paper's
    12-byte-per-sample storage model.  The blob's SHA-256 is the
    behaviour digest: any codec or compressor change that moves a byte
    shows up in ``compare``.

**Store/query stage**
    Ingest a seeded fleet through ``StreamEngine -> StoreSink`` into a
    temporary store, then time a time-window query and an ε-expanded
    range query over the compressed records against a brute-force scan
    of the raw in-memory fixes answering the same questions.  Results
    are digest-checked between the two (the exact-mode guarantee), and
    the digest is recorded for ``compare``.

**Scale stage** (:func:`run_scale_bench`)
    The sidecar fast path's reason to exist, measured: deterministic
    synthetic stores at several record counts, each opened both ways —
    sidecar-indexed (footers + mmap) and ``index_sidecars=False`` (the
    legacy full envelope scan) — with a geographic rectangle query run
    down both paths.  The match lists must agree record for record
    (``BenchError`` otherwise) and their digest is the behaviour pin
    ``compare`` joins on; the open walls are the headline numbers the
    BENCHMARKS.md "open time vs store size" table reports.

Query walls are best-of-N like every other number in this subsystem;
the brute-force walls give the "vs scanning everything raw" context the
BENCHMARKS.md storage section reports.
"""

from __future__ import annotations

import functools
import hashlib
import math
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass
from typing import Callable

from ..compression.bqs import BQSCompressor
from ..engine.core import StreamEngine
from ..engine.simulate import bqs_fleet_factory, fleet_fixes, iter_fix_batches
from ..model.columns import TrajectoryColumns
from ..model.trajectory import GPS_SAMPLE_BYTES
from ..storage.codec import decode_trajectory, encode_trajectory
from ..storage.query import range_query, time_window_query
from ..storage.store import StoreSink, TrajectoryStore
from .harness import BenchError
from .workloads import make_workload

__all__ = ["ScaleRecord", "StorageRecord", "run_scale_bench", "run_storage_bench"]


@dataclass(frozen=True)
class StorageRecord:
    """The storage layer's measurements for one seeded configuration."""

    workload: str  #: codec-stage workload name
    points: int  #: raw points behind the codec stage
    epsilon: float
    key_points: int  #: BQS key points the codec stage stored
    encoded_bytes: int
    bytes_per_key_point: float
    bytes_per_raw_point: float  #: encoded bytes / original GPS points
    raw_gps_bytes: int  #: points * GPS_SAMPLE_BYTES (paper storage model)
    end_to_end_ratio: float  #: raw_gps_bytes / encoded_bytes (higher = better)
    encode_seconds: float
    decode_seconds: float
    blob_digest: str  #: sha256[:16] of the encoded blob (behaviour pin)
    fleet_devices: int
    fleet_fixes: int
    ingest_fixes_per_sec: float
    store_bytes: int
    time_query_seconds: float  #: best-of-N store time-window query wall
    time_query_brute_seconds: float  #: brute scan over raw fixes
    range_query_seconds: float  #: best-of-N store ε-expanded range wall
    range_query_brute_seconds: float
    query_digest: str  #: sha256[:16] over both queries' device sets

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ScaleRecord:
    """Open/query walls for one synthetic store size, both paths."""

    records: int
    devices: int
    segments: int
    store_bytes: int
    build_seconds: float
    open_indexed_seconds: float  #: best-of-N sidecar-backed open wall
    open_scan_seconds: float  #: best-of-N full-envelope-scan open wall
    open_speedup: float  #: scan / indexed (higher = sidecars help more)
    query_indexed_seconds: float  #: geo rect over mmap'd rows, grid-pruned
    query_scan_seconds: float  #: same rect down the fallback path
    matches: int
    match_digest: str  #: sha256[:16] over the (segment, offset, device) keys

    def to_json(self) -> dict:
        return asdict(self)


def _best_of(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    best = math.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
            result = out
    return best, result


def run_storage_bench(
    points: int = 100_000,
    epsilon: float = 10.0,
    seed: int = 7,
    fleet_devices: int = 50,
    fleet_fixes_per_device: int = 200,
    repeats: int = 3,
    progress: Callable[[str], None] | None = None,
) -> StorageRecord:
    """Run both storage stages; returns the combined record."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    # -- codec stage ---------------------------------------------------------
    workload = "random_walk"
    note(f"storage/codec ({workload}, {points} points)")
    track = make_workload(workload, points, seed)
    compressed = BQSCompressor(epsilon).compress(track)

    encode_wall, blob = _best_of(
        lambda: encode_trajectory(compressed), repeats
    )
    decode_wall, decoded = _best_of(lambda: decode_trajectory(blob), repeats)
    if len(decoded.columns) != len(compressed.key_points):
        raise BenchError(
            f"storage/codec: decode returned {len(decoded.columns)} key "
            f"points, expected {len(compressed.key_points)}"
        )
    if encode_trajectory(decoded.to_trajectory()) != blob:
        raise BenchError(
            "storage/codec: encode(decode(blob)) is not byte-identical"
        )
    n_keys = len(compressed.key_points)
    raw_bytes = points * GPS_SAMPLE_BYTES
    blob_digest = hashlib.sha256(blob).hexdigest()[:16]

    # -- store/query stage ---------------------------------------------------
    note(
        f"storage/fleet ({fleet_devices} devices x "
        f"{fleet_fixes_per_device} fixes)"
    )
    ids, cols = fleet_fixes(fleet_devices, fleet_fixes_per_device, seed=seed)
    total_fixes = len(ids)
    factory = functools.partial(bqs_fleet_factory, epsilon)

    directory = tempfile.mkdtemp(prefix="repro-storage-bench-")
    try:
        ingest_wall = math.inf
        for _ in range(repeats):
            shutil.rmtree(directory, ignore_errors=True)
            sink = StoreSink(directory)
            engine = StreamEngine(factory, collect=False, sink=sink)
            t0 = time.perf_counter()
            for batch in iter_fix_batches(ids, cols, 4096):
                engine.push_columns(*batch)
            engine.finish_all()
            sink.close()
            ingest_wall = min(ingest_wall, time.perf_counter() - t0)

        store = TrajectoryStore(directory)
        try:
            store_bytes = store.total_bytes()
            span = store.time_span()
            box = store.bbox()
            # Window: the middle third of the stream; rectangle: the
            # middle ninth of the covered plane — both derived from the
            # data so the queries stay meaningful at any scale.
            w0 = span[0] + (span[1] - span[0]) / 3.0
            w1 = span[0] + 2.0 * (span[1] - span[0]) / 3.0
            rect = (
                box[0] + (box[2] - box[0]) / 3.0,
                box[1] + (box[3] - box[1]) / 3.0,
                box[0] + 2.0 * (box[2] - box[0]) / 3.0,
                box[1] + 2.0 * (box[3] - box[1]) / 3.0,
            )

            tq_wall, tq_matches = _best_of(
                lambda: time_window_query(store, w0, w1), repeats
            )
            rq_wall, rq_matches = _best_of(
                lambda: range_query(store, rect, mode="exact"), repeats
            )
            tq_devices = sorted({m.device_id for m in tq_matches})
            rq_devices = sorted({m.device_id for m in rq_matches})
        finally:
            store.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    # Brute force over the raw fixes, answering the same questions: the
    # time window on per-device spans (what compression preserves), the
    # rectangle on raw containment.
    def brute_time():
        spans = {}
        for d, t in zip(ids, cols.ts):
            lo, hi = spans.get(d, (math.inf, -math.inf))
            spans[d] = (t if t < lo else lo, t if t > hi else hi)
        return sorted(d for d, (lo, hi) in spans.items() if lo <= w1 and hi >= w0)

    def brute_range():
        x0, y0, x1, y1 = rect
        inside = set()
        for d, x, y in zip(ids, cols.xs, cols.ys):
            if d not in inside and x0 <= x <= x1 and y0 <= y <= y1:
                inside.add(d)
        return sorted(inside)

    tq_brute_wall, tq_brute = _best_of(brute_time, repeats)
    rq_brute_wall, rq_brute = _best_of(brute_range, repeats)

    if tq_devices != tq_brute:
        raise BenchError(
            f"storage/query: time-window disagrees with brute force "
            f"({len(tq_devices)} vs {len(tq_brute)} devices)"
        )
    missing = set(rq_brute) - set(rq_devices)
    if missing:
        raise BenchError(
            f"storage/query: range query missed devices brute force found "
            f"(false negatives: {sorted(missing)[:5]})"
        )

    digest = hashlib.sha256(
        ("|".join(tq_devices) + "##" + "|".join(rq_devices)).encode()
    ).hexdigest()[:16]

    return StorageRecord(
        workload=workload,
        points=points,
        epsilon=epsilon,
        key_points=n_keys,
        encoded_bytes=len(blob),
        bytes_per_key_point=len(blob) / n_keys if n_keys else 0.0,
        bytes_per_raw_point=len(blob) / points if points else 0.0,
        raw_gps_bytes=raw_bytes,
        end_to_end_ratio=raw_bytes / len(blob) if blob else 0.0,
        encode_seconds=encode_wall,
        decode_seconds=decode_wall,
        blob_digest=blob_digest,
        fleet_devices=fleet_devices,
        fleet_fixes=fleet_fixes_per_device,
        ingest_fixes_per_sec=(
            total_fixes / ingest_wall if ingest_wall > 0.0 else 0.0
        ),
        store_bytes=store_bytes,
        time_query_seconds=tq_wall,
        time_query_brute_seconds=tq_brute_wall,
        range_query_seconds=rq_wall,
        range_query_brute_seconds=rq_brute_wall,
        query_digest=digest,
    )


def run_scale_bench(
    sizes: tuple = (10_000, 100_000, 1_000_000),
    devices: int = 500,
    repeats: int = 3,
    progress: Callable[[str], None] | None = None,
) -> list:
    """Open-time and query-at-scale measurements, one record per size.

    Each store is filled with the deterministic synthetic workload the
    ``scale-smoke`` CLI uses (zone-stamped two-key-point trajectories on
    a ~50x50 km patch), so identical sizes lay down byte-identical
    stores and the match digests are stable pins across runs.
    """
    from ..model.projection import UTMProjection
    from ..storage.__main__ import synthetic_fill
    from ..storage.query import geo_range_query

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    records: list = []
    for size in sizes:
        note(f"storage/scale ({size} records)")
        directory = tempfile.mkdtemp(prefix="repro-scale-bench-")
        try:
            t0 = time.perf_counter()
            with TrajectoryStore(directory) as store:
                synthetic_fill(store, size, devices)
                segments = len(store.segment_names)
            build_wall = time.perf_counter() - t0

            def open_and_close(**kwargs) -> dict:
                store = TrajectoryStore(directory, **kwargs)
                try:
                    return store.index_report()
                finally:
                    store.close()

            open_idx_wall, coverage = _best_of(
                lambda: open_and_close(), repeats
            )
            if coverage["scanned_segments"]:
                raise BenchError(
                    f"storage/scale: {coverage['scanned_segments']} "
                    "segment(s) fell back to the envelope scan on a clean "
                    "reopen"
                )
            open_scan_wall, _ = _best_of(
                lambda: open_and_close(index_sidecars=False), repeats
            )

            # One geographic rectangle — the middle ninth of the covered
            # plane, unprojected through the stamped zone — asked down
            # both paths.
            store = TrajectoryStore(directory)
            try:
                store_bytes = store.total_bytes()
                box = store.bbox()
                zone, south = sorted(store.stamped_frames())[0]
                projection = UTMProjection(zone=zone, south=south)
                corners = [
                    projection.inverse(
                        box[0] + (box[2] - box[0]) / 3.0,
                        box[1] + (box[3] - box[1]) / 3.0,
                    ),
                    projection.inverse(
                        box[0] + 2.0 * (box[2] - box[0]) / 3.0,
                        box[1] + 2.0 * (box[3] - box[1]) / 3.0,
                    ),
                ]
                geo_rect = (
                    min(c[0] for c in corners),
                    min(c[1] for c in corners),
                    max(c[0] for c in corners),
                    max(c[1] for c in corners),
                )
                q_idx_wall, fast = _best_of(
                    lambda: geo_range_query(
                        store, geo_rect, mode="approximate"
                    ),
                    repeats,
                )
            finally:
                store.close()
            scan_store = TrajectoryStore(directory, index_sidecars=False)
            try:
                q_scan_wall, slow = _best_of(
                    lambda: geo_range_query(
                        scan_store, geo_rect, mode="approximate"
                    ),
                    repeats,
                )
            finally:
                scan_store.close()

            fast_keys = [
                (m.ref.segment, m.ref.offset, m.device_id) for m in fast
            ]
            slow_keys = [
                (m.ref.segment, m.ref.offset, m.device_id) for m in slow
            ]
            if fast_keys != slow_keys:
                raise BenchError(
                    f"storage/scale: mmap path returned {len(fast_keys)} "
                    f"matches, fallback scan {len(slow_keys)} — the paths "
                    "disagree"
                )
            digest = hashlib.sha256(
                "|".join(f"{s}:{o}:{d}" for s, o, d in fast_keys).encode()
            ).hexdigest()[:16]
            records.append(
                ScaleRecord(
                    records=size,
                    devices=devices,
                    segments=segments,
                    store_bytes=store_bytes,
                    build_seconds=build_wall,
                    open_indexed_seconds=open_idx_wall,
                    open_scan_seconds=open_scan_wall,
                    open_speedup=(
                        open_scan_wall / open_idx_wall
                        if open_idx_wall > 0.0
                        else math.inf
                    ),
                    query_indexed_seconds=q_idx_wall,
                    query_scan_seconds=q_scan_wall,
                    matches=len(fast_keys),
                    match_digest=digest,
                )
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return records
