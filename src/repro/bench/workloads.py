"""Synthetic workload generators for the benchmark subsystem.

Each generator is stdlib-only, fully deterministic for a given seed, and
returns ``n`` :class:`~repro.model.point.PlanePoint` samples at 1 Hz in a
local metric plane.  The four regimes cover the motion classes the paper's
evaluation discusses — smooth wander, constrained street driving, long
near-straight arcs, and the stop-and-go pattern that stresses degenerate
(stationary) path lines:

``random_walk``
    The correlated random walk shared with the evaluation harness
    (:func:`repro.compression.evaluate.synthetic_track`), so the two
    subsystems benchmark the exact same stream.

``vehicle_route``
    Manhattan-grid driving: straight blocks at urban cruise speed with
    acceleration/braking envelopes, 90° turns at intersections, red-light
    dwells, and ~1 m GPS jitter throughout.

``flight_arc``
    High-speed cruise (240 m/s) along very gentle, occasionally banked
    arcs — long segments, highly compressible, dominated by the
    upper-bound fast path.

``bursty_pause``
    Alternating stationary dwells (GPS scatter only) and movement bursts
    at pedestrian/cycling pace — many co-located and repeated fixes, the
    regime that exercises cache reuse and degenerate direction handling.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

from ..compression.evaluate import synthetic_track
from ..model.point import PlanePoint

__all__ = [
    "WORKLOADS",
    "random_walk",
    "vehicle_route",
    "flight_arc",
    "bursty_pause",
    "make_workload",
]

_HALF_PI = math.pi / 2.0
_TWO_PI = 2.0 * math.pi


def random_walk(n: int, seed: int = 7) -> List[PlanePoint]:
    """Correlated random walk — identical to the evaluation harness track."""
    return synthetic_track(n, seed=seed)


def vehicle_route(n: int, seed: int = 7) -> List[PlanePoint]:
    """Grid-city driving: blocks, turns, lights, urban cruise speeds."""
    if n < 1:
        raise ValueError(f"need at least one point, got {n!r}")
    rng = random.Random(seed ^ 0x5EED1)
    pts: List[PlanePoint] = []
    x = y = 0.0
    t = 0.0
    heading = rng.randrange(4) * _HALF_PI
    speed = 0.0
    cruise = 13.9  # ~50 km/h
    accel = 2.0
    brake = 3.0
    block_left = rng.uniform(80.0, 400.0)
    dwell = 0
    for _ in range(n):
        pts.append(PlanePoint(x + rng.gauss(0.0, 1.0), y + rng.gauss(0.0, 1.0), t))
        t += 1.0
        if dwell > 0:
            dwell -= 1
            speed = 0.0
            continue
        # Brake when the remaining block is shorter than the stopping
        # distance; otherwise accelerate toward cruise.
        if block_left < speed * speed / (2.0 * brake):
            speed = max(0.0, speed - brake)
        else:
            speed = min(cruise, speed + accel)
        x += speed * math.cos(heading)
        y += speed * math.sin(heading)
        block_left -= speed
        if block_left <= 0.0:
            if rng.random() < 0.4:
                dwell = rng.randint(5, 40)  # red light
            turn = rng.choice((-1, 0, 0, 1))
            heading = (heading + turn * _HALF_PI) % _TWO_PI
            block_left = rng.uniform(80.0, 400.0)
    return pts


def flight_arc(n: int, seed: int = 7) -> List[PlanePoint]:
    """Cruise-speed flight along long, gently curving arcs."""
    if n < 1:
        raise ValueError(f"need at least one point, got {n!r}")
    rng = random.Random(seed ^ 0xF11647)
    pts: List[PlanePoint] = []
    x = y = 0.0
    t = 0.0
    speed = 240.0
    heading = rng.uniform(0.0, _TWO_PI)
    turn_rate = 0.0
    for _ in range(n):
        pts.append(PlanePoint(x + rng.gauss(0.0, 2.0), y + rng.gauss(0.0, 2.0), t))
        t += 1.0
        if rng.random() < 0.005:
            # Enter (or leave) a standard-rate-ish banked turn.
            turn_rate = rng.choice((0.0, 0.0, rng.uniform(-0.005, 0.005)))
        heading += turn_rate
        x += speed * math.cos(heading)
        y += speed * math.sin(heading)
    return pts


def bursty_pause(n: int, seed: int = 7) -> List[PlanePoint]:
    """Stop-and-go: stationary dwells with GPS scatter, then motion bursts."""
    if n < 1:
        raise ValueError(f"need at least one point, got {n!r}")
    rng = random.Random(seed ^ 0xB0B57)
    pts: List[PlanePoint] = []
    x = y = 0.0
    t = 0.0
    heading = rng.uniform(0.0, _TWO_PI)
    moving = False
    remaining = rng.randint(20, 120)
    speed = 0.0
    for _ in range(n):
        if moving:
            heading += rng.gauss(0.0, 0.2)
            x += speed * math.cos(heading)
            y += speed * math.sin(heading)
            jitter = 1.0
        else:
            jitter = 2.5  # GPS scatter around the dwell location
        pts.append(
            PlanePoint(x + rng.gauss(0.0, jitter), y + rng.gauss(0.0, jitter), t)
        )
        t += 1.0
        remaining -= 1
        if remaining <= 0:
            moving = not moving
            if moving:
                speed = rng.choice((1.4, 1.4, 4.0, 6.5))
                remaining = rng.randint(30, 180)
            else:
                remaining = rng.randint(20, 120)
    return pts


#: Name → generator registry the CLI and tests iterate.
WORKLOADS: Dict[str, Callable[[int, int], List[PlanePoint]]] = {
    "random_walk": random_walk,
    "vehicle_route": vehicle_route,
    "flight_arc": flight_arc,
    "bursty_pause": bursty_pause,
}


def make_workload(name: str, n: int, seed: int = 7) -> List[PlanePoint]:
    """Generate a registered workload by name."""
    try:
        generator = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {', '.join(sorted(WORKLOADS))}"
        ) from None
    return generator(n, seed)
