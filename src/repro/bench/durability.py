"""Durability benchmark: journal overhead and crash-recovery wall time.

Three measured legs over one seeded fleet stream, all writing through
``StreamEngine -> StoreSink`` into a temporary :class:`~repro.storage.
store.TrajectoryStore`:

``plain``
    Journal off — the baseline ingest wall the durability tax is
    measured against.

``journal``
    The same stream with a write-ahead :class:`~repro.engine.journal.
    FixJournal` (flush-to-kernel, no fsync — the process-crash-safe
    default).  The headline number is the overhead percentage against
    ``plain``; the target on record is <= 10 %.

``recovery``
    A simulated mid-stream crash: ingest the first ``crash_fraction`` of
    the batches under a journal, abandon the engine, then time
    :meth:`StreamEngine.recover` replaying the journal into a reopened
    store.  The resumed run (remaining batches + ``finish_all``) must
    end with a store whose :meth:`~repro.storage.store.TrajectoryStore.
    content_digest` is bit-identical to the uninterrupted reference —
    the crash-recovery invariant, enforced here exactly like a key-point
    digest in the compressor suite (:class:`BenchError` on violation).

Digest audits before anything is recorded:

1. journal-on and journal-off stores are bit-identical (journaling must
   never change output);
2. the recovered + resumed store equals the reference store.

Both digests land in the record so ``compare`` treats them as
behaviour, never timing noise.
"""

from __future__ import annotations

import functools
import math
import os
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass
from typing import Callable, List

from ..engine.core import StreamEngine
from ..engine.simulate import bqs_fleet_factory, fleet_fixes, iter_fix_batches
from ..storage.store import StoreSink, TrajectoryStore
from .harness import BenchError

__all__ = ["DurabilityRecord", "run_durability_bench"]


@dataclass(frozen=True)
class DurabilityRecord:
    """Journal overhead + recovery measurements for one seeded fleet."""

    devices: int
    fixes_per_device: int
    fixes: int  #: total fixes in the interleaved stream
    batches: int  #: engine batches the stream splits into
    batch_size: int
    epsilon: float
    seed: int
    crash_batch: int  #: batches ingested before the simulated crash
    plain_fixes_per_sec: float  #: journal off
    plain_wall_seconds: float
    journal_fixes_per_sec: float  #: journal on (flushed, no fsync)
    journal_wall_seconds: float
    overhead_pct: float  #: journal wall vs plain wall (target <= 10)
    journal_bytes: int  #: journal size at its pre-rotation peak
    recovery_seconds: float  #: wall to replay the journal after the crash
    recovery_batches: int  #: batches the replay reproduced
    recovery_fixes: int
    recovery_fixes_per_sec: float
    store_digest: str  #: reference store content digest (behaviour pin)
    recovered_digest: str  #: post-recovery resumed store digest (must match)

    def to_json(self) -> dict:
        return asdict(self)


def _journal_ingest(
    base: str,
    factory,
    batches: List[tuple],
    journal: bool,
) -> tuple[float, str, int]:
    """One full ingest into a fresh store; returns (wall, digest, jbytes).

    ``jbytes`` is the journal's size right before ``finish_all`` rotates
    it away — the peak disk cost a deployment pays for the journal.
    """
    store = TrajectoryStore(os.path.join(base, "store"))
    engine = StreamEngine(
        factory,
        collect=False,
        sink=StoreSink(store),
        journal=os.path.join(base, "wal") if journal else None,
    )
    try:
        t0 = time.perf_counter()
        for batch in batches:
            engine.push_columns(*batch)
        peak = engine.journal.total_bytes() if journal else 0
        engine.finish_all()
        wall = time.perf_counter() - t0
        digest = store.content_digest()
    finally:
        if engine.journal is not None:
            engine.journal.close()
        store.close()
    return wall, digest, peak


def run_durability_bench(
    devices: int,
    fixes_per_device: int,
    epsilon: float = 10.0,
    seed: int = 7,
    batch_size: int = 4096,
    crash_fraction: float = 0.5,
    repeats: int = 2,
    progress: Callable[[str], None] | None = None,
) -> DurabilityRecord:
    """Measure the write-ahead journal's cost and its recovery guarantee.

    Every timed leg runs ``repeats`` times in a fresh directory and
    records its fastest wall (best-of-N against scheduler noise); the
    digest audits cover every repeat.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    if not 0.0 < crash_fraction < 1.0:
        raise ValueError(
            f"crash_fraction must be in (0, 1), got {crash_fraction!r}"
        )
    ids, cols = fleet_fixes(devices, fixes_per_device, seed=seed)
    total = len(ids)
    batches = list(iter_fix_batches(ids, cols, batch_size))
    crash_batch = max(1, int(len(batches) * crash_fraction))
    if crash_batch >= len(batches):
        raise BenchError(
            "durability: stream too short to crash mid-way "
            f"({len(batches)} batch(es))"
        )
    factory = functools.partial(bqs_fleet_factory, epsilon)

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    def best_ingest(journal: bool) -> tuple[float, str, int]:
        best_wall = math.inf
        digest = None
        peak = 0
        for _ in range(repeats):
            base = tempfile.mkdtemp(prefix="bench-durability-")
            try:
                wall, run_digest, run_peak = _journal_ingest(
                    base, factory, batches, journal
                )
            finally:
                shutil.rmtree(base, ignore_errors=True)
            best_wall = min(best_wall, wall)
            peak = max(peak, run_peak)
            if digest is None:
                digest = run_digest
            elif run_digest != digest:
                raise BenchError(
                    "durability: repeats disagree (non-deterministic store?)"
                )
        return best_wall, digest, peak

    note(f"durability/plain ({devices} devices x {fixes_per_device} fixes)")
    plain_wall, plain_digest, _ = best_ingest(journal=False)

    note("durability/journal (write-ahead, flushed)")
    journal_wall, journal_digest, journal_bytes = best_ingest(journal=True)

    # Audit 1: journaling is observationally free — same store, bit for bit.
    if journal_digest != plain_digest:
        raise BenchError(
            "durability: journal-on store diverged from journal-off "
            f"(digest {journal_digest} vs {plain_digest})"
        )

    # Recovery leg: crash after crash_batch batches, replay, resume, audit.
    note(f"durability/recovery (crash after batch {crash_batch})")
    best_recovery = math.inf
    recovery_report = None
    recovered_digest = None
    for _ in range(repeats):
        base = tempfile.mkdtemp(prefix="bench-durability-")
        try:
            store_dir = os.path.join(base, "store")
            wal_dir = os.path.join(base, "wal")
            store = TrajectoryStore(store_dir)
            engine = StreamEngine(
                factory,
                collect=False,
                sink=StoreSink(store),
                journal=wal_dir,
            )
            for batch in batches[:crash_batch]:
                engine.push_columns(*batch)
            # Simulated crash: the engine's in-memory state is abandoned;
            # only the store's segments and the journal survive.
            engine.journal.close()
            store.close()

            store = TrajectoryStore(store_dir)
            t0 = time.perf_counter()
            engine = StreamEngine.recover(
                wal_dir,
                factory,
                collect=False,
                sink=StoreSink(store),
                dedupe_store=store,
            )
            recovery_wall = time.perf_counter() - t0
            report = engine.recovery
            if report.last_seq != crash_batch:
                raise BenchError(
                    f"durability: recovery saw {report.last_seq} journaled "
                    f"batches, expected {crash_batch}"
                )
            for batch in batches[crash_batch:]:
                engine.push_columns(*batch)
            engine.finish_all()
            run_digest = store.content_digest()
            engine.journal.close()
            store.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)

        # Audit 2: the recovered + resumed store is the reference store.
        if run_digest != plain_digest:
            raise BenchError(
                "durability: recovered store diverged from the reference "
                f"(digest {run_digest} vs {plain_digest})"
            )
        recovered_digest = run_digest
        if recovery_wall < best_recovery:
            best_recovery = recovery_wall
            recovery_report = report

    crash_fixes = sum(len(batch[0]) for batch in batches[:crash_batch])
    overhead_pct = (
        (journal_wall / plain_wall - 1.0) * 100.0 if plain_wall > 0.0 else 0.0
    )
    return DurabilityRecord(
        devices=devices,
        fixes_per_device=fixes_per_device,
        fixes=total,
        batches=len(batches),
        batch_size=batch_size,
        epsilon=epsilon,
        seed=seed,
        crash_batch=crash_batch,
        plain_fixes_per_sec=total / plain_wall if plain_wall > 0.0 else 0.0,
        plain_wall_seconds=plain_wall,
        journal_fixes_per_sec=(
            total / journal_wall if journal_wall > 0.0 else 0.0
        ),
        journal_wall_seconds=journal_wall,
        overhead_pct=overhead_pct,
        journal_bytes=journal_bytes,
        recovery_seconds=best_recovery,
        recovery_batches=recovery_report.batches_replayed,
        recovery_fixes=recovery_report.fixes_replayed,
        recovery_fixes_per_sec=(
            crash_fixes / best_recovery if best_recovery > 0.0 else 0.0
        ),
        store_digest=plain_digest,
        recovered_digest=recovered_digest,
    )
