"""CLI entry point: ``python -m repro.bench``.

Two modes::

    # run the suite and write BENCH_<date>.json (repo root by convention)
    PYTHONPATH=src python -m repro.bench --points 100000 --epsilon 10

    # small, fast run for CI (same workloads, 2000 points)
    PYTHONPATH=src python -m repro.bench --smoke --out bench-smoke.json

    # diff two recorded runs and flag regressions
    PYTHONPATH=src python -m repro.bench compare OLD.json NEW.json --strict

External reference numbers (e.g. the pre-optimization throughput this PR
is measured against) can be recorded straight into the output with
``--baseline name=value`` so one file carries both sides of a comparison.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
from typing import Sequence

from .compare import diff_benches, format_diff, load_bench_file
from .harness import default_factories, run_bench
from .workloads import WORKLOADS, make_workload

__all__ = ["main"]

_SMOKE_POINTS = 2_000


def _parse_baseline(pairs: Sequence[str]) -> dict:
    baselines = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"--baseline expects name=value, got {pair!r}")
        try:
            baselines[name] = float(value)
        except ValueError:
            raise SystemExit(f"--baseline value must be numeric, got {pair!r}")
    return baselines


def _format_records(records) -> str:
    header = (
        f"{'workload':<16}{'algorithm':<18}{'pts/s':>10}{'p50us':>8}"
        f"{'p99us':>8}{'maxus':>9}{'keys':>8}{'rate':>7}{'max dev':>9}"
        f"{'peak':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.workload:<16}{r.algorithm:<18}{r.points_per_sec:>10,.0f}"
            f"{r.push_us_p50:>8.1f}{r.push_us_p99:>8.1f}{r.push_us_max:>9.1f}"
            f"{r.key_points:>8}{r.compression_rate:>7.3f}"
            f"{r.max_deviation:>9.2f}{r.peak_retained_points:>6}"
        )
    return "\n".join(lines)


def main_run(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Benchmark the trajectory compressors on synthetic workloads.",
    )
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--epsilon", type=float, default=10.0, help="metres")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--uniform-period", type=int, default=10)
    parser.add_argument(
        "--workloads",
        default=",".join(WORKLOADS),
        help=f"comma-separated subset of: {', '.join(WORKLOADS)}",
    )
    parser.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated subset of: "
        + ", ".join(default_factories(1.0)),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI-sized run ({_SMOKE_POINTS} points per workload)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_<date>.json in the cwd)",
    )
    parser.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="record an external reference number in the output (repeatable)",
    )
    args = parser.parse_args(argv)

    # Validate before the (potentially minutes-long) run so a malformed
    # flag fails in milliseconds instead of discarding every measurement.
    baselines = _parse_baseline(args.baseline)
    points_per_workload = _SMOKE_POINTS if args.smoke else args.points
    if points_per_workload < 2:
        raise SystemExit(f"--points must be >= 2, got {points_per_workload}")
    workload_names = [w for w in args.workloads.split(",") if w]
    algorithms = (
        [a for a in args.algorithms.split(",") if a] if args.algorithms else None
    )

    workload_points = {}
    for name in workload_names:
        workload_points[name] = make_workload(name, points_per_workload, args.seed)

    records = run_bench(
        workload_points,
        epsilon=args.epsilon,
        uniform_period=args.uniform_period,
        algorithms=algorithms,
        progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
    )

    out_path = args.out or f"BENCH_{datetime.date.today().isoformat()}.json"
    document = {
        "schema": 1,
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "epsilon": args.epsilon,
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "workloads": {
            name: {"points": len(pts), "seed": args.seed}
            for name, pts in workload_points.items()
        },
        "baselines": baselines,
        "results": [r.to_json() for r in records],
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(_format_records(records))
    print(f"\nwrote {out_path}")
    return 0


def main_compare(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench compare",
        description="Diff two bench result files and flag regressions.",
    )
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="flag pairs whose new throughput is below THRESHOLD x old",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when anything is flagged (off by default: timing noise)",
    )
    args = parser.parse_args(argv)

    rows, flagged = diff_benches(
        load_bench_file(args.old), load_bench_file(args.new), args.threshold
    )
    print(format_diff(rows))
    if flagged:
        print(f"\n{len(flagged)} pair(s) flagged")
        if args.strict:
            return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "compare":
        return main_compare(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return main_run(argv)


if __name__ == "__main__":
    raise SystemExit(main())
