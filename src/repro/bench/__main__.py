"""CLI entry point: ``python -m repro.bench``.

Modes::

    # run the suite and write BENCH_<date>.json (repo root by convention)
    PYTHONPATH=src python -m repro.bench --points 100000 --epsilon 10

    # small, fast run for CI (same workloads, 2000 points; smaller fleet)
    PYTHONPATH=src python -m repro.bench --smoke --out bench-smoke.json

    # profile one workload instead of timing it
    PYTHONPATH=src python -m repro.bench --profile --workloads random_walk

    # profile the engine or sharded-transport hot path instead
    PYTHONPATH=src python -m repro.bench --profile --profile-mode sharded

    # diff two recorded runs and flag regressions
    PYTHONPATH=src python -m repro.bench compare OLD.json NEW.json --strict
    PYTHONPATH=src python -m repro.bench compare OLD.json NEW.json --fail-on-behaviour

Each run covers the per-compressor suite (object + columnar passes) and,
unless ``--no-fleet``, the multi-stream fleet benchmark (per-device
ceiling, single-process engine, sharded engine per ``--fleet-workers``
crossed with every data plane in ``--transports``).
External reference numbers (e.g. the pre-optimization throughput this PR
is measured against) can be recorded straight into the output with
``--baseline name=value`` so one file carries both sides of a comparison.
"""

from __future__ import annotations

import argparse
import cProfile
import datetime
import json
import platform
import pstats
import sys
from typing import Sequence

from .. import fsio

from .compare import diff_benches, format_diff, load_bench_file
from .durability import run_durability_bench
from .fleet import run_dirty_fleet_bench, run_fleet_bench
from .geodetic import run_geodetic_bench
from .harness import default_factories, run_bench
from .storage import run_scale_bench, run_storage_bench
from .workloads import WORKLOADS, make_workload

__all__ = ["main"]

_SMOKE_POINTS = 2_000
_SMOKE_FLEET_DEVICES = 25
_SMOKE_FLEET_FIXES = 80
_SMOKE_STORAGE_DEVICES = 15
_SMOKE_STORAGE_FIXES = 60
#: Store sizes for the open-time scale stage; the smoke run keeps one
#: small size so CI still pins the match digest and the parity check.
_SCALE_SIZES = (10_000, 100_000, 1_000_000)
_SMOKE_SCALE_SIZES = (5_000,)
#: Engine batch size for the durability stage.  The smoke fleet is only
#: 2 000 fixes, so the stage needs smaller batches than the fleet default
#: to have a stream it can crash mid-way through.
_SMOKE_DURABILITY_BATCH = 256


def _parse_baseline(pairs: Sequence[str]) -> dict:
    baselines = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"--baseline expects name=value, got {pair!r}")
        try:
            baselines[name] = float(value)
        except ValueError:
            raise SystemExit(f"--baseline value must be numeric, got {pair!r}")
    return baselines


def _format_records(records) -> str:
    header = (
        f"{'workload':<16}{'algorithm':<18}{'pts/s':>10}{'col pts/s':>11}"
        f"{'p50us':>8}{'p99us':>8}{'maxus':>9}{'keys':>8}{'rate':>7}"
        f"{'max dev':>9}{'peak':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.workload:<16}{r.algorithm:<18}{r.points_per_sec:>10,.0f}"
            f"{r.columnar_points_per_sec:>11,.0f}"
            f"{r.push_us_p50:>8.1f}{r.push_us_p99:>8.1f}{r.push_us_max:>9.1f}"
            f"{r.key_points:>8}{r.compression_rate:>7.3f}"
            f"{r.max_deviation:>9.2f}{r.peak_retained_points:>6}"
        )
    return "\n".join(lines)


def _format_fleet(records) -> str:
    header = (
        f"{'fleet mode':<16}{'workers':>8}{'fixes/s':>12}{'wall s':>9}"
        f"{'trajs':>7}{'keys':>8}{'util':>6}{'ack p99':>10}  digest"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        shards = getattr(r, "shards", None) or []
        if shards:
            # Worst shard: the load-balance and latency view that matters.
            util = f"{max(s['utilization'] for s in shards):.2f}"
            p99 = max(s["ack_us_p99"] for s in shards)
            ack = f"{p99 / 1e3:.1f}ms" if p99 else "-"
        else:
            util, ack = "-", "-"
        lines.append(
            f"{r.mode:<16}{r.workers:>8}{r.fixes_per_sec:>12,.0f}"
            f"{r.wall_seconds:>9.3f}{r.trajectories:>7}{r.key_points:>8}"
            f"{util:>6}{ack:>10}  {r.key_digest}"
        )
    return "\n".join(lines)


def _format_dirty_fleet(r) -> str:
    feed = r.feed
    dropped = (
        ", ".join(f"{k}={v}" for k, v in sorted(feed["dropped"].items()))
        or "none"
    )
    splits = (
        ", ".join(f"{k}={v}" for k, v in sorted(feed["splits"].items()))
        or "none"
    )
    lines = [
        f"dirty fleet ({r.devices}x{r.fixes_per_device}, "
        f"{r.dirty_fixes} dirty fixes: +{r.dups} dup, {r.swaps} late, "
        f"{r.teleports} teleport, {r.gaps} gap)",
        "-" * 72,
        f"ingest: {r.fixes_per_sec:,.0f} fixes/s -> {r.trajectories} "
        f"trajectories, {r.key_points} keys, max deviation "
        f"{r.max_deviation:.2f} m (epsilon {r.epsilon})",
        f"feed: {feed['fixes_in']} in -> {feed['fixes_out']} compressed, "
        f"dropped ({dropped}), splits ({splits})",
        f"digests: dirty {r.key_digest}, clean {r.clean_digest}",
    ]
    return "\n".join(lines)


def _format_durability(r) -> str:
    lines = [
        f"durability ({r.devices}x{r.fixes_per_device}, "
        f"{r.batches} batches of {r.batch_size})",
        "-" * 72,
        f"ingest: plain {r.plain_fixes_per_sec:,.0f} fixes/s, "
        f"journal {r.journal_fixes_per_sec:,.0f} fixes/s "
        f"({r.overhead_pct:+.1f}% wall, journal peak {r.journal_bytes} B)",
        f"recovery: {r.recovery_batches} batches / {r.recovery_fixes} fixes "
        f"replayed in {r.recovery_seconds * 1e3:.1f} ms "
        f"({r.recovery_fixes_per_sec:,.0f} fixes/s)",
        f"digests: reference {r.store_digest[:16]}, "
        f"recovered {r.recovered_digest[:16]}",
    ]
    return "\n".join(lines)


def _format_storage(r) -> str:
    lines = [
        f"storage ({r.workload}, {r.points} points, "
        f"{r.fleet_devices}x{r.fleet_fixes} fleet)",
        "-" * 72,
        f"codec: {r.key_points} keys -> {r.encoded_bytes} B "
        f"({r.bytes_per_key_point:.2f} B/key, {r.bytes_per_raw_point:.4f} "
        f"B/raw pt, {r.end_to_end_ratio:.0f}x vs {r.raw_gps_bytes} B raw GPS) "
        f"digest {r.blob_digest}",
        f"ingest: {r.ingest_fixes_per_sec:,.0f} fixes/s -> "
        f"{r.store_bytes} B on disk",
        f"query: window {r.time_query_seconds * 1e3:.2f} ms "
        f"(brute {r.time_query_brute_seconds * 1e3:.2f} ms), "
        f"range {r.range_query_seconds * 1e3:.2f} ms "
        f"(brute {r.range_query_brute_seconds * 1e3:.2f} ms) "
        f"digest {r.query_digest}",
    ]
    return "\n".join(lines)


def _format_scale(records) -> str:
    header = (
        f"{'scale records':<14}{'segs':>6}{'MB':>8}{'open idx':>10}"
        f"{'open scan':>11}{'speedup':>9}{'q idx':>9}{'q scan':>9}  digest"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.records:<14,}{r.segments:>6}{r.store_bytes / 1e6:>8.1f}"
            f"{r.open_indexed_seconds * 1e3:>8.1f}ms"
            f"{r.open_scan_seconds * 1e3:>9.1f}ms"
            f"{r.open_speedup:>8.0f}x"
            f"{r.query_indexed_seconds * 1e3:>7.1f}ms"
            f"{r.query_scan_seconds * 1e3:>7.1f}ms"
            f"  {r.match_digest}"
        )
    return "\n".join(lines)


def _format_geodetic(projection_records, fleet_records) -> str:
    lines = ["geodetic"]
    lines.append("-" * 72)
    for p in projection_records:
        lines.append(
            f"projection {p.projection:<14} {p.points} pts -> "
            f"{p.points_per_sec:,.0f} pts/s"
        )
    for r in fleet_records:
        lines.append(
            f"{r.variant}: {r.devices}x{r.fixes_per_device} fixes, "
            f"zones {','.join(r.zones)}, "
            f"ingest {r.ingest_fixes_per_sec:,.0f} fixes/s, "
            f"geo query exact {r.exact_query_seconds * 1e3:.2f} ms / "
            f"approx {r.approx_query_seconds * 1e3:.2f} ms "
            f"(brute {r.brute_query_seconds * 1e3:.2f} ms), "
            f"{r.definite_devices}/{r.truth_devices}/{r.exact_devices}/"
            f"{r.approx_devices} dev (def/truth/exact/approx) "
            f"digest {r.query_digest}"
        )
    return "\n".join(lines)


def _run_profile(workload_name, points, epsilon, uniform_period, algorithms, top):
    """Satellite mode: run one workload under cProfile, print top-N cumulative."""
    profiler = cProfile.Profile()
    profiler.enable()
    run_bench(
        {workload_name: points},
        epsilon=epsilon,
        uniform_period=uniform_period,
        algorithms=algorithms,
    )
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(top)


def _run_profile_engine(
    mode: str,
    devices: int,
    fixes_per_device: int,
    epsilon: float,
    seed: int,
    batch_size: int,
    workers: int,
    transport: str,
    top: int,
) -> None:
    """Profile the fleet ingest path through the single-process engine
    (``mode="engine"``) or the sharded engine (``mode="sharded"``, using
    the first ``--fleet-workers`` count and the first ``--transports``
    data plane).  Worker spawn and data generation stay outside the
    profiler, matching what the fleet bench times."""
    import functools

    from ..engine.core import StreamEngine
    from ..engine.sharded import ShardedStreamEngine
    from ..engine.simulate import bqs_fleet_factory, fleet_fixes, iter_fix_batches

    ids, cols = fleet_fixes(devices, fixes_per_device, seed=seed)
    batches = list(iter_fix_batches(ids, cols, batch_size))
    factory = functools.partial(bqs_fleet_factory, epsilon)
    if mode == "sharded":
        engine = ShardedStreamEngine(factory, workers=workers, transport=transport)
        label = f"sharded-{workers} ({transport})"
    else:
        engine = StreamEngine(factory)
        label = "engine"
    print(
        f"bench: profiling {label} over {devices}x{fixes_per_device} fixes",
        file=sys.stderr,
    )
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        for batch in batches:
            engine.push_columns(*batch)
        engine.finish_all()
    finally:
        profiler.disable()
        if mode == "sharded":
            engine.close()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(top)


def main_run(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Benchmark the trajectory compressors on synthetic workloads.",
    )
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--epsilon", type=float, default=10.0, help="metres")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--uniform-period", type=int, default=10)
    parser.add_argument(
        "--workloads",
        default=",".join(WORKLOADS),
        help=f"comma-separated subset of: {', '.join(WORKLOADS)}",
    )
    parser.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated subset of: "
        + ", ".join(default_factories(1.0)),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI-sized run ({_SMOKE_POINTS} points per workload)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_<date>.json in the cwd)",
    )
    parser.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="record an external reference number in the output (repeatable)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the first selected workload under cProfile and print the "
        "top cumulative functions instead of benchmarking (no JSON output)",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="how many functions --profile prints (default 25)",
    )
    parser.add_argument(
        "--profile-mode",
        choices=("compressor", "engine", "sharded"),
        default="compressor",
        help="what --profile profiles: the per-compressor suite (default), "
        "the single-process engine's fleet ingest, or the sharded engine "
        "(first --fleet-workers count, first --transports data plane)",
    )
    parser.add_argument(
        "--no-fleet",
        action="store_true",
        help="skip the multi-stream fleet benchmark",
    )
    parser.add_argument(
        "--no-dirty-fleet",
        action="store_true",
        help="skip the dirty-fleet benchmark (sanitizer over injected "
        "disorder, audited against ground truth)",
    )
    parser.add_argument(
        "--no-durability",
        action="store_true",
        help="skip the durability benchmark (write-ahead journal overhead "
        "and crash-recovery wall, digest-audited)",
    )
    parser.add_argument(
        "--no-storage",
        action="store_true",
        help="skip the storage benchmark (codec density + query latency)",
    )
    parser.add_argument(
        "--no-geodetic",
        action="store_true",
        help="skip the geodetic benchmark (projection throughput + GPS "
        "fleet ingestion + lat/lon query latency)",
    )
    parser.add_argument(
        "--no-scale",
        action="store_true",
        help="skip the store-scale benchmark (sidecar vs scan open time)",
    )
    parser.add_argument(
        "--scale-sizes",
        default=",".join(str(s) for s in _SCALE_SIZES),
        help="comma-separated store sizes for the scale stage (smoke: "
        f"{','.join(str(s) for s in _SMOKE_SCALE_SIZES)})",
    )
    parser.add_argument(
        "--scale-devices",
        type=int,
        default=500,
        help="devices in the synthetic scale-stage stores",
    )
    parser.add_argument(
        "--fleet-devices",
        type=int,
        default=200,
        help="devices in the fleet workload (smoke: "
        f"{_SMOKE_FLEET_DEVICES})",
    )
    parser.add_argument(
        "--fleet-fixes",
        type=int,
        default=500,
        help="fixes per device in the fleet workload (smoke: "
        f"{_SMOKE_FLEET_FIXES})",
    )
    parser.add_argument(
        "--fleet-batch",
        type=int,
        default=4096,
        help="interleaved fixes per engine batch",
    )
    parser.add_argument(
        "--fleet-workers",
        default="2,4",
        help="comma-separated worker counts for the sharded engine",
    )
    parser.add_argument(
        "--transports",
        default="pipe,shm",
        help="comma-separated sharded data planes to bench (pipe, shm)",
    )
    args = parser.parse_args(argv)

    # Validate before the (potentially minutes-long) run so a malformed
    # flag fails in milliseconds instead of discarding every measurement.
    baselines = _parse_baseline(args.baseline)
    points_per_workload = _SMOKE_POINTS if args.smoke else args.points
    if points_per_workload < 2:
        raise SystemExit(f"--points must be >= 2, got {points_per_workload}")
    workload_names = [w for w in args.workloads.split(",") if w]
    algorithms = (
        [a for a in args.algorithms.split(",") if a] if args.algorithms else None
    )

    try:
        fleet_workers = [
            int(w) for w in args.fleet_workers.split(",") if w.strip()
        ]
    except ValueError:
        raise SystemExit(
            f"--fleet-workers expects comma-separated ints, got "
            f"{args.fleet_workers!r}"
        )
    if any(w < 1 for w in fleet_workers):
        raise SystemExit("--fleet-workers values must be >= 1")

    transports = [t.strip() for t in args.transports.split(",") if t.strip()]
    if not transports or any(t not in ("pipe", "shm") for t in transports):
        raise SystemExit(
            f"--transports expects a subset of pipe,shm, got "
            f"{args.transports!r}"
        )

    if args.smoke:
        scale_sizes = list(_SMOKE_SCALE_SIZES)
    else:
        try:
            scale_sizes = [
                int(s) for s in args.scale_sizes.split(",") if s.strip()
            ]
        except ValueError:
            raise SystemExit(
                f"--scale-sizes expects comma-separated ints, got "
                f"{args.scale_sizes!r}"
            )
    if any(s < 1 for s in scale_sizes):
        raise SystemExit("--scale-sizes values must be >= 1")

    workload_points = {}
    for name in workload_names:
        workload_points[name] = make_workload(name, points_per_workload, args.seed)

    if args.profile:
        if args.profile_mode != "compressor":
            _run_profile_engine(
                args.profile_mode,
                _SMOKE_FLEET_DEVICES if args.smoke else args.fleet_devices,
                _SMOKE_FLEET_FIXES if args.smoke else args.fleet_fixes,
                args.epsilon,
                args.seed,
                args.fleet_batch,
                fleet_workers[0],
                transports[0],
                args.profile_top,
            )
            return 0
        first = workload_names[0]
        if len(workload_names) > 1:
            print(
                f"bench: --profile uses one workload; profiling {first!r}",
                file=sys.stderr,
            )
        _run_profile(
            first,
            workload_points[first],
            args.epsilon,
            args.uniform_period,
            algorithms,
            args.profile_top,
        )
        return 0

    records = run_bench(
        workload_points,
        epsilon=args.epsilon,
        uniform_period=args.uniform_period,
        algorithms=algorithms,
        progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
    )

    fleet_records = []
    if not args.no_fleet:
        fleet_devices = (
            _SMOKE_FLEET_DEVICES if args.smoke else args.fleet_devices
        )
        fleet_fixes = _SMOKE_FLEET_FIXES if args.smoke else args.fleet_fixes
        fleet_records = run_fleet_bench(
            fleet_devices,
            fleet_fixes,
            epsilon=args.epsilon,
            seed=args.seed,
            batch_size=args.fleet_batch,
            worker_counts=fleet_workers,
            transports=transports,
            progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
        )

    dirty_fleet_record = None
    if not (args.no_fleet or args.no_dirty_fleet):
        dirty_fleet_record = run_dirty_fleet_bench(
            _SMOKE_FLEET_DEVICES if args.smoke else args.fleet_devices,
            _SMOKE_FLEET_FIXES if args.smoke else args.fleet_fixes,
            epsilon=args.epsilon,
            seed=args.seed,
            batch_size=args.fleet_batch,
            progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
        )

    durability_record = None
    if not (args.no_fleet or args.no_durability):
        durability_record = run_durability_bench(
            _SMOKE_FLEET_DEVICES if args.smoke else args.fleet_devices,
            _SMOKE_FLEET_FIXES if args.smoke else args.fleet_fixes,
            epsilon=args.epsilon,
            seed=args.seed,
            batch_size=(
                _SMOKE_DURABILITY_BATCH if args.smoke else args.fleet_batch
            ),
            progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
        )

    storage_record = None
    if not args.no_storage:
        storage_record = run_storage_bench(
            points=points_per_workload,
            epsilon=args.epsilon,
            seed=args.seed,
            fleet_devices=(
                _SMOKE_STORAGE_DEVICES if args.smoke else args.fleet_devices
            ),
            fleet_fixes_per_device=(
                _SMOKE_STORAGE_FIXES if args.smoke else args.fleet_fixes
            ),
            progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
        )

    scale_records = []
    if not args.no_scale:
        scale_records = run_scale_bench(
            sizes=tuple(scale_sizes),
            devices=args.scale_devices,
            progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
        )

    geo_projection = []
    geo_fleets = []
    if not args.no_geodetic:
        geo_projection, geo_fleets = run_geodetic_bench(
            points=points_per_workload,
            epsilon=args.epsilon,
            seed=args.seed,
            fleet_devices=(
                _SMOKE_STORAGE_DEVICES if args.smoke else args.fleet_devices
            ),
            fleet_fixes_per_device=(
                _SMOKE_STORAGE_FIXES if args.smoke else args.fleet_fixes
            ),
            progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
        )

    out_path = args.out or f"BENCH_{datetime.date.today().isoformat()}.json"
    document = {
        # Schema 8: fleet records carry transport + per-shard stats, and
        # the sharded modes span a transport dimension (sharded-N-shm).
        "schema": 8,
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "epsilon": args.epsilon,
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "workloads": {
            name: {"points": len(pts), "seed": args.seed}
            for name, pts in workload_points.items()
        },
        "baselines": baselines,
        "results": [r.to_json() for r in records],
        "fleet": [r.to_json() for r in fleet_records],
        "dirty_fleet": (
            dirty_fleet_record.to_json()
            if dirty_fleet_record is not None
            else None
        ),
        "durability": (
            durability_record.to_json()
            if durability_record is not None
            else None
        ),
        "storage": (
            storage_record.to_json() if storage_record is not None else None
        ),
        "scale": [r.to_json() for r in scale_records],
        "geodetic": (
            {
                "projection": [p.to_json() for p in geo_projection],
                "fleets": [r.to_json() for r in geo_fleets],
            }
            if not args.no_geodetic
            else None
        ),
    }
    with fsio.open_file(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(_format_records(records))
    if fleet_records:
        print()
        print(_format_fleet(fleet_records))
    if dirty_fleet_record is not None:
        print()
        print(_format_dirty_fleet(dirty_fleet_record))
    if durability_record is not None:
        print()
        print(_format_durability(durability_record))
    if storage_record is not None:
        print()
        print(_format_storage(storage_record))
    if scale_records:
        print()
        print(_format_scale(scale_records))
    if geo_fleets:
        print()
        print(_format_geodetic(geo_projection, geo_fleets))
    print(f"\nwrote {out_path}")
    return 0


def main_compare(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench compare",
        description="Diff two bench result files and flag regressions.",
    )
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="flag pairs whose new throughput is below THRESHOLD x old",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when anything is flagged (off by default: timing noise)",
    )
    parser.add_argument(
        "--fail-on-behaviour",
        action="store_true",
        help="exit 1 only for behaviour changes (key points moved/changed); "
        "throughput deltas still print but only warn — the CI mode",
    )
    args = parser.parse_args(argv)

    rows, flagged = diff_benches(
        load_bench_file(args.old), load_bench_file(args.new), args.threshold
    )
    print(format_diff(rows))
    if flagged:
        behaviour = [r for r in flagged if r["behaviour"]]
        print(
            f"\n{len(flagged)} pair(s) flagged"
            + (f", {len(behaviour)} behaviour change(s)" if behaviour else "")
        )
        if args.strict:
            return 1
        if args.fail_on_behaviour and behaviour:
            return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "compare":
        return main_compare(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return main_run(argv)


if __name__ == "__main__":
    raise SystemExit(main())
