"""Reproducible benchmark subsystem for the streaming compressors.

Four pieces behind ``python -m repro.bench``:

* :mod:`repro.bench.workloads` — seeded, stdlib-only synthetic streams
  (random walk, grid-city driving, flight arcs, bursty stop-and-go);
* :mod:`repro.bench.harness` — the three-pass timing harness (batched
  object throughput + columnar throughput + per-push latency percentiles)
  with built-in error-bound and path-equivalence audits;
* :mod:`repro.bench.fleet` — the multi-stream fleet benchmark (per-device
  ceiling vs the single-process engine vs the sharded engine);
* :mod:`repro.bench.geodetic` — projection throughput and the GPS-native
  fleet workloads (single-zone / multi-zone / noisy) with geographic
  query latency, bracket-audited against brute-force lat/lon scans;
* :mod:`repro.bench.compare` — diffing two recorded ``BENCH_*.json`` runs
  and flagging regressions (behaviour changes separately from timing).

See ``BENCHMARKS.md`` at the repo root for methodology and recorded
results.
"""

from .compare import diff_benches, format_diff, load_bench_file
from .fleet import (
    DirtyFleetRecord,
    FleetRecord,
    fleet_digest,
    run_dirty_fleet_bench,
    run_fleet_bench,
)
from .geodetic import GeoFleetRecord, ProjectionRecord, run_geodetic_bench
from .harness import (
    BenchError,
    BenchRecord,
    bench_compressor,
    default_factories,
    key_point_digest,
    percentile,
    run_bench,
)
from .workloads import (
    WORKLOADS,
    bursty_pause,
    flight_arc,
    make_workload,
    random_walk,
    vehicle_route,
)

__all__ = [
    "BenchError",
    "BenchRecord",
    "DirtyFleetRecord",
    "FleetRecord",
    "GeoFleetRecord",
    "ProjectionRecord",
    "WORKLOADS",
    "bench_compressor",
    "bursty_pause",
    "default_factories",
    "diff_benches",
    "fleet_digest",
    "flight_arc",
    "format_diff",
    "key_point_digest",
    "load_bench_file",
    "make_workload",
    "percentile",
    "random_walk",
    "run_bench",
    "run_dirty_fleet_bench",
    "run_fleet_bench",
    "run_geodetic_bench",
    "vehicle_route",
]
