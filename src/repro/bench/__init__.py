"""Reproducible benchmark subsystem for the streaming compressors.

Three pieces behind ``python -m repro.bench``:

* :mod:`repro.bench.workloads` — seeded, stdlib-only synthetic streams
  (random walk, grid-city driving, flight arcs, bursty stop-and-go);
* :mod:`repro.bench.harness` — the two-pass timing harness (batched
  throughput + per-push latency percentiles) with built-in error-bound and
  fast-path-equivalence audits;
* :mod:`repro.bench.compare` — diffing two recorded ``BENCH_*.json`` runs
  and flagging regressions.

See ``BENCHMARKS.md`` at the repo root for methodology and recorded
results.
"""

from .compare import diff_benches, format_diff, load_bench_file
from .harness import (
    BenchError,
    BenchRecord,
    bench_compressor,
    default_factories,
    key_point_digest,
    percentile,
    run_bench,
)
from .workloads import (
    WORKLOADS,
    bursty_pause,
    flight_arc,
    make_workload,
    random_walk,
    vehicle_route,
)

__all__ = [
    "BenchError",
    "BenchRecord",
    "WORKLOADS",
    "bench_compressor",
    "bursty_pause",
    "default_factories",
    "diff_benches",
    "flight_arc",
    "format_diff",
    "key_point_digest",
    "load_bench_file",
    "make_workload",
    "percentile",
    "random_walk",
    "run_bench",
    "vehicle_route",
]
