"""Timing harness: throughput, per-push latency, and correctness audits.

Each (workload, algorithm) pair is measured in three passes over the same
point stream:

1. **Throughput pass** — one :meth:`push_many` batch plus ``finish()``,
   timed wall-clock.  ``points_per_sec = n / wall`` is the headline number;
   it exercises the allocation-lean batched object path.
2. **Columnar pass** — the same stream pre-shredded into
   :class:`~repro.model.columns.TrajectoryColumns` and fed through one
   :meth:`push_xyt` call plus ``finish()``.  ``columnar_points_per_sec``
   measures the zero-object struct-of-arrays path; the harness raises
   :class:`BenchError` if its key points differ from the object path's.
3. **Latency pass** — a fresh compressor driven point-by-point with a
   ``perf_counter`` bracket around every ``push`` call, yielding the
   per-push latency percentiles (p50/p90/p99/max) and the peak number of
   points the compressor retained.  This pass exercises the per-point path
   and doubles as a production equivalence check: the harness raises
   :class:`BenchError` if it disagrees with the batched pass on the key
   points.

The harness also audits the error bound on every run — an error-bounded
compressor whose output deviates beyond ``epsilon`` is a correctness bug,
not timing noise, so it raises :class:`BenchError` (which fails the CI
smoke job).
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Sequence

from ..compression.base import StreamingCompressor
from ..compression.baselines import (
    DeadReckoningCompressor,
    DouglasPeucker,
    TDTRCompressor,
    UniformSampler,
)
from ..compression.bqs import BQSCompressor
from ..compression.fast_bqs import FastBQSCompressor
from ..model.columns import TrajectoryColumns
from ..model.point import PlanePoint

__all__ = [
    "BenchError",
    "BenchRecord",
    "default_factories",
    "percentile",
    "bench_compressor",
    "run_bench",
]


class BenchError(RuntimeError):
    """A benchmarked run violated a correctness invariant (not timing)."""


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence (0 if empty)."""
    n = len(sorted_values)
    if n == 0:
        return 0.0
    rank = math.ceil(q / 100.0 * n)
    return sorted_values[min(n - 1, max(0, rank - 1))]


@dataclass(frozen=True)
class BenchRecord:
    """One algorithm's measurements over one workload."""

    workload: str
    algorithm: str
    points: int
    epsilon: float
    points_per_sec: float  #: batched path: n / (push_many + finish) wall
    wall_seconds: float  #: the wall time behind ``points_per_sec``
    columnar_points_per_sec: float  #: columnar path: n / (push_xyt + finish)
    columnar_wall_seconds: float  #: the wall time behind the columnar figure
    columnar_speedup: float  #: columnar_points_per_sec / points_per_sec
    push_us_p50: float  #: per-point path push() latency percentiles (µs)
    push_us_p90: float
    push_us_p99: float
    push_us_max: float
    key_points: int
    key_digest: str  #: order-sensitive digest of the exact key points
    compression_rate: float
    max_deviation: float
    error_bounded: bool
    within_bound: bool | None  #: None when the algorithm has no bound
    peak_retained_points: int
    finish_seconds: float
    decisions: Dict[str, int]

    def to_json(self) -> dict:
        return asdict(self)


def key_point_digest(key_points) -> str:
    """Short stable digest of a key-point sequence (exact coordinates).

    Lets ``compare`` detect behaviour changes that keep the key-point
    *count* but move the points — ``repr`` round-trips floats exactly, so
    equal digests mean bit-identical outputs.
    """
    payload = "|".join(f"{p.x!r},{p.y!r},{p.t!r}" for p in key_points)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


def default_factories(
    epsilon: float, uniform_period: int = 10
) -> Dict[str, Callable[[], StreamingCompressor]]:
    """Fresh-instance factories for the paper's comparison set.

    Factories (not instances) because the harness needs a pristine
    compressor per measurement pass.
    """
    return {
        "bqs": lambda: BQSCompressor(epsilon),
        "fast-bqs": lambda: FastBQSCompressor(epsilon),
        "dead-reckoning": lambda: DeadReckoningCompressor(epsilon),
        "uniform": lambda: UniformSampler(uniform_period),
        "douglas-peucker": lambda: DouglasPeucker(epsilon),
        "td-tr": lambda: TDTRCompressor(epsilon),
    }


def bench_compressor(
    make: Callable[[], StreamingCompressor],
    points: Sequence[PlanePoint],
    workload_name: str,
    repeats: int = 3,
) -> BenchRecord:
    """Measure one compressor over one stream (three passes, audited).

    Both throughput passes run ``repeats`` times on fresh compressors and
    record the fastest wall (best-of-N, the standard defence against
    scheduler/GC spikes — a single slow pass would otherwise flip the
    object-vs-columnar comparison on a noisy host).  Outputs must be
    identical across repeats, which every compressor's determinism
    guarantees.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    n = len(points)

    # Pass 1: throughput through the batched fast path.
    wall = math.inf
    finish_wall = math.inf
    compressed = None
    for _ in range(repeats):
        fast = make()
        t0 = time.perf_counter()
        fast.push_many(points)
        push_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = fast.finish()
        this_finish = time.perf_counter() - t0
        if push_wall + this_finish < wall:
            wall = push_wall + this_finish
            finish_wall = this_finish
        if compressed is None:
            compressed = result
        elif result.key_points != compressed.key_points:
            raise BenchError(
                f"{workload_name}/{result.algorithm}: push_many() repeats "
                f"disagree on key points (non-deterministic compressor?)"
            )

    # Pass 2: throughput through the zero-object columnar path.  The
    # columns are shredded outside the timed region, mirroring how the
    # object pass receives pre-built points.
    cols = TrajectoryColumns.from_points(points)
    col_wall = math.inf
    col_compressed = None
    for _ in range(repeats):
        columnar = make()
        t0 = time.perf_counter()
        columnar.push_xyt(cols.ts, cols.xs, cols.ys)
        col_push_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = columnar.finish()
        this_wall = col_push_wall + (time.perf_counter() - t0)
        if this_wall < col_wall:
            col_wall = this_wall
        if col_compressed is None:
            col_compressed = result
        elif result.key_points != col_compressed.key_points:
            raise BenchError(
                f"{workload_name}/{result.algorithm}: push_xyt() repeats "
                f"disagree on key points (non-deterministic compressor?)"
            )
    if col_compressed.key_points != compressed.key_points:
        raise BenchError(
            f"{workload_name}/{compressed.algorithm}: push_xyt() and "
            f"push_many() produced different key points "
            f"(columnar {len(col_compressed)} keys, digest "
            f"{key_point_digest(col_compressed.key_points)} vs object "
            f"{len(compressed)} keys, digest "
            f"{key_point_digest(compressed.key_points)})"
        )

    # Pass 3: per-push latency through the per-point path.
    slow = make()
    latencies: List[float] = []
    record_latency = latencies.append
    peak_retained = 0
    clock = time.perf_counter
    for p in points:
        start = clock()
        slow.push(p)
        record_latency(clock() - start)
        retained = slow.buffered_points
        if retained > peak_retained:
            peak_retained = retained
    reference = slow.finish()

    if reference.key_points != compressed.key_points:
        for i, (a, b) in enumerate(zip(compressed.key_points, reference.key_points)):
            if a != b:
                detail = f"first divergence at key {i}: batched {a} vs per-point {b}"
                break
        else:
            detail = (
                f"key counts differ: batched {len(compressed)} "
                f"vs per-point {len(reference)}"
            )
        raise BenchError(
            f"{workload_name}/{compressed.algorithm}: push_many() and "
            f"push() produced different key points ({detail})"
        )

    max_deviation = compressed.max_deviation_from(points)
    error_bounded = math.isfinite(fast.epsilon)
    within_bound: bool | None = None
    if error_bounded:
        within_bound = max_deviation <= fast.epsilon * (1.0 + 1e-9)
        if not within_bound:
            raise BenchError(
                f"{workload_name}/{compressed.algorithm}: max deviation "
                f"{max_deviation:.3f} exceeds epsilon {fast.epsilon:.3f}"
            )

    latencies.sort()
    return BenchRecord(
        workload=workload_name,
        algorithm=compressed.algorithm,
        points=n,
        epsilon=fast.epsilon,
        points_per_sec=n / wall if wall > 0.0 else 0.0,
        wall_seconds=wall,
        columnar_points_per_sec=n / col_wall if col_wall > 0.0 else 0.0,
        columnar_wall_seconds=col_wall,
        columnar_speedup=wall / col_wall if col_wall > 0.0 else 0.0,
        push_us_p50=percentile(latencies, 50.0) * 1e6,
        push_us_p90=percentile(latencies, 90.0) * 1e6,
        push_us_p99=percentile(latencies, 99.0) * 1e6,
        push_us_max=(latencies[-1] * 1e6) if latencies else 0.0,
        key_points=len(compressed),
        key_digest=key_point_digest(compressed.key_points),
        compression_rate=compressed.compression_rate,
        max_deviation=max_deviation,
        error_bounded=error_bounded,
        within_bound=within_bound,
        peak_retained_points=peak_retained,
        finish_seconds=finish_wall,
        decisions=dict(fast.stats),
    )


def run_bench(
    workload_points: Dict[str, Sequence[PlanePoint]],
    epsilon: float,
    uniform_period: int = 10,
    algorithms: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
    repeats: int = 3,
) -> List[BenchRecord]:
    """Benchmark the selected algorithms over pre-generated workloads."""
    factories = default_factories(epsilon, uniform_period)
    if algorithms is not None:
        unknown = set(algorithms) - set(factories)
        if unknown:
            raise ValueError(
                f"unknown algorithms: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(factories))}"
            )
        factories = {name: factories[name] for name in algorithms}
    records: List[BenchRecord] = []
    for workload_name, points in workload_points.items():
        for algorithm, make in factories.items():
            if progress is not None:
                progress(f"{workload_name}/{algorithm} ({len(points)} points)")
            records.append(
                bench_compressor(make, points, workload_name, repeats=repeats)
            )
    return records
