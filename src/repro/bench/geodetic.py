"""Geodetic benchmark: projection throughput + GPS-native fleet workloads.

Two measured stages, digest-audited like the rest of the subsystem:

**Projection stage**
    Bulk ``forward_columns`` throughput of the full Krüger-series
    :class:`~repro.model.projection.UTMProjection` and the equirectangular
    :class:`~repro.model.projection.LocalTangentProjection` over one
    seeded coordinate column — the cost of turning raw GPS into the
    metric plane every BQS runs in.  Timing only (libm trigonometry is
    not bit-portable across platforms, so raw projected bytes make a poor
    cross-machine digest).

**GPS fleet stage** (three variants)
    ``single_zone``, ``multi_zone`` (fleet straddling two UTM zone
    boundaries, both hemispheres) and ``noisy_multi_zone`` (±3 m Gaussian
    GPS noise): each is simulated with
    :func:`~repro.engine.simulate.gps_fleet_fixes`, ingested through
    ``GeoStreamEngine -> StoreSink`` into a temporary store, then
    answered with a geographic rectangle in ``exact`` and ``approximate``
    modes plus a brute-force lat/lon scan of the raw fixes.  The run
    **fails** (:class:`~repro.bench.harness.BenchError`) unless the
    bracket ``definite ⊆ truth ⊆ exact ⊆ approximate`` holds — the
    no-false-negative guarantee, surviving projection into each record's
    own zone — and the digest over the three answer sets pins query
    behaviour for ``compare``.  Membership decisions have metre-scale
    margins, so the digest is robust to sub-ulp libm differences that
    rule out digesting raw projected coordinates.
"""

from __future__ import annotations

import functools
import hashlib
import math
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass
from typing import Callable, List, Tuple

from ..engine.geodetic import GeoStreamEngine
from ..engine.simulate import bqs_fleet_factory, gps_fleet_fixes, iter_geo_fix_batches
from ..model.projection import LocalTangentProjection, UTMProjection
from ..storage.query import geo_range_query
from ..storage.store import StoreSink, TrajectoryStore
from .harness import BenchError

__all__ = [
    "ProjectionRecord",
    "GeoFleetRecord",
    "run_geodetic_bench",
]

#: The GPS fleet variants the stage runs, with their simulator options.
_VARIANTS: Tuple[Tuple[str, dict], ...] = (
    ("single_zone", {}),
    ("multi_zone", {"multi_zone": True}),
    ("noisy_multi_zone", {"multi_zone": True, "noise_m": 3.0}),
)


@dataclass(frozen=True)
class ProjectionRecord:
    """Bulk projection throughput for one projection implementation."""

    projection: str  #: "utm" or "local_tangent"
    points: int
    points_per_sec: float
    forward_seconds: float  #: best-of-N wall for one full column pass

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class GeoFleetRecord:
    """One GPS fleet variant: ingest throughput + geodetic query results."""

    variant: str
    devices: int
    fixes_per_device: int
    epsilon: float
    zones: List[str]  #: distinct stamped frames, e.g. ["22S", "33N"]
    ingest_fixes_per_sec: float
    store_bytes: int
    records: int
    exact_query_seconds: float  #: best-of-N geographic exact-mode wall
    approx_query_seconds: float
    brute_query_seconds: float  #: raw lat/lon scan answering the same rect
    definite_devices: int
    truth_devices: int
    exact_devices: int
    approx_devices: int
    query_digest: str  #: sha256[:16] over the three answer sets

    def to_json(self) -> dict:
        return asdict(self)


def _best_of(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    best = math.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
            result = out
    return best, result


def _projection_stage(
    points: int, seed: int, repeats: int
) -> List[ProjectionRecord]:
    # One seeded coordinate column reused by both projections: a ±10 km
    # scatter around a mid-zone anchor, the shape ingestion sees.
    import random

    rng = random.Random(seed * 52_711)
    lat0, lon0 = 47.36, 8.55
    lats = [lat0 + rng.uniform(-0.09, 0.09) for _ in range(points)]
    lons = [lon0 + rng.uniform(-0.13, 0.13) for _ in range(points)]
    records = []
    for name, projection in (
        ("utm", UTMProjection.for_coordinate(lat0, lon0)),
        ("local_tangent", LocalTangentProjection(lat0, lon0)),
    ):
        wall, _ = _best_of(
            lambda: projection.forward_columns(lats, lons), repeats
        )
        records.append(
            ProjectionRecord(
                projection=name,
                points=points,
                points_per_sec=points / wall if wall > 0.0 else 0.0,
                forward_seconds=wall,
            )
        )
    return records


def _geo_query_rect(lats, lons) -> Tuple[float, float, float, float]:
    """The middle third of the fleet's *northern-cluster* lat/lon coverage.

    Data-derived so the query stays meaningful at any scale; restricted
    to the northern hemisphere when both are present because the
    multi-zone fleet is two clusters a continent apart — the global
    middle third would land in empty ocean and audit nothing.  The
    northern cluster straddles the 32|33 zone boundary, so the rectangle
    exercises the per-record frame projection on both sides of it.
    """
    if any(la >= 0.0 for la in lats) and any(la < 0.0 for la in lats):
        pairs = [(la, lo) for la, lo in zip(lats, lons) if la >= 0.0]
        lats = [p[0] for p in pairs]
        lons = [p[1] for p in pairs]
    lat_min, lat_max = min(lats), max(lats)
    lon_min, lon_max = min(lons), max(lons)
    return (
        lat_min + (lat_max - lat_min) / 3.0,
        lon_min + (lon_max - lon_min) / 3.0,
        lat_min + 2.0 * (lat_max - lat_min) / 3.0,
        lon_min + 2.0 * (lon_max - lon_min) / 3.0,
    )


def _fleet_variant(
    variant: str,
    options: dict,
    devices: int,
    fixes_per_device: int,
    epsilon: float,
    seed: int,
    repeats: int,
) -> GeoFleetRecord:
    ids, ts, lats, lons = gps_fleet_fixes(
        devices, fixes_per_device, seed=seed, **options
    )
    total = len(ids)
    factory = functools.partial(bqs_fleet_factory, epsilon)

    directory = tempfile.mkdtemp(prefix=f"repro-geo-bench-{variant}-")
    try:
        ingest_wall = math.inf
        for _ in range(repeats):
            shutil.rmtree(directory, ignore_errors=True)
            sink = StoreSink(directory)
            engine = GeoStreamEngine(factory, collect=False, sink=sink)
            t0 = time.perf_counter()
            for batch in iter_geo_fix_batches(ids, ts, lats, lons, 4096):
                engine.push_columns(*batch)
            engine.finish_all()
            sink.close()
            ingest_wall = min(ingest_wall, time.perf_counter() - t0)

        rect = _geo_query_rect(lats, lons)
        store = TrajectoryStore(directory)
        try:
            store_bytes = store.total_bytes()
            records = store.record_count
            zones = sorted(
                {
                    f"{r.utm_zone}{'S' if r.utm_south else 'N'}"
                    for r in store.records()
                    if r.utm_zone is not None
                }
            )
            exact_wall, exact = _best_of(
                lambda: geo_range_query(store, rect, mode="exact"), repeats
            )
            approx_wall, approx = _best_of(
                lambda: geo_range_query(store, rect, mode="approximate"),
                repeats,
            )
        finally:
            store.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    def brute() -> set:
        lat0, lon0, lat1, lon1 = rect
        inside = set()
        for d, la, lo in zip(ids, lats, lons):
            if d not in inside and lat0 <= la <= lat1 and lon0 <= lo <= lon1:
                inside.add(d)
        return inside

    brute_wall, truth = _best_of(brute, repeats)

    definite_set = {m.device_id for m in exact if m.definite}
    exact_set = {m.device_id for m in exact}
    approx_set = {m.device_id for m in approx}
    if not definite_set <= truth:
        raise BenchError(
            f"geodetic/{variant}: definite matches outside the true answer "
            f"({sorted(definite_set - truth)[:5]})"
        )
    if not truth <= exact_set:
        raise BenchError(
            f"geodetic/{variant}: exact mode missed devices the raw GPS "
            f"scan found (false negatives: {sorted(truth - exact_set)[:5]})"
        )
    if not exact_set <= approx_set:
        raise BenchError(
            f"geodetic/{variant}: exact mode returned records the "
            f"approximate screen rejected ({sorted(exact_set - approx_set)[:5]})"
        )

    digest = hashlib.sha256(
        (
            "|".join(sorted(definite_set))
            + "##"
            + "|".join(sorted(exact_set))
            + "##"
            + "|".join(sorted(approx_set))
        ).encode()
    ).hexdigest()[:16]

    return GeoFleetRecord(
        variant=variant,
        devices=devices,
        fixes_per_device=fixes_per_device,
        epsilon=epsilon,
        zones=zones,
        ingest_fixes_per_sec=total / ingest_wall if ingest_wall > 0.0 else 0.0,
        store_bytes=store_bytes,
        records=records,
        exact_query_seconds=exact_wall,
        approx_query_seconds=approx_wall,
        brute_query_seconds=brute_wall,
        definite_devices=len(definite_set),
        truth_devices=len(truth),
        exact_devices=len(exact_set),
        approx_devices=len(approx_set),
        query_digest=digest,
    )


def run_geodetic_bench(
    points: int = 100_000,
    epsilon: float = 10.0,
    seed: int = 7,
    fleet_devices: int = 50,
    fleet_fixes_per_device: int = 200,
    repeats: int = 3,
    progress: Callable[[str], None] | None = None,
) -> Tuple[List[ProjectionRecord], List[GeoFleetRecord]]:
    """Run both geodetic stages; returns (projection, fleet) records."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    note(f"geodetic/projection ({points} coordinates)")
    projection_records = _projection_stage(points, seed, repeats)

    fleet_records = []
    for variant, options in _VARIANTS:
        note(
            f"geodetic/{variant} ({fleet_devices} devices x "
            f"{fleet_fixes_per_device} fixes)"
        )
        fleet_records.append(
            _fleet_variant(
                variant,
                options,
                fleet_devices,
                fleet_fixes_per_device,
                epsilon,
                seed,
                repeats,
            )
        )
    return projection_records, fleet_records
