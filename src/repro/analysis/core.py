"""Linter infrastructure: parsing, suppressions, the rule registry.

Everything here is rule-agnostic.  A :class:`SourceModule` wraps one
parsed file with the conveniences every rule needs — parent links on the
AST, dotted call names, scoping by path segment — and the suppression
table extracted from ``# repro: ignore[RULE-ID]`` comments.  Rules
register themselves in :data:`RULES` via the :func:`rule` decorator (see
:mod:`repro.analysis.rules`).

Suppression semantics: a comment silences matching findings on its own
physical line; a comment that stands alone on a line silences findings
on the next line instead (for statements too long to share a line with
their justification).  ``--strict`` turns an unjustified or unused
suppression into a finding of its own (rule ``RA00``), so a suppression
cannot outlive the code it excused.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "SourceModule",
    "Suppression",
    "analyze_source",
    "iter_python_files",
    "run_paths",
    "rule",
    "call_name",
    "META_RULE_ID",
]

#: The linter's own hygiene rule: unjustified / unused suppressions.
META_RULE_ID = "RA00"

_IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[A-Za-z0-9_,\s-]+)\]\s*(?P<why>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}{mark}: {self.message}"


@dataclass
class Suppression:
    """One ``# repro: ignore[...]`` comment and what it applies to."""

    line: int  #: the line whose findings this comment silences
    comment_line: int  #: the physical line the comment sits on
    rules: Tuple[str, ...]
    justification: str
    used: Set[str] = field(default_factory=set)

    def matches(self, rule_id: str) -> bool:
        return rule_id in self.rules


class Rule:
    """A registered invariant check.

    Subclass-free by design: a rule is its id, a one-line title, the
    historical rationale, and a check function over a
    :class:`SourceModule` yielding :class:`Finding`\\ s.
    """

    def __init__(
        self,
        rule_id: str,
        title: str,
        rationale: str,
        check: Callable[["SourceModule"], Iterator[Finding]],
    ) -> None:
        self.id = rule_id
        self.title = title
        self.rationale = rationale
        self._check = check

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        return self._check(module)


#: The global registry, id -> rule, in registration order.
RULES: Dict[str, Rule] = {}


def rule(rule_id: str, title: str, rationale: str):
    """Class-level decorator registering a check function as a rule."""

    def register(check: Callable[["SourceModule"], Iterator[Finding]]) -> Rule:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        r = Rule(rule_id, title, rationale, check)
        RULES[rule_id] = r
        return r

    return register


def call_name(node: ast.AST) -> Optional[str]:
    """The dotted name of a call target (``os.replace``, ``open``,
    ``self._shm.unlink``) or ``None`` when it isn't a plain name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class SourceModule:
    """One parsed source file plus the lookups rules share."""

    def __init__(self, path: str, text: str, display_path: Optional[str] = None):
        self.path = path
        self.display_path = display_path or path
        self.text = text
        self.tree = ast.parse(text, filename=path)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        #: Path segments, for scoping rules to subtrees ("engine",
        #: "storage", ...) without caring where the checkout lives.
        self.parts: Tuple[str, ...] = Path(path).parts
        self.filename: str = Path(path).name
        self.suppressions: List[Suppression] = _parse_suppressions(text)
        self._by_line: Dict[int, List[Suppression]] = {}
        for sup in self.suppressions:
            self._by_line.setdefault(sup.line, []).append(sup)

    # -- structure -----------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def in_dir(self, *segments: str) -> bool:
        """Whether any of ``segments`` appears as a path component."""
        return any(seg in self.parts for seg in segments)

    # -- findings ------------------------------------------------------------

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a finding at ``node``, resolving suppression comments."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        for sup in self._by_line.get(line, ()):
            if sup.matches(rule_id):
                sup.used.add(rule_id)
                return Finding(
                    rule_id,
                    self.display_path,
                    line,
                    col,
                    message,
                    suppressed=True,
                    justification=sup.justification or None,
                )
        return Finding(rule_id, self.display_path, line, col, message)


def _parse_suppressions(text: str) -> List[Suppression]:
    """Extract ``# repro: ignore[...]`` comments via tokenize.

    Tokenizing (rather than regexing raw lines) keeps the marker inert
    inside string literals, so fixture snippets and docs can quote the
    syntax without silencing anything.
    """
    sups: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return sups
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _IGNORE_RE.search(tok.string)
        if m is None:
            continue
        rules = tuple(
            part.strip().upper()
            for part in m.group("rules").split(",")
            if part.strip()
        )
        why = m.group("why").strip().lstrip("-—:").strip()
        line = tok.start[0]
        # A comment alone on its line governs the following line.
        standalone = tok.line[: tok.start[1]].strip() == ""
        sups.append(
            Suppression(
                line=line + 1 if standalone else line,
                comment_line=line,
                rules=rules,
                justification=why,
            )
        )
    return sups


# -- running -----------------------------------------------------------------


def analyze_source(
    path: str,
    text: str,
    *,
    strict: bool = False,
    display_path: Optional[str] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Run every rule over one file's source; returns sorted findings
    (suppressed ones included, flagged)."""
    module = SourceModule(path, text, display_path=display_path)
    findings: List[Finding] = []
    for r in rules if rules is not None else RULES.values():
        findings.extend(r.check(module))
    if strict:
        findings.extend(_meta_findings(module))
    findings.sort(key=Finding.sort_key)
    return findings


def _meta_findings(module: SourceModule) -> Iterator[Finding]:
    """RA00: suppression hygiene — every ignore must be justified and
    must still be doing work."""
    for sup in module.suppressions:
        unknown = [r for r in sup.rules if r not in RULES and r != META_RULE_ID]
        if unknown:
            yield Finding(
                META_RULE_ID,
                module.display_path,
                sup.comment_line,
                0,
                f"suppression names unknown rule(s) {', '.join(unknown)}",
            )
        if not sup.justification:
            yield Finding(
                META_RULE_ID,
                module.display_path,
                sup.comment_line,
                0,
                "suppression lacks a justification — say why the contract "
                "does not apply here: # repro: ignore[RULE] <reason>",
            )
        unused = [r for r in sup.rules if r in RULES and r not in sup.used]
        if unused:
            yield Finding(
                META_RULE_ID,
                module.display_path,
                sup.comment_line,
                0,
                f"unused suppression for {', '.join(unused)} — the finding "
                "it excused is gone; delete the comment",
            )


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories to ``.py`` files, sorted for determinism."""
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            rc = c.resolve()
            if rc not in seen:
                seen.add(rc)
                yield c


def run_paths(
    paths: Iterable[str], *, strict: bool = False
) -> Tuple[List[Finding], int]:
    """Lint every python file under ``paths``.

    Returns ``(findings, checked_files)``; findings are sorted and
    include suppressed ones (callers filter on ``suppressed`` for the
    exit code).
    """
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        text = path.read_text(encoding="utf-8")
        findings.extend(
            analyze_source(str(path), text, strict=strict, display_path=str(path))
        )
    findings.sort(key=Finding.sort_key)
    return findings, checked
