"""The rule catalog.  Each rule encodes one contract this repo has
already paid to learn.

========  ====================================================================
RA01      Mutating filesystem calls must go through the ``repro.fsio`` seam.
RA02      A ``*.tmp`` write must sit in a ``try`` whose handler unlinks it.
RA03      Nothing order- or clock-nondeterministic may feed outputs:
          no unsorted set iteration, no wall-clock/unseeded randomness.
RA04      Data-plane failures raise the typed taxonomy, not bare
          ``RuntimeError``/``ValueError``.
RA05      Payload floats move through ``struct``/memcpy — never through a
          string round-trip.
RA06      ``SharedMemory`` attaches go through the tracker-suppressing
          helper in ``transport.py``.
========  ====================================================================

Scoping is by path segment (``module.in_dir("engine")``), not by import
graph, so the rules work identically on the real tree and on fixture
trees tests synthesize under a temp directory.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from .core import Finding, SourceModule, call_name, rule

__all__ = ["RA01", "RA02", "RA03", "RA04", "RA05", "RA06"]


# -- shared helpers ----------------------------------------------------------

_WRITE_MODE_CHARS = set("wax+")


def _call_mode_arg(call: ast.Call) -> Optional[ast.expr]:
    """The ``mode`` argument of an ``open``-shaped call, if present."""
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            return kw.value
    return None


def _is_write_mode(mode: Optional[ast.expr]) -> Optional[bool]:
    """True/False when the mode is statically known; ``None`` if dynamic."""
    if mode is None:
        return False  # open() defaults to "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _assigned_names(target: ast.expr) -> Set[str]:
    return {
        n.id
        for n in ast.walk(target)
        if isinstance(n, ast.Name) and isinstance(n.ctx, (ast.Store,))
    }


def _function_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    a = func.args
    names = {arg.arg for arg in a.posonlyargs + a.args + a.kwonlyargs}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    names.discard("self")
    names.discard("cls")
    return names


def _tainted_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    """Names derived from the function's parameters (fixpoint over simple
    assignments and ``for`` targets) — the values argument validation is
    allowed to reject with a bare ``ValueError``."""
    tainted = _function_params(func)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is None or not (_names_in(value) & tainted):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    new = _assigned_names(t) - tainted
                    if new:
                        tainted |= new
                        changed = True
            elif isinstance(node, ast.For):
                if _names_in(node.iter) & tainted:
                    new = _assigned_names(node.target) - tainted
                    if new:
                        tainted |= new
                        changed = True
            elif isinstance(node, ast.NamedExpr):
                if _names_in(node.value) & tainted:
                    new = {node.target.id} - tainted
                    if new:
                        tainted |= new
                        changed = True
    return tainted


# -- RA01: fsio seam ---------------------------------------------------------

_RA01_OS_CALLS = {
    "os.replace": "fsio.replace",
    "os.rename": "fsio.replace",
    "os.fsync": "fsio.fsync",
    "os.unlink": "fsio.unlink",
    "os.remove": "fsio.unlink",
}


def _ra01_exempt(module: SourceModule) -> bool:
    # fsio.py IS the seam; repro/testing hosts the fault shims that
    # deliberately hit the real filesystem underneath it.
    return module.filename == "fsio.py" or module.in_dir("testing")


@rule(
    "RA01",
    "mutating filesystem calls must go through the repro.fsio seam",
    "The crash harness injects ENOSPC/torn-write/kill-9 faults at the "
    "fsio seam; a direct builtin write path is invisible to it, so its "
    "failure modes ship untested.",
)
def RA01(module: SourceModule) -> Iterator[Finding]:
    if _ra01_exempt(module):
        return
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node.func)
        if name is None:
            continue
        if name in _RA01_OS_CALLS:
            yield module.finding(
                "RA01",
                node,
                f"direct {name}() bypasses the fsio seam — use "
                f"{_RA01_OS_CALLS[name]}() so fault injection can see it",
            )
        elif name == "open":
            writes = _is_write_mode(_call_mode_arg(node))
            if writes:
                yield module.finding(
                    "RA01",
                    node,
                    "write-mode open() bypasses the fsio seam — use "
                    "fsio.open_file() so fault injection can see it",
                )
            elif writes is None:
                yield module.finding(
                    "RA01",
                    node,
                    "open() with a dynamic mode cannot be proven read-only — "
                    "pass a literal mode or route through fsio.open_file()",
                )


# -- RA02: tmp hygiene -------------------------------------------------------


def _mentions_tmp_suffix(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and sub.value.endswith(".tmp")
        ):
            return True
    return False


def _unlinks_name(handler_body: list, name: str) -> bool:
    for stmt in handler_body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node.func)
            if callee is None:
                continue
            # os.unlink(tmp) / fsio.unlink(tmp) / Path-style tmp.unlink()
            if callee.endswith("unlink") or callee.endswith("remove"):
                if callee.startswith(f"{name}."):
                    return True
                if any(
                    isinstance(a, ast.Name) and a.id == name for a in node.args
                ):
                    return True
    return False


@rule(
    "RA02",
    "a *.tmp write must sit in a try whose handler unlinks it",
    "PRs 6 and 8 each shipped fixes for .tmp files orphaned by a failed "
    "write: a stale manifest.json.tmp shadows the next commit, a "
    "truncated .idx.tmp can be promoted by a later rename.",
)
def RA02(module: SourceModule) -> Iterator[Finding]:
    for func in module.walk():
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        tmp_names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and _mentions_tmp_suffix(node.value):
                for t in node.targets:
                    tmp_names |= _assigned_names(t)
        if not tmp_names:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node.func)
            if callee is None or not (
                callee == "open" or callee.endswith("open_file") or callee.endswith(".open")
            ):
                continue
            used = {
                a.id
                for a in node.args
                if isinstance(a, ast.Name) and a.id in tmp_names
            }
            if not used:
                continue
            mode = _is_write_mode(_call_mode_arg(node))
            if mode is False:
                continue
            name = sorted(used)[0]
            protected = False
            for anc in module.ancestors(node):
                if anc is func:
                    break
                if isinstance(anc, ast.Try):
                    handler_bodies = [h.body for h in anc.handlers]
                    if anc.finalbody:
                        handler_bodies.append(anc.finalbody)
                    if any(_unlinks_name(b, name) for b in handler_bodies):
                        protected = True
                        break
            if not protected:
                yield module.finding(
                    "RA02",
                    node,
                    f"write to tmp path {name!r} is not guarded by a try "
                    f"whose handler unlinks it — a failed write would leave "
                    f"a stale/truncated .tmp on disk",
                )


# -- RA03: digest determinism ------------------------------------------------

_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "set",
    "frozenset",
}

_CLOCK_CALLS = {
    "time.time": "wall-clock time in outputs breaks run-to-run determinism",
    "datetime.now": "wall-clock timestamps break run-to-run determinism",
    "datetime.utcnow": "wall-clock timestamps break run-to-run determinism",
    "datetime.datetime.now": "wall-clock timestamps break run-to-run determinism",
    "datetime.datetime.utcnow": "wall-clock timestamps break run-to-run determinism",
}

#: Module-level random.* functions share interpreter-global state; only
#: seeded random.Random(seed) instances are reproducible.
_RANDOM_MODULE_FNS = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.seed",
}


def _is_setlike(node: ast.AST, local_sets: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node.func)
        if name in {"set", "frozenset"}:
            return True
        if name is not None and name.split(".")[-1] in {
            "intersection",
            "union",
            "difference",
            "symmetric_difference",
        }:
            # set operators on an already-set receiver; only treat as
            # set-like when the receiver is a known local set.
            recv = name.rsplit(".", 1)[0]
            return recv in local_sets
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_setlike(node.left, local_sets) or _is_setlike(
            node.right, local_sets
        )
    return False


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function/class
    bodies, so one function's locals never leak into another's."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _local_set_names(scope: ast.AST) -> Set[str]:
    """Names bound to set-typed expressions within ``scope`` (one level of
    literal inference; no interprocedural tracking)."""
    names: Set[str] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign):
            if _is_setlike(node.value, names):
                for t in node.targets:
                    names |= _assigned_names(t)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_setlike(node.value, names):
                names |= _assigned_names(node.target)
    return names


def _ra03_clock_exempt(module: SourceModule) -> bool:
    # Bench/CLI entry points stamp their reports with the recording time
    # on purpose; the records' *digests* never include it.
    return module.filename == "__main__.py" or module.in_dir("testing")


@rule(
    "RA03",
    "no unsorted set iteration / wall-clock / global randomness near outputs",
    "Digest audits pin every ingest path bit-identical; set iteration "
    "order varies with PYTHONHASHSEED across processes, and wall-clock "
    "or interpreter-global randomness varies across runs.",
)
def RA03(module: SourceModule) -> Iterator[Finding]:
    # (a) clocks and global randomness
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node.func)
        if name is None:
            continue
        if name in _CLOCK_CALLS and not _ra03_clock_exempt(module):
            yield module.finding("RA03", node, f"{name}(): {_CLOCK_CALLS[name]}")
        elif name in _RANDOM_MODULE_FNS:
            yield module.finding(
                "RA03",
                node,
                f"{name}() uses interpreter-global random state — "
                "construct a seeded random.Random(seed) instance instead",
            )
        elif name == "random.Random" and not node.args and not node.keywords:
            yield module.finding(
                "RA03",
                node,
                "random.Random() without a seed draws entropy from the OS — "
                "pass an explicit seed",
            )

    # (b) unsorted set iteration, resolved against the enclosing scope's
    # locally-inferred set bindings
    set_cache: dict = {}
    for node in module.walk():
        iters: list = []
        if isinstance(node, ast.For):
            iters = [node.iter]
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            iters = [gen.iter for gen in node.generators]
        if not iters:
            continue
        scope = module.enclosing_function(node) or module.tree
        key = id(scope)
        if key not in set_cache:
            set_cache[key] = _local_set_names(scope)
        local_sets = set_cache[key]
        for it in iters:
            if not _is_setlike(it, local_sets):
                continue
            # Iteration whose *consumer* is order-insensitive is fine:
            # sorted({...}), sum(x for x in s), s2 = set(s), min(s)...
            parent = module.parent(node)
            if isinstance(parent, ast.Call) and call_name(parent.func) in (
                _ORDER_INSENSITIVE_CONSUMERS
            ):
                continue
            yield module.finding(
                "RA03",
                node,
                "iteration over a set is PYTHONHASHSEED-ordered — wrap "
                "the iterable in sorted() before it can feed a digest, "
                "report, or stored artifact",
            )


# -- RA04: typed errors ------------------------------------------------------

_BARE_ERRORS = {"RuntimeError", "ValueError"}

_TAXONOMY_HINT = (
    "the taxonomy here is ShardCrashError / JournalError / TransportError / "
    "CodecError / BatchIngestError / StaleStoreError"
)


def _ra04_in_scope(module: SourceModule) -> bool:
    if module.in_dir("testing"):
        return False
    return module.in_dir("engine", "storage") or module.filename == "transport.py"


@rule(
    "RA04",
    "data-plane failures raise the typed error taxonomy",
    "Callers route on ShardCrashError/JournalError/TransportError/"
    "CodecError/BatchIngestError; a bare RuntimeError or ValueError "
    "escaping the data plane is unroutable and unhandled.",
)
def RA04(module: SourceModule) -> Iterator[Finding]:
    if not _ra04_in_scope(module):
        return
    taint_cache: dict = {}
    for node in module.walk():
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc_name = call_name(exc.func)
        elif isinstance(exc, ast.Name):
            exc_name = exc.id
        else:
            continue
        if exc_name not in _BARE_ERRORS:
            continue
        func = module.enclosing_function(node)
        if exc_name == "ValueError" and func is not None:
            # Argument validation is ValueError's legitimate job: exempt
            # raises in __init__/__post_init__ and raises guarded by a
            # test over a parameter(-derived) value.
            if func.name in {"__init__", "__post_init__"}:
                continue
            key = id(func)
            if key not in taint_cache:
                taint_cache[key] = _tainted_names(func)
            tainted = taint_cache[key]
            guarded = False
            for anc in module.ancestors(node):
                if anc is func:
                    break
                if isinstance(anc, ast.If) and (_names_in(anc.test) & tainted):
                    guarded = True
                    break
            if guarded:
                continue
        yield module.finding(
            "RA04",
            node,
            f"bare {exc_name} raised on the data plane — {_TAXONOMY_HINT}",
        )


# -- RA05: float bit-exactness -----------------------------------------------

_STRINGIFIERS = {"str", "repr", "format"}


def _is_string_producing(node: ast.AST) -> bool:
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node.func)
        if name in _STRINGIFIERS:
            return True
        if name is not None and name.endswith(".format"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        return _is_string_producing(node.left)
    return False


def _ra05_in_scope(module: SourceModule) -> bool:
    return module.filename in {"codec.py", "journal.py", "transport.py"}


@rule(
    "RA05",
    "payload floats never round-trip through a string",
    "Replay and transport parity are pinned bit-identical (NaN payloads, "
    "-0.0, denormals); str()/repr() round-trips lose the distinction "
    "between NaN bit patterns and are locale/precision hazards — floats "
    "cross serialization boundaries via struct/memcpy only.",
)
def RA05(module: SourceModule) -> Iterator[Finding]:
    if not _ra05_in_scope(module):
        return
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        if call_name(node.func) == "float" and node.args:
            if _is_string_producing(node.args[0]):
                yield module.finding(
                    "RA05",
                    node,
                    "float(<string>) re-parse in a payload path — floats "
                    "must move through struct/memcpy to stay bit-exact",
                )


# -- RA06: shared-memory lifecycle -------------------------------------------

_ATTACH_HELPER = "attach_shared_memory"


def _in_attach_helper(module: SourceModule, node: ast.AST) -> bool:
    func = module.enclosing_function(node)
    return (
        func is not None
        and func.name == _ATTACH_HELPER
        and module.filename == "transport.py"
    )


@rule(
    "RA06",
    "SharedMemory attaches go through transport.attach_shared_memory",
    "CPython registers a segment with the resource tracker on attach as "
    "well as create (bpo-38119); an unsuppressed worker attach lets the "
    "tracker erase the parent's unlink entry and leak /dev/shm segments. "
    "transport.attach_shared_memory() is the one audited workaround.",
)
def RA06(module: SourceModule) -> Iterator[Finding]:
    for node in module.walk():
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            if name is None or name.split(".")[-1] != "SharedMemory":
                continue
            create = None
            for kw in node.keywords:
                if kw.arg == "create":
                    if isinstance(kw.value, ast.Constant):
                        create = bool(kw.value.value)
                    break
            if create is True:
                continue  # creation registers correctly; only attach is unsafe
            if _in_attach_helper(module, node):
                continue
            yield module.finding(
                "RA06",
                node,
                "SharedMemory attach outside transport.attach_shared_memory() "
                "re-registers the segment with the shared resource tracker "
                "(bpo-38119) and can erase the owner's cleanup entry",
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                tname = call_name(t) if isinstance(t, ast.Attribute) else None
                if tname == "resource_tracker.register" and not _in_attach_helper(
                    module, node
                ):
                    yield module.finding(
                        "RA06",
                        node,
                        "monkeypatching resource_tracker.register outside "
                        "transport.attach_shared_memory() — route the attach "
                        "through the one audited helper",
                    )
