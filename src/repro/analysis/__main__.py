"""``python -m repro.analysis`` — lint the tree against the contract rules.

Exit status: 0 when no unsuppressed finding exists (and, under
``--strict``, no suppression-hygiene finding); 1 otherwise; 2 on usage
errors.  ``--json`` emits a machine-readable report on stdout (findings
sorted by path/line/col/rule, suppressed ones included and flagged) for
CI annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .core import META_RULE_ID, RULES, Finding, run_paths
from . import rules as _rules  # noqa: F401  (register the catalog)

JSON_SCHEMA_VERSION = 1


def _list_rules() -> str:
    lines = [f"{META_RULE_ID}: suppression hygiene (strict mode only)"]
    lines += [f"{r.id}: {r.title}\n    {r.rationale}" for r in RULES.values()]
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based linter for this repo's determinism, "
        "durability, and transport contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on unjustified or unused suppression comments",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        findings, checked = run_paths(args.paths, strict=args.strict)
    except (OSError, SyntaxError) as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    active = [f for f in findings if not f.suppressed]
    exit_code = 1 if active else 0

    if args.as_json:
        counts: dict = {}
        for f in active:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        print(
            json.dumps(
                {
                    "tool": "repro.analysis",
                    "version": JSON_SCHEMA_VERSION,
                    "strict": bool(args.strict),
                    "checked_files": checked,
                    "counts": {k: counts[k] for k in sorted(counts)},
                    "findings": [
                        {
                            "rule": f.rule,
                            "path": f.path,
                            "line": f.line,
                            "col": f.col,
                            "message": f.message,
                            "suppressed": f.suppressed,
                            "justification": f.justification,
                        }
                        for f in findings
                    ],
                    "exit_code": exit_code,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return exit_code

    for f in findings:
        if f.suppressed:
            continue
        print(f.render())
    suppressed = sum(1 for f in findings if f.suppressed)
    label = "strict " if args.strict else ""
    print(
        f"repro.analysis: {checked} files, {len(active)} {label}finding(s), "
        f"{suppressed} suppressed",
        file=sys.stderr,
    )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
