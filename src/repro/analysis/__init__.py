"""Static analysis for this repository's own correctness contracts.

The reproduction's load-bearing guarantees — bit-identical digests on
every ingest path, crash safety through the :mod:`repro.fsio` seam, and
a safe shared-memory lifecycle across the sharded transport — are
invariants of the *codebase*, not of any single function, so unit tests
can only catch their violations after the fact.  This package enforces
them mechanically at review time: a pure-stdlib (``ast`` + ``tokenize``)
linter with one rule per contract, each grounded in a bug this repo has
actually shipped and fixed.

Run it as::

    python -m repro.analysis [--strict] [--json] [paths...]

A finding can be silenced in place with a justification::

    os.replace(a, b)  # repro: ignore[RA01] the seam itself commits here

``--strict`` additionally fails on suppressions that lack a
justification and on suppressions that no longer match any finding, so
silenced findings cannot rot silently.

The rule catalog lives in :mod:`repro.analysis.rules`; the README's
"Static analysis" section documents each rule's historical motivation.
"""

from __future__ import annotations

from .core import (
    Finding,
    Rule,
    RULES,
    SourceModule,
    Suppression,
    analyze_source,
    iter_python_files,
    run_paths,
)
from . import rules as _rules  # noqa: F401  (importing registers the rules)

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "SourceModule",
    "Suppression",
    "analyze_source",
    "iter_python_files",
    "run_paths",
]
