"""Fault injection for the durable write paths, and kill-9 crash harnesses.

Two layers:

**Filesystem shims** for the :mod:`repro.fsio` seam.  :class:`FaultyFS`
models the disk failures a durable store must survive — an ENOSPC budget
(every byte past N fails), a torn write (the Mth write persists only half
its buffer), a failing ``os.replace`` (the atomic-commit rename), and a
lying ``fsync`` that silently drops the request.  :class:`KillFS` is the
blunter instrument: after a byte budget it SIGKILLs the *calling process
mid-write*, leaving exactly the torn frame a real crash leaves.  Install
either with :func:`repro.fsio.install` / :func:`repro.fsio.injected`;
read paths are untouched, so recovery code under test reopens files the
way production does.

**Crash harnesses** that fork a child ingesting a seeded fleet through a
journaled engine into a store, kill it — at a seeded batch boundary
(lockstep acks) or mid-write (a :class:`KillFS` in the child) — and then
assert the recovery invariant in the parent:

* no acknowledged batch is lost (``recovery.last_seq`` covers every ack
  the parent received before the kill),
* the store always reopens,
* after recovery resumes and finishes the feed, the store's
  :meth:`~repro.storage.store.TrajectoryStore.content_digest` is
  **bit-identical** to an uninterrupted run's.

:func:`run_compact_kill` does the same for :meth:`~repro.storage.store.
TrajectoryStore.compact`: killed at any point, a reopened store serves
either the old generation or the new one in full — same content digest
— and never an unreadable directory.

``python -m repro.testing.faults --seeds 0 1 2`` runs the bounded
matrix the CI crash-injection smoke step drives.
"""

from __future__ import annotations

import errno
import functools
import multiprocessing
import os
import signal
from pathlib import Path

from .. import fsio

__all__ = [
    "FaultyFS",
    "KillFS",
    "run_compact_kill",
    "run_crash_ingest",
    "run_sharded_transport_check",
]


# -- filesystem shims --------------------------------------------------------


class _ShimFile:
    """Write-intercepting proxy around a real file handle."""

    def __init__(self, inner, shim) -> None:
        self._inner = inner
        self._shim = shim

    def write(self, data):
        return self._shim._write(self._inner, data)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self._inner.close()
        return False


class FaultyFS:
    """A :mod:`repro.fsio` shim that injects disk failures on schedule.

    Args:
        enospc_after: byte budget across all writes; a write that would
            exceed it persists the bytes that fit and raises ``OSError
            (ENOSPC)`` — the torn-by-full-disk shape.
        torn_write_at: 1-based index of the write call that persists only
            the first half of its buffer, then raises ``OSError(EIO)``.
        fail_replace_at: 1-based index of the ``os.replace`` call that
            raises ``OSError(EIO)`` instead of committing.
        drop_fsync: silently ignore ``fsync`` requests (a lying disk) —
            the data may still be in the page cache, so nothing observes
            it until paired with a kill or power-loss simulation.

    Counters (``bytes_written``, ``writes``, ``replaces``, ``fsyncs``)
    are public so tests can assert what the code under test attempted.
    """

    def __init__(
        self,
        *,
        enospc_after: int | None = None,
        torn_write_at: int | None = None,
        fail_replace_at: int | None = None,
        drop_fsync: bool = False,
    ) -> None:
        self.enospc_after = enospc_after
        self.torn_write_at = torn_write_at
        self.fail_replace_at = fail_replace_at
        self.drop_fsync = drop_fsync
        self.bytes_written = 0
        self.writes = 0
        self.replaces = 0
        self.fsyncs = 0
        self.unlinks = 0

    def open(self, path, mode="rb", **kwargs):
        handle = open(path, mode, **kwargs)
        if "w" in mode or "a" in mode or "+" in mode:
            return _ShimFile(handle, self)
        return handle

    def _write(self, inner, data):
        self.writes += 1
        if self.torn_write_at is not None and self.writes == self.torn_write_at:
            torn = data[: len(data) // 2]
            inner.write(torn)
            inner.flush()
            self.bytes_written += len(torn)
            raise OSError(errno.EIO, "injected torn write")
        if self.enospc_after is not None:
            room = self.enospc_after - self.bytes_written
            if len(data) > room:
                if room > 0:
                    inner.write(data[:room])
                    inner.flush()
                    self.bytes_written += room
                raise OSError(errno.ENOSPC, "injected disk full")
        inner.write(data)
        self.bytes_written += len(data)
        return len(data)

    def replace(self, src, dst) -> None:
        self.replaces += 1
        if (
            self.fail_replace_at is not None
            and self.replaces == self.fail_replace_at
        ):
            raise OSError(errno.EIO, "injected rename failure")
        os.replace(src, dst)

    def fsync(self, fileno: int) -> None:
        self.fsyncs += 1
        if not self.drop_fsync:
            os.fsync(fileno)

    def unlink(self, path) -> None:
        # Cleanup must always succeed even when writes are failing —
        # tmp-hygiene handlers run *because* a fault fired.
        self.unlinks += 1
        os.unlink(path)


class KillFS:
    """A shim that SIGKILLs the calling process mid-write after a budget.

    The write that crosses ``kill_after_bytes`` persists (and flushes)
    only the bytes that fit, then the process dies instantly — no
    ``finally`` blocks, no buffers draining — leaving a torn frame on
    disk exactly where a real crash would.  Used inside forked harness
    children, never in the test runner process itself.
    """

    def __init__(self, kill_after_bytes: int) -> None:
        self.kill_after_bytes = kill_after_bytes
        self.bytes_written = 0

    def open(self, path, mode="rb", **kwargs):
        handle = open(path, mode, **kwargs)
        if "w" in mode or "a" in mode or "+" in mode:
            return _ShimFile(handle, self)
        return handle

    def _write(self, inner, data):
        room = self.kill_after_bytes - self.bytes_written
        if len(data) > room:
            if room > 0:
                inner.write(data[:room])
            inner.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        inner.write(data)
        self.bytes_written += len(data)
        return len(data)

    def replace(self, src, dst) -> None:
        os.replace(src, dst)

    def fsync(self, fileno: int) -> None:
        os.fsync(fileno)

    def unlink(self, path) -> None:
        os.unlink(path)


# -- kill-9 ingest harness ---------------------------------------------------


def _harness_engine(base, *, epsilon, devices, journal, fsync=False):
    """The harness's engine configuration — shared verbatim between the
    reference run, the crash child, and the recovery, since replay
    fidelity requires identical configuration."""
    from ..engine import SanitizePolicy, StreamEngine, bqs_fleet_factory
    from ..storage.store import StoreSink, TrajectoryStore

    store = TrajectoryStore(Path(base) / "store")
    engine = StreamEngine(
        functools.partial(bqs_fleet_factory, epsilon),
        # Tighter than the fleet so LRU evictions (and their seal
        # checkpoints) are part of what recovery must reproduce.
        max_devices=max(2, devices - 2),
        idle_timeout=300.0,
        policy=SanitizePolicy(),
        collect=False,
        sink=StoreSink(store),
        journal=journal,
        journal_fsync=fsync,
    )
    return store, engine


def _harness_batches(devices, fixes_per_device, seed, batch_size):
    from ..engine.simulate import fleet_fixes, iter_fix_batches

    ids, cols = fleet_fixes(devices, fixes_per_device, seed=seed)
    return list(iter_fix_batches(ids, cols, batch_size))


def _crash_child(
    conn, base, seed, devices, fixes_per_device, batch_size, epsilon,
    kill_bytes, fsync, lockstep,
) -> None:
    if kill_bytes is not None:
        fsio.install(KillFS(kill_bytes))
    batches = _harness_batches(devices, fixes_per_device, seed, batch_size)
    store, engine = _harness_engine(
        base,
        epsilon=epsilon,
        devices=devices,
        journal=Path(base) / "journal",
        fsync=fsync,
    )
    for i, batch in enumerate(batches):
        engine.push_columns(*batch)
        conn.send(i + 1)  # batches 1..i+1 acknowledged durable
        if lockstep:
            conn.recv()
    engine.finish_all()
    store.flush()
    store.close()
    conn.send("done")


def run_crash_ingest(
    base: str | os.PathLike,
    *,
    seed: int = 0,
    devices: int = 8,
    fixes_per_device: int = 120,
    batch_size: int = 64,
    epsilon: float = 5.0,
    kill_batch: int | None = None,
    kill_bytes: int | None = None,
    fsync: bool = False,
) -> dict:
    """Fork a journaled ingest, kill it, recover, and assert the invariant.

    Exactly one of ``kill_batch`` (SIGKILL from the parent once that many
    batches are acknowledged, at a batch boundary) and ``kill_bytes``
    (the child SIGKILLs *itself* mid-write once its journal/store writes
    cross the byte budget — torn frames included) should be given; with
    neither, the child runs to completion and recovery must be a no-op.

    Returns a report dict; raises ``AssertionError`` on any invariant
    violation: an acknowledged batch lost, a duplicate or missing sealed
    record (the content digest catches both), or a store that fails to
    reopen.
    """
    if kill_batch is not None and kill_bytes is not None:
        raise ValueError("give kill_batch or kill_bytes, not both")
    base = Path(base)
    base.mkdir(parents=True, exist_ok=True)
    batches = _harness_batches(devices, fixes_per_device, seed, batch_size)

    # The uninterrupted reference: same config, no journal, own store.
    ref_store, ref_engine = _harness_engine(
        base / "ref", epsilon=epsilon, devices=devices, journal=None
    )
    for batch in batches:
        ref_engine.push_columns(*batch)
    ref_engine.finish_all()
    ref_store.flush()
    ref_digest = ref_store.content_digest()
    ref_store.close()

    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(
        target=_crash_child,
        args=(
            child_conn, base, seed, devices, fixes_per_device, batch_size,
            epsilon, kill_bytes, fsync, kill_batch is not None,
        ),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    acked = 0
    finished = False
    try:
        if kill_batch == 0:
            os.kill(proc.pid, signal.SIGKILL)
        else:
            while True:
                try:
                    message = parent_conn.recv()
                except (EOFError, OSError):
                    break
                if message == "done":
                    finished = True
                    break
                acked = message
                if kill_batch is not None:
                    if acked >= kill_batch:
                        os.kill(proc.pid, signal.SIGKILL)
                        break
                    parent_conn.send("go")
    finally:
        proc.join(timeout=10.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=10.0)
        parent_conn.close()

    # Invariant: the store reopens no matter where the child died.
    from ..engine import StreamEngine
    from ..storage.store import StoreSink, TrajectoryStore

    store = TrajectoryStore(base / "store")
    from ..engine import SanitizePolicy, bqs_fleet_factory

    engine = StreamEngine.recover(
        base / "journal",
        functools.partial(bqs_fleet_factory, epsilon),
        max_devices=max(2, devices - 2),
        idle_timeout=300.0,
        policy=SanitizePolicy(),
        collect=False,
        sink=StoreSink(store),
        dedupe_store=store,
        journal_fsync=fsync,
    )
    report = engine.recovery
    assert report.last_seq >= acked, (
        f"acknowledged batch lost: child acked {acked}, journal replayed "
        f"only {report.last_seq}"
    )
    for batch in batches[report.last_seq:]:
        engine.push_columns(*batch)
    engine.finish_all()
    store.flush()
    digest = store.content_digest()
    store.close()
    assert digest == ref_digest, (
        f"recovered store diverged from the uninterrupted run "
        f"(seed={seed}, kill_batch={kill_batch}, kill_bytes={kill_bytes}): "
        f"{digest[:16]} != {ref_digest[:16]}"
    )
    return {
        "seed": seed,
        "killed": not finished,
        "acked_batches": acked,
        "total_batches": len(batches),
        "recovery": report.to_json(),
        "digest": digest,
    }


# -- kill-9 during compact ---------------------------------------------------


def _compact_child(base, kill_bytes) -> None:
    from ..storage.store import TrajectoryStore

    fsio.install(KillFS(kill_bytes))
    store = TrajectoryStore(Path(base) / "cstore")
    store.compact()
    store.close()


def run_compact_kill(
    base: str | os.PathLike,
    *,
    seed: int = 0,
    kill_bytes: int = 512,
    devices: int = 6,
    fixes_per_device: int = 100,
    epsilon: float = 5.0,
) -> dict:
    """Kill ``compact()`` mid-write; the reopened store must serve the old
    or the new generation in full — identical content either way — and
    never be unreadable.
    """
    from ..engine import SanitizePolicy, StreamEngine, bqs_fleet_factory
    from ..storage.store import StoreSink, TrajectoryStore

    base = Path(base)
    base.mkdir(parents=True, exist_ok=True)
    store_dir = base / "cstore"
    if not store_dir.exists():
        store = TrajectoryStore(store_dir, segment_max_bytes=4096)
        engine = StreamEngine(
            functools.partial(bqs_fleet_factory, epsilon),
            policy=SanitizePolicy(),
            collect=False,
            sink=StoreSink(store),
        )
        batches = _harness_batches(devices, fixes_per_device, seed, 64)
        for batch in batches:
            engine.push_columns(*batch)
        engine.finish_all()
        # Tombstone some devices so compaction genuinely rewrites.
        doomed = store.devices()[::3]
        for device_id in doomed:
            store.delete_device(device_id)
        store.flush()
        store.close()
    with TrajectoryStore(store_dir) as store:
        digest_before = store.content_digest()
        generation_before = store.generation

    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_compact_child, args=(base, kill_bytes), daemon=True)
    proc.start()
    proc.join(timeout=30.0)
    exitcode = proc.exitcode

    # Invariant: old or new generation in full, never a mix or a ruin.
    with TrajectoryStore(store_dir) as store:
        digest_after = store.content_digest()
        generation_after = store.generation
        records = store.record_count
    assert digest_after == digest_before, (
        f"compact kill corrupted content (seed={seed}, "
        f"kill_bytes={kill_bytes}): {digest_after[:16]} != "
        f"{digest_before[:16]}"
    )
    assert generation_after in (generation_before, generation_before + 1), (
        f"generation {generation_after} is neither the old "
        f"{generation_before} nor the new {generation_before + 1}"
    )
    return {
        "seed": seed,
        "kill_bytes": kill_bytes,
        "child_exitcode": exitcode,
        "generation_before": generation_before,
        "generation_after": generation_after,
        "records": records,
        "digest": digest_after,
    }


def run_sharded_transport_check(
    base: str | os.PathLike,
    *,
    seed: int = 0,
    devices: int = 8,
    fixes_per_device: int = 80,
    batch_size: int = 64,
    epsilon: float = 5.0,
    workers: int = 2,
    kill: bool = True,
) -> dict:
    """Digest-pin the sharded transports against single-process output.

    Runs the same seeded fleet three ways — single-process
    :class:`~repro.engine.core.StreamEngine`, then a supervised
    :class:`~repro.engine.sharded.ShardedStreamEngine` per transport
    (``pipe`` and ``shm``), each with a worker SIGKILLed mid-stream and
    rebuilt from its shard journal — and asserts every run's
    :func:`~repro.bench.fleet.fleet_digest` is identical.  A digest split
    between the transports, or between either transport and the
    single-process reference, is exactly the drift the CI smoke exists to
    catch.  Returns a report with the digest, per-transport restart
    counts, and per-transport transport stats.
    """
    import time as _time

    from ..bench.fleet import fleet_digest
    from ..engine import ShardedStreamEngine, StreamEngine, bqs_fleet_factory

    base = Path(base)
    factory = functools.partial(bqs_fleet_factory, epsilon)
    batches = _harness_batches(devices, fixes_per_device, seed, batch_size)

    engine = StreamEngine(factory)
    for batch in batches:
        engine.push_columns(*batch)
    reference = fleet_digest(engine.finish_all())

    report = {
        "digest": reference,
        "killed": bool(kill),
        "transports": {},
    }
    half = max(1, len(batches) // 2)
    for transport in ("pipe", "shm"):
        sharded = ShardedStreamEngine(
            factory,
            workers=workers,
            transport=transport,
            journal_dir=base / f"wal-{transport}",
            restart_workers=2,
        )
        try:
            for batch in batches[:half]:
                sharded.push_columns(*batch)
            if kill:
                os.kill(sharded._procs[seed % workers].pid, signal.SIGKILL)
                _time.sleep(0.3)
            for batch in batches[half:]:
                sharded.push_columns(*batch)
            digest = fleet_digest(sharded.finish_all())
        finally:
            sharded.close()
        restarts = sum(sharded._restarts)
        assert not kill or restarts >= 1, (
            f"{transport}: worker was killed but never restarted"
        )
        assert digest == reference, (
            f"{transport}: sharded digest {digest} diverged from "
            f"single-process {reference}"
        )
        report["transports"][transport] = {
            "digest": digest,
            "restarts": restarts,
            "stats": sharded.transport_stats(),
        }
    return report


# -- CLI: the CI crash-injection smoke ---------------------------------------


def main(argv=None) -> int:
    import argparse
    import json
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.faults",
        description=(
            "Bounded crash-injection smoke: kill-9 ingest (batch-boundary "
            "and mid-write), ENOSPC on the store manifest, a journal "
            "replay digest check, and a sharded pipe/shm transport "
            "kill-restart digest pin per seed."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1],
        help="fleet seeds to run the matrix over (default: 0 1)",
    )
    parser.add_argument(
        "--kill-bytes", type=int, default=3000,
        help="byte budget for the mid-write self-kill leg (default: 3000)",
    )
    args = parser.parse_args(argv)

    failures = 0
    for seed in args.seeds:
        with tempfile.TemporaryDirectory() as tmp:
            legs = [
                ("kill@batch", dict(kill_batch=2 + seed % 5)),
                ("kill@bytes", dict(kill_bytes=args.kill_bytes * (1 + seed))),
                ("no-kill", {}),
            ]
            for name, kwargs in legs:
                try:
                    report = run_crash_ingest(
                        Path(tmp) / name.replace("@", "-"),
                        seed=seed,
                        **kwargs,
                    )
                except AssertionError as exc:
                    failures += 1
                    print(f"FAIL seed={seed} {name}: {exc}")
                    continue
                print(
                    f"ok seed={seed} {name}: killed={report['killed']} "
                    f"acked={report['acked_batches']}/"
                    f"{report['total_batches']} "
                    f"replayed={report['recovery']['batches_replayed']} "
                    f"digest={report['digest'][:12]}"
                )
            try:
                report = run_compact_kill(
                    Path(tmp) / "compact", seed=seed,
                    kill_bytes=256 * (1 + seed),
                )
            except AssertionError as exc:
                failures += 1
                print(f"FAIL seed={seed} compact-kill: {exc}")
            else:
                print(
                    f"ok seed={seed} compact-kill: exit="
                    f"{report['child_exitcode']} generation "
                    f"{report['generation_before']}->"
                    f"{report['generation_after']} "
                    f"digest={report['digest'][:12]}"
                )
            # Sharded transports: pipe and shm, each kill-9'd mid-stream
            # and journal-replayed, digest-pinned to single-process.
            try:
                report = run_sharded_transport_check(
                    Path(tmp) / "sharded", seed=seed
                )
            except AssertionError as exc:
                failures += 1
                print(f"FAIL seed={seed} sharded-transport: {exc}")
            else:
                restarts = {
                    t: r["restarts"] for t, r in report["transports"].items()
                }
                print(
                    f"ok seed={seed} sharded-transport: "
                    f"digest={report['digest'][:12]} restarts={restarts}"
                )
            # ENOSPC on the manifest commit: the tmp file must not leak.
            from ..storage.store import TrajectoryStore

            store_dir = Path(tmp) / "enospc-store"
            store = TrajectoryStore(store_dir)
            shim = FaultyFS(enospc_after=store.total_bytes() + 16)
            try:
                with fsio.injected(shim):
                    try:
                        store._write_manifest()
                    except OSError:
                        pass
            finally:
                store.close()
            if (store_dir / "manifest.json.tmp").exists():
                failures += 1
                print(f"FAIL seed={seed} enospc: manifest.json.tmp leaked")
            else:
                print(f"ok seed={seed} enospc: no tmp leak")
    print(f"crash smoke: {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
