"""Test-support machinery that ships with the package.

:mod:`repro.testing.faults` holds the fault-injection toolkit behind the
crash-durability guarantees: a :class:`~repro.testing.faults.FaultyFS`
shim for the :mod:`repro.fsio` seam (ENOSPC budgets, torn writes,
dropped fsyncs, rename failures), a :class:`~repro.testing.faults.
KillFS` that SIGKILLs the calling process mid-write, and the kill-9
crash harnesses the tests and the CI smoke step drive
(``python -m repro.testing.faults``).

Imports are lazy so ``python -m repro.testing.faults`` does not import
the module twice (once as a package attribute, once as ``__main__``).
"""

__all__ = [
    "FaultyFS",
    "KillFS",
    "run_compact_kill",
    "run_crash_ingest",
    "run_sharded_transport_check",
]


def __getattr__(name):
    if name in __all__:
        from . import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
