"""Benchmark subsystem tests: workloads, harness, JSON output, compare mode."""

import json

import pytest

from repro.bench import (
    WORKLOADS,
    BenchError,
    bench_compressor,
    diff_benches,
    make_workload,
    percentile,
    run_bench,
)
from repro.bench.__main__ import main
from repro.compression import BQSCompressor


class TestWorkloads:
    def test_registry_covers_the_four_regimes(self):
        assert set(WORKLOADS) == {
            "random_walk",
            "vehicle_route",
            "flight_arc",
            "bursty_pause",
        }

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_seeded_and_monotone(self, name):
        a = make_workload(name, 400, seed=3)
        b = make_workload(name, 400, seed=3)
        c = make_workload(name, 400, seed=4)
        assert a == b
        assert a != c
        assert len(a) == 400
        times = [p.t for p in a]
        assert times == sorted(times)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("warp_drive", 10)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_is_compressible_within_bound(self, name):
        points = make_workload(name, 1500, seed=7)
        compressed = BQSCompressor(10.0).compress(points)
        assert 1 < len(compressed) < len(points)
        assert compressed.max_deviation_from(points) <= 10.0 * (1.0 + 1e-9)


class TestHarness:
    def test_percentile_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50.0) == 2.0
        assert percentile(vals, 99.0) == 4.0
        assert percentile([], 50.0) == 0.0

    def test_bench_compressor_record_fields(self):
        points = make_workload("random_walk", 900, seed=7)
        record = bench_compressor(
            lambda: BQSCompressor(10.0), points, "random_walk"
        )
        assert record.algorithm == "bqs"
        assert record.points == 900
        assert record.points_per_sec > 0.0
        # The columnar pass ran and audited against the object path.
        assert record.columnar_points_per_sec > 0.0
        assert record.columnar_wall_seconds > 0.0
        assert record.columnar_speedup == pytest.approx(
            record.wall_seconds / record.columnar_wall_seconds
        )
        assert 0.0 < record.push_us_p50 <= record.push_us_p99 <= record.push_us_max
        assert record.within_bound is True
        assert record.peak_retained_points > 0
        assert sum(record.decisions.values()) == 900
        # Digest pins the exact output: same stream, same algorithm -> same.
        again = bench_compressor(
            lambda: BQSCompressor(10.0), points, "random_walk"
        )
        assert record.key_digest == again.key_digest
        assert len(record.key_digest) == 16
        payload = record.to_json()
        assert payload["workload"] == "random_walk"
        json.dumps(payload)  # JSON-serializable

    def test_run_bench_covers_selection(self):
        workloads = {
            "random_walk": make_workload("random_walk", 300, seed=1),
            "bursty_pause": make_workload("bursty_pause", 300, seed=1),
        }
        records = run_bench(workloads, epsilon=10.0, algorithms=["bqs", "uniform"])
        assert {(r.workload, r.algorithm) for r in records} == {
            ("random_walk", "bqs"),
            ("random_walk", "uniform"),
            ("bursty_pause", "bqs"),
            ("bursty_pause", "uniform"),
        }
        for r in records:
            if r.error_bounded:
                assert r.within_bound is True
            else:
                assert r.within_bound is None

    def test_run_bench_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithms"):
            run_bench({"random_walk": []}, epsilon=10.0, algorithms=["nope"])

    def test_bench_error_is_a_runtime_error(self):
        assert issubclass(BenchError, RuntimeError)


class TestCLI:
    def test_run_writes_json_document(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "--points", "400",
                "--workloads", "random_walk,flight_arc",
                "--algorithms", "bqs,fast-bqs,uniform",
                "--baseline", "pre_pr_bqs_pps=1234.5",
                "--no-fleet",
                "--no-storage",
                "--no-geodetic",
                "--scale-sizes", "1500",
                "--scale-devices", "30",
                "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == 8
        assert doc["geodetic"] is None
        assert doc["dirty_fleet"] is None  # rides with --no-fleet
        assert doc["durability"] is None  # rides with --no-fleet too
        assert len(doc["scale"]) == 1
        scale = doc["scale"][0]
        assert scale["records"] == 1500
        assert scale["segments"] >= 1
        assert scale["matches"] > 0
        assert scale["open_indexed_seconds"] > 0
        assert scale["open_scan_seconds"] > 0
        assert doc["baselines"] == {"pre_pr_bqs_pps": 1234.5}
        assert doc["workloads"]["random_walk"]["points"] == 400
        keys = {(r["workload"], r["algorithm"]) for r in doc["results"]}
        assert keys == {
            (w, a)
            for w in ("random_walk", "flight_arc")
            for a in ("bqs", "fast-bqs", "uniform")
        }
        for r in doc["results"]:
            assert r["points_per_sec"] > 0
            assert "push_us_p50" in r and "push_us_p99" in r
        assert "wrote" in capsys.readouterr().out

    def test_smoke_flag_overrides_point_count(self, tmp_path):
        out = tmp_path / "smoke.json"
        code = main(
            [
                "--smoke",
                "--workloads", "random_walk",
                "--algorithms", "uniform",
                "--no-fleet",
                "--no-storage",
                "--no-geodetic",
                "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["smoke"] is True
        assert doc["workloads"]["random_walk"]["points"] == 2000

    def test_compare_flags_regression_and_strict_exit(self, tmp_path, capsys):
        def bench_doc(pps, keys=50):
            return {
                "schema": 1,
                "results": [
                    {
                        "workload": "random_walk",
                        "algorithm": "bqs",
                        "points": 1000,
                        "points_per_sec": pps,
                        "key_points": keys,
                    }
                ],
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(bench_doc(100_000.0)))
        new.write_text(json.dumps(bench_doc(30_000.0)))

        assert main(["compare", str(old), str(new)]) == 0  # advisory
        assert "throughput fell" in capsys.readouterr().out
        assert main(["compare", str(old), str(new), "--strict"]) == 1
        # No regression above the threshold: strict passes.
        new.write_text(json.dumps(bench_doc(95_000.0)))
        assert main(["compare", str(old), str(new), "--strict"]) == 0

    def test_compare_flags_behaviour_change(self, tmp_path, capsys):
        def bench_doc(keys, digest="aaaa"):
            return {
                "schema": 1,
                "results": [
                    {
                        "workload": "random_walk",
                        "algorithm": "bqs",
                        "points": 1000,
                        "points_per_sec": 100_000.0,
                        "key_points": keys,
                        "key_digest": digest,
                    }
                ],
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(bench_doc(50)))
        new.write_text(json.dumps(bench_doc(61)))
        assert main(["compare", str(old), str(new), "--strict"]) == 1
        assert "key points changed" in capsys.readouterr().out
        # Same count but moved points: caught via the digest.
        old.write_text(json.dumps(bench_doc(50, digest="aaaa")))
        new.write_text(json.dumps(bench_doc(50, digest="bbbb")))
        assert main(["compare", str(old), str(new), "--strict"]) == 1
        assert "digest differs" in capsys.readouterr().out
        # Old files without digests stay comparable (no spurious flag).
        doc = bench_doc(50)
        del doc["results"][0]["key_digest"]
        old.write_text(json.dumps(doc))
        new.write_text(json.dumps(bench_doc(50, digest="bbbb")))
        assert main(["compare", str(old), str(new), "--strict"]) == 0

    def test_diff_benches_threshold_validation(self):
        with pytest.raises(ValueError):
            diff_benches({"results": []}, {"results": []}, threshold=0.0)

    def test_fail_on_behaviour_separates_digest_from_timing(self, tmp_path):
        """The CI policy: digest drift fails, throughput deltas only warn."""

        def bench_doc(pps, digest):
            return {
                "schema": 2,
                "results": [
                    {
                        "workload": "random_walk",
                        "algorithm": "bqs",
                        "points": 1000,
                        "points_per_sec": pps,
                        "key_points": 50,
                        "key_digest": digest,
                    }
                ],
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(bench_doc(100_000.0, "aaaa")))
        # 10x slower but same output: warns, exits 0.
        new.write_text(json.dumps(bench_doc(10_000.0, "aaaa")))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        # Same speed but moved key points: exits 1.
        new.write_text(json.dumps(bench_doc(100_000.0, "bbbb")))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1

    def test_fleet_digest_drift_is_behaviour(self, tmp_path):
        """The fleet section participates in the baseline gate too."""

        def fleet_doc(digest, fps=50_000.0):
            return {
                "schema": 2,
                "results": [],
                "fleet": [
                    {
                        "mode": "engine",
                        "devices": 25,
                        "fixes_per_device": 80,
                        "fixes_per_sec": fps,
                        "key_digest": digest,
                    }
                ],
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(fleet_doc("aaaa")))
        new.write_text(json.dumps(fleet_doc("aaaa", fps=5_000.0)))  # slow only
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        new.write_text(json.dumps(fleet_doc("bbbb")))  # output moved
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1


class TestFleetBench:
    def test_fleet_modes_agree_and_record(self):
        from repro.bench import run_fleet_bench

        records = run_fleet_bench(
            6, 60, epsilon=10.0, seed=3, batch_size=64, worker_counts=(2,)
        )
        assert [r.mode for r in records] == [
            "per-device", "engine", "sharded-2", "sharded-2-shm"
        ]
        assert [r.transport for r in records] == ["", "", "pipe", "shm"]
        digests = {r.key_digest for r in records}
        assert len(digests) == 1  # determinism across every mode
        for r in records:
            assert r.fixes == 360
            assert r.fixes_per_sec > 0.0
            assert r.trajectories == 6
            json.dumps(r.to_json())
        shm = records[-1]
        assert shm.shards and len(shm.shards) == 2
        assert sum(s["fixes"] for s in shm.shards) == 360

    def test_fleet_digest_sensitive_to_output(self):
        from repro.bench import fleet_digest
        from repro.compression import BQSCompressor, synthetic_track

        track = synthetic_track(200, seed=1)
        a = {"dev": [BQSCompressor(10.0).compress(track)]}
        b = {"dev": [BQSCompressor(5.0).compress(track)]}
        assert fleet_digest(a) == fleet_digest(a)
        assert fleet_digest(a) != fleet_digest(b)


class TestDirtyFleetBench:
    def test_record_fields_and_invariants(self):
        from repro.bench import run_dirty_fleet_bench

        r = run_dirty_fleet_bench(6, 60, epsilon=10.0, seed=3, batch_size=256)
        # The function itself asserts the four robustness invariants
        # (ledger exact, lossless sub-trajectories, deviation <= epsilon,
        # clean-input transparency); here we pin the record shape.
        assert r.devices == 6 and r.fixes_per_device == 60
        assert r.clean_fixes == 360
        assert r.dirty_fixes > r.clean_fixes  # dups add fixes
        assert r.fixes_per_sec > 0.0
        assert r.max_deviation <= r.epsilon
        assert len(r.key_digest) == 16 and len(r.clean_digest) == 16
        assert r.key_digest != r.clean_digest  # disorder moved the output
        assert r.feed["fixes_in"] == r.dirty_fixes
        assert r.feed["buffered"] == 0
        doc = r.to_json()
        json.dumps(doc)
        assert doc["policy"]["max_speed_mps"] == 50.0
        assert doc["feed"]["dropped"] != {}

    def test_clean_digest_matches_fleet_bench(self):
        """The dirty bench's clean leg and the fleet bench run the same
        stream: their digests must agree, tying the two sections."""
        from repro.bench import run_dirty_fleet_bench, run_fleet_bench

        fleet = run_fleet_bench(
            6, 60, epsilon=10.0, seed=3, batch_size=256, worker_counts=()
        )
        dirty = run_dirty_fleet_bench(6, 60, epsilon=10.0, seed=3, batch_size=256)
        assert dirty.clean_digest == fleet[0].key_digest

    def test_size_validation(self):
        from repro.bench import BenchError, run_dirty_fleet_bench

        with pytest.raises(BenchError):
            run_dirty_fleet_bench(2, 60)
        with pytest.raises(BenchError):
            run_dirty_fleet_bench(6, 10)

    def test_compare_flags_dirty_fleet_behaviour(self, tmp_path, capsys):
        def doc(key_digest, clean_digest, dropped, fps=1000.0):
            return {
                "schema": 6,
                "results": [],
                "dirty_fleet": {
                    "devices": 6,
                    "fixes_per_device": 60,
                    "fixes_per_sec": fps,
                    "key_digest": key_digest,
                    "clean_digest": clean_digest,
                    "feed": {
                        "fixes_in": 370,
                        "fixes_out": 350,
                        "buffered": 0,
                        "reordered": 0,
                        "dropped": dropped,
                        "splits": {"gap": 1},
                    },
                },
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        base = doc("a" * 16, "c" * 16, {"duplicate": 20})
        old.write_text(json.dumps(base))
        new.write_text(json.dumps(base))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        capsys.readouterr()
        # Dirty digest drift is behaviour.
        new.write_text(json.dumps(doc("b" * 16, "c" * 16, {"duplicate": 20})))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1
        assert "dirty-feed output moved" in capsys.readouterr().out
        # Ledger drift is behaviour even with identical digests.
        new.write_text(json.dumps(doc("a" * 16, "c" * 16, {"duplicate": 19})))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1
        assert "feed ledger changed" in capsys.readouterr().out
        # Timing-only drift warns but passes the behaviour gate.
        new.write_text(
            json.dumps(doc("a" * 16, "c" * 16, {"duplicate": 20}, fps=100.0))
        )
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        assert "throughput fell" in capsys.readouterr().out


class TestProfileFlag:
    def test_profile_prints_cumulative_stats_without_json(self, tmp_path, capsys):
        out = tmp_path / "ignored.json"
        code = main(
            [
                "--points", "300",
                "--workloads", "random_walk",
                "--algorithms", "bqs",
                "--profile",
                "--profile-top", "5",
                "--no-fleet",
                "--no-storage",
                "--out", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "cumulative" in captured  # pstats table header
        assert not out.exists()  # profiling replaces the benchmark run


class TestStorageBench:
    def test_record_fields_and_audits(self):
        from repro.bench.storage import run_storage_bench

        r = run_storage_bench(
            points=800,
            fleet_devices=6,
            fleet_fixes_per_device=40,
            repeats=1,
        )
        assert r.key_points > 0
        assert r.encoded_bytes > 0
        assert r.bytes_per_raw_point < 12  # beats raw GPS storage
        assert r.end_to_end_ratio > 1.0
        assert len(r.blob_digest) == 16 and len(r.query_digest) == 16
        assert r.ingest_fixes_per_sec > 0
        doc = r.to_json()
        assert doc["workload"] == "random_walk"
        assert doc["store_bytes"] > 0

    def test_compare_flags_storage_behaviour(self, tmp_path, capsys):
        def doc(digest, ips=1000.0):
            return {
                "schema": 3,
                "results": [],
                "storage": {
                    "points": 800,
                    "fleet_devices": 6,
                    "fleet_fixes": 40,
                    "ingest_fixes_per_sec": ips,
                    "blob_digest": digest,
                    "query_digest": "q" * 16,
                },
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc("a" * 16)))
        new.write_text(json.dumps(doc("a" * 16)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        capsys.readouterr()
        new.write_text(json.dumps(doc("b" * 16)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1
        assert "codec output moved" in capsys.readouterr().out

    def test_compare_flags_durability_behaviour(self, tmp_path, capsys):
        def doc(store_digest, recovered_digest, fps=1000.0):
            return {
                "schema": 7,
                "results": [],
                "durability": {
                    "devices": 25,
                    "fixes_per_device": 80,
                    "journal_fixes_per_sec": fps,
                    "store_digest": store_digest,
                    "recovered_digest": recovered_digest,
                },
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc("a" * 64, "a" * 64)))
        new.write_text(json.dumps(doc("a" * 64, "a" * 64)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        capsys.readouterr()
        new.write_text(json.dumps(doc("b" * 64, "a" * 64)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1
        assert "persisted store moved" in capsys.readouterr().out
        new.write_text(json.dumps(doc("a" * 64, "c" * 64)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1
        assert "recovered store moved" in capsys.readouterr().out
        # Timing-only slowdowns warn but do not fail the behaviour gate.
        new.write_text(json.dumps(doc("a" * 64, "a" * 64, fps=100.0)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        assert "journaled ingest fell" in capsys.readouterr().out

    def test_geodetic_record_fields_and_bracket_audit(self):
        from repro.bench.geodetic import run_geodetic_bench

        projection_records, fleet_records = run_geodetic_bench(
            points=500,
            fleet_devices=8,
            fleet_fixes_per_device=40,
            repeats=1,
        )
        assert {p.projection for p in projection_records} == {
            "utm",
            "local_tangent",
        }
        for p in projection_records:
            assert p.points_per_sec > 0
        assert [r.variant for r in fleet_records] == [
            "single_zone",
            "multi_zone",
            "noisy_multi_zone",
        ]
        for r in fleet_records:
            assert r.ingest_fixes_per_sec > 0
            assert r.records == 8
            assert len(r.query_digest) == 16
            # The bracket audit ran inside (BenchError otherwise).
            assert (
                r.definite_devices
                <= r.truth_devices
                <= r.exact_devices
                <= r.approx_devices
            )
        assert fleet_records[0].zones == ["32N"]
        assert len(fleet_records[1].zones) == 4  # both boundaries, both hemis

    def test_compare_flags_geodetic_behaviour(self, tmp_path, capsys):
        def doc(digest, zones=("32N", "33N"), ips=1000.0):
            return {
                "schema": 4,
                "results": [],
                "geodetic": {
                    "projection": [],
                    "fleets": [
                        {
                            "variant": "multi_zone",
                            "devices": 8,
                            "fixes_per_device": 40,
                            "ingest_fixes_per_sec": ips,
                            "zones": list(zones),
                            "query_digest": digest,
                        }
                    ],
                },
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc("a" * 16)))
        new.write_text(json.dumps(doc("a" * 16)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        capsys.readouterr()
        new.write_text(json.dumps(doc("b" * 16)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1
        assert "geodetic query results moved" in capsys.readouterr().out
        new.write_text(json.dumps(doc("a" * 16, zones=("31N",))))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 1
        assert "stamped zones changed" in capsys.readouterr().out
        # Timing-only deltas warn but do not fail.
        new.write_text(json.dumps(doc("a" * 16, ips=100.0)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        assert "ingest throughput fell" in capsys.readouterr().out

    def test_compare_storage_timing_only_warns(self, tmp_path, capsys):
        def doc(ips):
            return {
                "schema": 3,
                "results": [],
                "storage": {
                    "points": 800,
                    "fleet_devices": 6,
                    "fleet_fixes": 40,
                    "ingest_fixes_per_sec": ips,
                    "blob_digest": "a" * 16,
                    "query_digest": "q" * 16,
                },
            }

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc(1000.0)))
        new.write_text(json.dumps(doc(100.0)))
        assert main(["compare", str(old), str(new), "--fail-on-behaviour"]) == 0
        assert "ingest throughput fell" in capsys.readouterr().out
        assert main(["compare", str(old), str(new), "--strict"]) == 1
