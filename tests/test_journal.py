"""Write-ahead fix journal tests: format round-trips, torn tails, replay.

The journal's contract is bit-identical recovery: replaying a crashed
engine's journal through a fresh engine with the same configuration must
reproduce exactly the sealed output the uninterrupted run produces — no
acknowledged fix lost, nothing sealed twice into a durable sink — at any
crash point, for planar and geodetic engines alike.
"""

import functools
import struct
import zlib

import pytest

from repro.engine import (
    FixJournal,
    GeoStreamEngine,
    JournalError,
    StreamEngine,
    fleet_fixes,
    gps_fleet_fixes,
    iter_fix_batches,
    iter_geo_fix_batches,
)
from repro.engine.journal import _FRAME, _HEADER, _REC_SEAL
from repro.storage.store import StoreSink, TrajectoryStore

EPSILON = 5.0


def _factory(device_id):
    from repro.compression import BQSCompressor

    return BQSCompressor(EPSILON)


def _push_groups(seq_salt=0):
    return {
        "car-1": ([0.0 + seq_salt, 1.0], [0.0, 5.0], [0.0, -5.0]),
        17: ([2.5], [1e-9], [1234.5678]),
        b"\x00raw": ([3.0, 4.0], [float("-0.0"), 2.0**-1074], [1e308, -7.0]),
    }


def _results_digestable(results):
    """Per-device key points, comparable across runs."""
    return {
        device_id: [t.key_points for t in trajectories]
        for device_id, trajectories in results.items()
    }


class TestJournalFormat:
    def test_push_round_trip_bit_exact(self, tmp_path):
        journal = FixJournal(tmp_path / "wal")
        groups_a = _push_groups(0)
        groups_b = _push_groups(100)
        assert journal.log_push(groups_a) == 1
        assert journal.log_push(groups_b) == 2
        journal.log_finish("car-1")
        journal.log_finish_all()
        journal.close()

        reopened = FixJournal(tmp_path / "wal", keep_records=True)
        records = list(reopened.iter_records())
        assert [r[0] for r in records] == [
            "push", "push", "finish", "finish_all",
        ]
        assert records[0][1] == 1 and records[1][1] == 2
        for record, groups in ((records[0], groups_a), (records[1], groups_b)):
            replayed = record[2]
            assert set(replayed) == set(groups)
            for device_id, (ts, xs, ys) in groups.items():
                got_ts, got_xs, got_ys = replayed[device_id]
                # Bit-exact floats: -0.0, denormals, 1e308 all round-trip.
                assert [t for t in got_ts] == ts
                assert struct.pack(f"<{len(xs)}d", *got_xs) == struct.pack(
                    f"<{len(xs)}d", *xs
                )
                assert struct.pack(f"<{len(ys)}d", *got_ys) == struct.pack(
                    f"<{len(ys)}d", *ys
                )
        assert records[2][1] == "car-1"
        assert reopened.last_seq == 2
        reopened.close()

    def test_unjournalable_device_ids_rejected(self, tmp_path):
        journal = FixJournal(tmp_path / "wal")
        with pytest.raises(JournalError, match="bool"):
            journal.log_push({True: ([0.0], [0.0], [0.0])})
        with pytest.raises(JournalError, match="tuple"):
            journal.log_push({("a", 1): ([0.0], [0.0], [0.0])})
        # The failed pushes consumed no sequence numbers.
        assert journal.log_push({"ok": ([0.0], [0.0], [0.0])}) == 1
        journal.close()

    def test_seal_counts_survive_reopen(self, tmp_path):
        journal = FixJournal(tmp_path / "wal")
        journal.log_seal("a")
        journal.log_seal("a")
        journal.log_seal(7)
        journal.close()
        reopened = FixJournal(tmp_path / "wal")
        assert reopened.seal_counts() == {"a": 2, 7: 1}
        reopened.close()

    def test_geodetic_flag_enforced(self, tmp_path):
        FixJournal(tmp_path / "wal", geodetic=True).close()
        with pytest.raises(JournalError, match="geodetic"):
            FixJournal(tmp_path / "wal", geodetic=False)

    def test_rotate_drops_history_keeps_sequence(self, tmp_path):
        journal = FixJournal(tmp_path / "wal")
        for salt in range(5):
            journal.log_push(_push_groups(salt))
        journal.log_seal("car-1")
        journal.rotate()
        assert len(journal.segments) == 1
        assert journal.last_seq == 5  # the checkpoint carries it
        assert journal.seal_counts() == {}
        journal.close()
        reopened = FixJournal(tmp_path / "wal", keep_records=True)
        assert reopened.last_seq == 5
        assert list(reopened.iter_records()) == []
        assert reopened.log_push(_push_groups()) == 6
        reopened.close()


class TestTornTails:
    def _segment(self, tmp_path):
        return tmp_path / "wal" / "wal-00000001.log"

    def test_torn_frame_dropped_and_rolled(self, tmp_path):
        journal = FixJournal(tmp_path / "wal")
        journal.log_push(_push_groups(0))
        journal.log_push(_push_groups(1))
        journal.close()
        # A crash mid-write leaves a half frame at the tail.
        with open(self._segment(tmp_path), "ab") as handle:
            handle.write(_FRAME.pack(1000, 0) + b"partial")
        reopened = FixJournal(tmp_path / "wal", keep_records=True)
        assert reopened.damaged_bytes == _FRAME.size + len(b"partial")
        assert reopened.last_seq == 2  # both intact batches survive
        assert len(reopened.segments) == 2  # rolled past the damage
        reopened.close()

    def test_corrupt_crc_truncates_tail(self, tmp_path):
        journal = FixJournal(tmp_path / "wal")
        journal.log_push(_push_groups(0))
        size_one = self._segment(tmp_path).stat().st_size
        journal.log_push(_push_groups(1))
        journal.close()
        data = bytearray(self._segment(tmp_path).read_bytes())
        data[size_one + _FRAME.size + 3] ^= 0xFF  # flip a payload byte
        self._segment(tmp_path).write_bytes(bytes(data))
        reopened = FixJournal(tmp_path / "wal", keep_records=True)
        assert reopened.last_seq == 1
        assert reopened.damaged_bytes == len(data) - size_one
        reopened.close()

    def test_second_crash_reopens_clean(self, tmp_path):
        # The tear is truncated at scan time, so a reopen after the roll
        # (when the damaged segment is no longer final) still succeeds.
        journal = FixJournal(tmp_path / "wal")
        journal.log_push(_push_groups(0))
        journal.close()
        with open(self._segment(tmp_path), "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")
        first = FixJournal(tmp_path / "wal")
        assert first.damaged_bytes == 4
        first.log_push(_push_groups(1))
        first.close()
        second = FixJournal(tmp_path / "wal")
        assert second.damaged_bytes == 0
        assert second.last_seq == 2
        second.close()

    def test_damage_before_final_segment_refused(self, tmp_path):
        journal = FixJournal(tmp_path / "wal")
        journal.log_push(_push_groups(0))
        journal._new_segment(checkpoint=True)  # two live segments
        journal.close()
        with open(self._segment(tmp_path), "ab") as handle:
            handle.write(b"\xba\xad")
        with pytest.raises(JournalError, match="before the final segment"):
            FixJournal(tmp_path / "wal")

    def test_bad_magic_refused(self, tmp_path):
        journal = FixJournal(tmp_path / "wal")
        journal.close()
        seg = self._segment(tmp_path)
        data = bytearray(seg.read_bytes())
        data[0] = ord("X")
        seg.write_bytes(bytes(data))
        with pytest.raises(JournalError, match="bad magic"):
            FixJournal(tmp_path / "wal")


class TestEngineRecovery:
    @pytest.fixture(scope="class")
    def stream(self):
        ids, cols = fleet_fixes(6, 60, seed=11)
        return list(iter_fix_batches(ids, cols, 48))

    @pytest.fixture(scope="class")
    def reference(self, stream):
        engine = StreamEngine(_factory)
        for batch in stream:
            engine.push_columns(*batch)
        return _results_digestable(engine.finish_all())

    def test_journal_does_not_change_output(self, tmp_path, stream, reference):
        engine = StreamEngine(_factory, journal=tmp_path / "wal")
        for batch in stream:
            engine.push_columns(*batch)
        assert _results_digestable(engine.finish_all()) == reference
        engine.journal.close()

    @pytest.mark.parametrize("crash_after", [0, 1, 7, "all"])
    def test_replay_is_bit_identical_at_any_crash_point(
        self, tmp_path, stream, reference, crash_after
    ):
        k = len(stream) if crash_after == "all" else crash_after
        crashed = StreamEngine(_factory, journal=tmp_path / "wal")
        for batch in stream[:k]:
            crashed.push_columns(*batch)
        # Simulated crash: in-memory state abandoned, journal survives.
        crashed.journal.close()

        engine = StreamEngine.recover(tmp_path / "wal", _factory)
        assert engine.recovery.last_seq == k
        assert engine.recovery.batches_replayed == k
        for batch in stream[k:]:
            engine.push_columns(*batch)
        assert _results_digestable(engine.finish_all()) == reference
        engine.journal.close()

    def test_recovered_store_exactly_once(self, tmp_path, stream):
        ref_store = TrajectoryStore(tmp_path / "ref")
        ref_engine = StreamEngine(
            _factory, collect=False, sink=StoreSink(ref_store)
        )
        for batch in stream:
            ref_engine.push_columns(*batch)
        ref_engine.finish_all()
        ref_digest = ref_store.content_digest()
        ref_store.close()

        store = TrajectoryStore(tmp_path / "store")
        crashed = StreamEngine(
            _factory,
            collect=False,
            sink=StoreSink(store),
            journal=tmp_path / "wal",
        )
        k = len(stream) // 2
        for batch in stream[:k]:
            crashed.push_columns(*batch)
        crashed.journal.close()
        store.close()

        store = TrajectoryStore(tmp_path / "store")
        engine = StreamEngine.recover(
            tmp_path / "wal",
            _factory,
            collect=False,
            sink=StoreSink(store),
            dedupe_store=store,
        )
        for batch in stream[k:]:
            engine.push_columns(*batch)
        engine.finish_all()
        assert store.content_digest() == ref_digest
        engine.journal.close()
        store.close()

    def test_finish_all_rotates_to_empty_replay(self, tmp_path, stream):
        engine = StreamEngine(_factory, journal=tmp_path / "wal")
        for batch in stream:
            engine.push_columns(*batch)
        engine.finish_all()
        assert len(engine.journal.segments) == 1
        engine.journal.close()
        recovered = StreamEngine.recover(tmp_path / "wal", _factory)
        assert recovered.recovery.batches_replayed == 0
        assert recovered.recovery.last_seq == len(stream)
        recovered.journal.close()

    def test_seal_dedupe_closes_emit_before_checkpoint_window(self, tmp_path):
        """A trajectory that reached the store but whose seal checkpoint
        died with the crash must not be stored twice on replay."""
        store = TrajectoryStore(tmp_path / "store")
        engine = StreamEngine(
            _factory,
            collect=False,
            sink=StoreSink(store),
            journal=tmp_path / "wal",
        )
        engine.push_columns(
            ["dev"] * 6,
            [0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            [0.0, 30.0, 60.0, 90.0, 120.0, 150.0],
            [0.0, 0.0, 50.0, 0.0, 0.0, 40.0],
        )
        engine.finish_device("dev")  # emits to the store, then logs SEAL
        engine.journal.close()
        records_before = store.record_count
        digest_before = store.content_digest()
        store.close()
        assert records_before == 1

        # Tear off the final SEAL frame: the crash landed between the
        # store write and the checkpoint.
        segment = tmp_path / "wal" / "wal-00000001.log"
        data = segment.read_bytes()
        pos = _HEADER.size
        seal_start = None
        while pos < len(data):
            length, crc = _FRAME.unpack_from(data, pos)
            payload = data[pos + _FRAME.size : pos + _FRAME.size + length]
            assert zlib.crc32(payload) == crc
            if payload[0] == _REC_SEAL:
                seal_start = pos
            pos += _FRAME.size + length
        assert seal_start is not None
        with open(segment, "r+b") as handle:
            handle.truncate(seal_start)

        store = TrajectoryStore(tmp_path / "store")
        engine = StreamEngine.recover(
            tmp_path / "wal",
            _factory,
            collect=False,
            sink=StoreSink(store),
            dedupe_store=store,
        )
        assert engine.recovery.seals_deduped == 1
        assert engine.recovery.seals_suppressed == 0
        assert store.record_count == records_before
        assert store.content_digest() == digest_before
        engine.journal.close()
        store.close()

    def test_volatile_sinks_get_suppressed_seals_again(self, tmp_path):
        """Collect results after recovery equal the uninterrupted run's
        even when the store already holds the pre-crash seals."""
        store = TrajectoryStore(tmp_path / "store")
        engine = StreamEngine(
            _factory, sink=StoreSink(store), journal=tmp_path / "wal"
        )
        engine.push_columns(
            ["a"] * 3 + ["b"] * 3,
            [0.0, 1.0, 2.0, 0.0, 1.0, 2.0],
            [0.0, 40.0, 80.0, 5.0, 45.0, 85.0],
            [0.0, 30.0, 0.0, 5.0, 35.0, 5.0],
        )
        engine.finish_device("a")  # sealed + checkpointed pre-crash
        engine.journal.close()
        store.close()

        store = TrajectoryStore(tmp_path / "store")
        recovered = StreamEngine.recover(
            tmp_path / "wal",
            _factory,
            sink=StoreSink(store),
            dedupe_store=store,
        )
        assert recovered.recovery.seals_suppressed == 1
        results = recovered.finish_all()
        # Device a's pre-crash seal is still in the collect results (the
        # volatile ledger died with the crash and was re-delivered) while
        # the store kept exactly one copy.
        assert set(results) == {"a", "b"}
        assert len(results["a"]) == 1
        assert store.record_count == 2
        recovered.journal.close()
        store.close()


class TestGeodeticRecovery:
    def test_geo_replay_is_bit_identical(self, tmp_path):
        ids, ts, lats, lons = gps_fleet_fixes(5, 50, seed=3, multi_zone=True)
        batches = list(iter_geo_fix_batches(ids, ts, lats, lons, 40))
        factory = functools.partial(_geo_factory, EPSILON)

        reference_engine = GeoStreamEngine(factory)
        for batch in batches:
            reference_engine.push_columns(*batch)
        reference = _results_digestable(reference_engine.finish_all())

        k = len(batches) // 2
        crashed = GeoStreamEngine(factory, journal=tmp_path / "wal")
        for batch in batches[:k]:
            crashed.push_columns(*batch)
        crashed.journal.close()

        engine = GeoStreamEngine.recover(tmp_path / "wal", factory)
        assert engine.recovery.last_seq == k
        for batch in batches[k:]:
            engine.push_columns(*batch)
        assert _results_digestable(engine.finish_all()) == reference
        engine.journal.close()

    def test_geo_journal_is_stamped_geodetic(self, tmp_path):
        engine = GeoStreamEngine(
            functools.partial(_geo_factory, EPSILON),
            journal=tmp_path / "wal",
        )
        assert engine.journal.geodetic
        engine.journal.close()
        with pytest.raises(JournalError, match="geodetic"):
            StreamEngine.recover(tmp_path / "wal", _factory)


def _geo_factory(epsilon, device_id):
    from repro.compression import BQSCompressor

    return BQSCompressor(epsilon)
