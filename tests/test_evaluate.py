"""Evaluation harness tests: synthetic data, suite runs, CLI entry point."""

import pytest

from repro.compression import evaluate_suite, synthetic_track
from repro.compression.evaluate import format_rows, main, synthetic_track as st


class TestSyntheticTrack:
    def test_deterministic_per_seed(self):
        assert synthetic_track(50, seed=3) == synthetic_track(50, seed=3)
        assert synthetic_track(50, seed=3) != synthetic_track(50, seed=4)

    def test_timestamps_and_length(self):
        pts = synthetic_track(100, seed=1, dt=2.0)
        assert len(pts) == 100
        assert [p.t for p in pts] == [2.0 * i for i in range(100)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthetic_track(0)


class TestEvaluateSuite:
    def test_all_algorithms_reported_and_bounded(self):
        pts = synthetic_track(1500, seed=5)
        rows = evaluate_suite(pts, epsilon=12.0)
        names = {r.algorithm for r in rows}
        assert {"bqs", "fast-bqs", "dead-reckoning", "uniform",
                "douglas-peucker", "td-tr"} <= names
        for row in rows:
            assert row.original_points == 1500
            assert 0 < row.key_points < 1500
            assert row.push_seconds_per_point >= 0.0
            if row.error_bounded:
                assert row.within_bound, row.algorithm

    def test_total_cost_includes_finish_work(self):
        """Batch baselines do their compression in finish(); the comparable
        per-point figure must include it."""
        pts = synthetic_track(2000, seed=9)
        rows = evaluate_suite(pts, epsilon=10.0)
        by_name = {r.algorithm: r for r in rows}
        dp = by_name["douglas-peucker"]
        assert dp.finish_seconds > 0.0
        assert dp.total_seconds_per_point > dp.push_seconds_per_point

    def test_fast_bqs_never_buffers_in_evaluation(self):
        pts = synthetic_track(1000, seed=6)
        rows = evaluate_suite(pts, epsilon=10.0)
        by_name = {r.algorithm: r for r in rows}
        assert by_name["fast-bqs"].peak_buffered_points == 0
        assert by_name["douglas-peucker"].peak_buffered_points == 1000

    def test_format_rows_renders_table(self):
        pts = synthetic_track(300, seed=2)
        text = format_rows(evaluate_suite(pts, epsilon=10.0))
        assert "bqs" in text and "max dev" in text


class TestCLI:
    def test_main_runs(self, capsys):
        assert main(["--points", "400", "--epsilon", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "400 points" in out
        assert "td-tr" in out
