"""Fast-path equivalence and incremental-geometry correctness.

The optimized machinery this suite pins down:

* ``push_many()`` (batched, allocation-lean) must produce *identical* key
  points, stats and outputs to a per-point ``push()`` loop for every
  compressor, across seeds and an epsilon sweep;
* the optimized BQS (hull-based exact fallback, cached bounded areas) must
  agree with the ``debug_audit`` reference mode, which cross-checks every
  exact decision against a brute-force buffer scan;
* :class:`repro.geometry.planar.IncrementalHull` must reproduce the batch
  :func:`repro.geometry.planar.convex_hull` exactly under insertion.
"""

import math
import random

import pytest

from repro.compression import (
    BQSCompressor,
    DeadReckoningCompressor,
    DouglasPeucker,
    FastBQSCompressor,
    TDTRCompressor,
    UniformSampler,
    synthetic_track,
)
from repro.compression.bqs import QuadrantState
from repro.geometry.planar import IncrementalHull, convex_hull
from repro.model import PlanePoint


def _factories(epsilon):
    return [
        lambda: BQSCompressor(epsilon),
        lambda: FastBQSCompressor(epsilon),
        lambda: DeadReckoningCompressor(epsilon),
        lambda: UniformSampler(7, epsilon=epsilon),
        lambda: DouglasPeucker(epsilon),
        lambda: TDTRCompressor(epsilon),
    ]


class TestPushManyEquivalence:
    @pytest.mark.parametrize("epsilon", [2.5, 5.0, 10.0, 25.0])
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_batched_path_is_bit_identical(self, epsilon, seed):
        track = synthetic_track(3000, seed=seed)
        for make in _factories(epsilon):
            per_point = make()
            for p in track:
                per_point.push(p)
            reference = per_point.finish()

            batched = make()
            consumed = batched.push_many(track)
            fast = batched.finish()

            assert consumed == len(track)
            assert fast.key_points == reference.key_points, batched.name
            assert batched.stats == per_point.stats, batched.name
            assert batched.pushed == per_point.pushed
            assert fast.info == reference.info, batched.name

    def test_push_many_chunks_equal_one_batch(self):
        track = synthetic_track(2000, seed=3)
        whole = BQSCompressor(10.0)
        whole.push_many(track)
        chunked = BQSCompressor(10.0)
        for start in range(0, len(track), 257):
            chunked.push_many(track[start:start + 257])
        assert whole.finish().key_points == chunked.finish().key_points

    def test_push_many_mixes_with_push(self):
        track = synthetic_track(1200, seed=11)
        mixed = BQSCompressor(10.0)
        mixed.push_many(track[:500])
        for p in track[500:700]:
            mixed.push(p)
        mixed.push_many(track[700:])
        pure = BQSCompressor(10.0)
        for p in track:
            pure.push(p)
        assert mixed.finish().key_points == pure.finish().key_points
        assert mixed.stats == pure.stats

    def test_push_many_validates_time_monotonicity(self):
        c = FastBQSCompressor(10.0)
        bad = [PlanePoint(0.0, 0.0, 2.0), PlanePoint(1.0, 0.0, 1.0)]
        with pytest.raises(ValueError):
            c.push_many(bad)
        # The valid prefix was consumed; the stream stays usable.
        assert c.pushed == 1
        c.push(PlanePoint(2.0, 0.0, 3.0))

    def test_push_many_after_finish_rejected(self):
        c = BQSCompressor(10.0)
        c.push(PlanePoint(0.0, 0.0, 0.0))
        c.finish()
        with pytest.raises(RuntimeError):
            c.push_many([PlanePoint(1.0, 0.0, 1.0)])

    def test_compress_uses_batched_path(self):
        track = synthetic_track(800, seed=5)
        by_compress = BQSCompressor(10.0).compress(track)
        by_loop = BQSCompressor(10.0)
        for p in track:
            by_loop.push(p)
        assert by_compress.key_points == by_loop.finish().key_points


class TestOptimizedBQSMatchesAuditReference:
    """The hull-based exact fallback vs the buffered brute-force reference."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    @pytest.mark.parametrize("epsilon", [3.0, 10.0])
    def test_key_points_and_stats_identical(self, seed, epsilon):
        track = synthetic_track(4000, seed=seed, noise_sigma=1.5)
        optimized = BQSCompressor(epsilon)
        audited = BQSCompressor(epsilon, debug_audit=True)
        fast = optimized.compress(track)
        # debug_audit raises RuntimeError internally if the hull-based
        # exact deviation ever diverges from the buffered scan.
        reference = audited.compress(track)
        assert fast.key_points == reference.key_points
        assert optimized.stats == audited.stats
        assert fast.max_deviation_from(track) <= epsilon * (1.0 + 1e-9)

    def test_stationary_stream_with_repeated_fixes(self):
        """Co-located points exercise the degenerate (zero-length) path line."""
        fix = [PlanePoint(5.0, 5.0, float(i)) for i in range(200)]
        for make in (
            lambda: BQSCompressor(4.0),
            lambda: BQSCompressor(4.0, debug_audit=True),
        ):
            compressed = make().compress(fix)
            assert len(compressed) == 2

    def test_audit_mode_buffers_and_default_does_not(self):
        track = synthetic_track(1000, seed=9)
        audited = BQSCompressor(10.0, debug_audit=True)
        plain = BQSCompressor(10.0)
        for p in track:
            audited.push(p)
            plain.push(p)
        assert audited.audit_buffered > 0
        assert plain.audit_buffered == 0
        assert plain._buffer is None


class TestIncrementalHull:
    def _point_sets(self):
        rng = random.Random(42)
        sets = []
        for trial in range(120):
            n = rng.randint(1, 150)
            kind = trial % 6
            pts = []
            for _ in range(n):
                if kind == 0:
                    pts.append((rng.uniform(-50, 50), rng.uniform(-50, 50)))
                elif kind == 1:  # integer lattice: duplicates + collinear runs
                    pts.append((float(rng.randint(-4, 4)), float(rng.randint(-4, 4))))
                elif kind == 2:  # exactly-representable collinear run
                    s = float(rng.randint(-9, 9))
                    pts.append((s, 2.0 * s - 3.0))
                elif kind == 3:  # vertical line
                    pts.append((3.0, rng.uniform(-9, 9)))
                elif kind == 4:  # tight cluster (near-degenerate geometry)
                    pts.append((rng.gauss(0, 1e-3), rng.gauss(0, 1e-3)))
                else:  # circle rim: every point is a hull vertex
                    a = rng.uniform(0, 2 * math.pi)
                    pts.append((math.cos(a), math.sin(a)))
            sets.append(pts)
        return sets

    def test_matches_batch_convex_hull_exactly(self):
        for pts in self._point_sets():
            hull = IncrementalHull()
            for p in pts:
                hull.add(p)
            assert hull.vertices() == convex_hull(pts)
            assert len(hull) == len(convex_hull(pts))

    def test_matches_batch_hull_at_every_prefix(self):
        rng = random.Random(1)
        pts = [(rng.uniform(-5, 5), rng.uniform(-5, 5)) for _ in range(80)]
        hull = IncrementalHull()
        for i, p in enumerate(pts, start=1):
            hull.add(p)
            assert hull.vertices() == convex_hull(pts[:i]), f"prefix {i}"

    def test_near_collinear_noise_keeps_bounding_property(self):
        """Points collinear only up to fp rounding: the incremental and
        batch hulls may legitimately pick different boundary-grazing
        vertices, but the property BQS relies on — the hull's max cross
        equals the max over *all* points — must survive."""
        rng = random.Random(2)
        for _ in range(30):
            pts = []
            for _ in range(rng.randint(3, 120)):
                s = rng.uniform(-9, 9)
                pts.append((s, -1.5 * s + 2.0))  # inexact sum: ULP noise
            hull = IncrementalHull(pts)
            for _ in range(10):
                dx, dy = rng.uniform(-3, 3), rng.uniform(-3, 3)
                brute = max(abs(dx * y - dy * x) for x, y in pts)
                assert hull.max_abs_cross(dx, dy) == pytest.approx(
                    brute, rel=1e-9, abs=1e-9
                )

    def test_add_returns_net_vertex_delta(self):
        hull = IncrementalHull()
        assert hull.add((0.0, 0.0)) == 1
        assert hull.add((2.0, 0.0)) == 1
        assert hull.add((1.0, 2.0)) == 1
        assert hull.add((1.0, 0.5)) == 0  # interior: nothing retained
        assert hull.add((0.0, 0.0)) == 0  # duplicate vertex
        assert len(hull) == 3

    def test_max_abs_cross_agrees_with_vertex_scan(self):
        rng = random.Random(9)
        for pts in self._point_sets()[:40]:
            hull = IncrementalHull(pts)
            dx, dy = rng.uniform(-3, 3), rng.uniform(-3, 3)
            expected = max(
                (abs(dx * y - dy * x) for x, y in hull.vertices()),
                default=0.0,
            )
            assert hull.max_abs_cross(dx, dy) == pytest.approx(expected, abs=0.0)

    def test_clear_reuses_state(self):
        hull = IncrementalHull([(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)])
        hull.clear()
        assert len(hull) == 0
        assert hull.vertices() == []
        hull.add((3.0, 3.0))
        assert hull.vertices() == [(3.0, 3.0)]


class TestQuadrantCache:
    def test_interior_point_keeps_bounded_area_cache(self):
        q = QuadrantState(track_hull=True)
        q.add((1.0, 1.0))
        q.add((6.0, 2.0))
        q.add((3.0, 6.0))
        area = q.bounded_area()
        # A point strictly inside box ∩ wedge must not thrash the cache.
        q.add((3.0, 2.5))
        assert q.bounded_area() is area
        # A point growing the box must invalidate it.
        q.add((8.0, 2.0))
        assert q.bounded_area() is not area

    def test_wedge_widening_invalidates_cache(self):
        q = QuadrantState(track_hull=True)
        q.add((4.0, 1.0))
        q.add((4.0, 3.0))
        q.add((10.0, 1.5))
        area = q.bounded_area()
        # Inside the box, but widens the wedge (shallower polar angle).
        q.add((10.0, 1.2))
        assert q.bounded_area() is not area

    def test_cached_area_still_bounds_all_points(self):
        rng = random.Random(5)
        q = QuadrantState(track_hull=True)
        pts = []
        for _ in range(300):
            p = (rng.uniform(0.1, 30.0), rng.uniform(0.1, 30.0))
            pts.append(p)
            q.add(p)
            direction = (rng.uniform(-1, 1), rng.uniform(-1, 1))
            upper = q.upper_bound(direction)
            exact = q.hull_max_deviation(direction)
            assert upper >= exact - 1e-9
