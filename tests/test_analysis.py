"""Tests for :mod:`repro.analysis` — the AST invariant linter.

Each rule gets positive fixtures (code that must be flagged) and
negative fixtures (idiomatic code that must pass), exercised through
``analyze_source`` with synthetic paths so the path-segment scoping is
covered without touching the real tree.  The CLI surface (exit codes,
``--json`` shape, ``--list-rules``) runs through subprocesses, and a
meta-test pins the shipped tree itself clean under ``--strict``.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import fsio
from repro.analysis import RULES, analyze_source, run_paths
from repro.analysis.core import META_RULE_ID
from repro.storage.store import StoreFormatError, TrajectoryStore
from repro.testing import FaultyFS

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

ENGINE = "src/repro/engine/mod.py"


def lint(snippet, path=ENGINE, strict=False):
    return analyze_source(path, textwrap.dedent(snippet), strict=strict)


def active(findings):
    """Rule ids of unsuppressed findings."""
    return [f.rule for f in findings if not f.suppressed]


def run_cli(*argv, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd or REPO,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )


class TestRA01FsioSeam:
    def test_write_mode_open_flagged(self):
        findings = lint("handle = open(path, 'wb')\n")
        assert active(findings) == ["RA01"]

    def test_append_and_plus_modes_flagged(self):
        for mode in ("a", "r+b", "x"):
            assert active(lint(f"h = open(p, {mode!r})\n")) == ["RA01"]

    def test_read_mode_open_passes(self):
        assert active(lint("h = open(path)\nj = open(path, 'rb')\n")) == []

    def test_dynamic_mode_flagged_as_unprovable(self):
        findings = lint("h = open(path, mode)\n")
        assert active(findings) == ["RA01"]
        assert "cannot be proven read-only" in findings[0].message

    def test_os_mutators_flagged_with_seam_replacement(self):
        src = "import os\nos.replace(a, b)\nos.unlink(c)\nos.fsync(fd)\n"
        findings = lint(src)
        assert active(findings) == ["RA01", "RA01", "RA01"]
        assert "fsio.replace" in findings[0].message

    def test_fsio_calls_pass(self):
        src = (
            "from repro import fsio\n"
            "h = fsio.open_file(p, 'wb')\n"
            "fsio.replace(a, b)\n"
            "fsio.unlink(c)\n"
        )
        assert active(lint(src)) == []

    def test_fsio_module_itself_exempt(self):
        src = "import os\nos.replace(a, b)\n"
        assert active(lint(src, path="src/repro/fsio.py")) == []

    def test_testing_shims_exempt(self):
        src = "h = open(p, 'wb')\n"
        assert active(lint(src, path="src/repro/testing/faults.py")) == []


class TestRA02TmpHygiene:
    UNGUARDED = """\
        from repro import fsio

        def write(path):
            tmp = str(path) + ".tmp"
            handle = fsio.open_file(tmp, "wb")
            handle.write(b"data")
    """
    GUARDED = """\
        from repro import fsio

        def write(path):
            tmp = str(path) + ".tmp"
            try:
                handle = fsio.open_file(tmp, "wb")
                handle.write(b"data")
            except OSError:
                fsio.unlink(tmp)
                raise
    """

    def test_unguarded_tmp_write_flagged(self):
        assert active(lint(self.UNGUARDED)) == ["RA02"]

    def test_guarded_tmp_write_passes(self):
        assert active(lint(self.GUARDED)) == []

    def test_finally_cleanup_counts(self):
        src = self.GUARDED.replace(
            'except OSError:\n                fsio.unlink(tmp)\n                raise',
            "finally:\n                fsio.unlink(tmp)",
        )
        assert active(lint(src)) == []

    def test_path_method_unlink_counts(self):
        src = """\
            def write(path):
                tmp = path.with_suffix(".tmp")
                tmp = str(path) + ".tmp"
                try:
                    h = open(tmp, "rb")
                    h2 = fsio.open_file(tmp, "wb")
                except OSError:
                    tmp.unlink()
                    raise
        """
        assert active(lint(src)) == []

    def test_reading_a_tmp_is_fine(self):
        src = """\
            def read(path):
                tmp = str(path) + ".tmp"
                handle = open(tmp, "rb")
        """
        assert active(lint(src)) == []


class TestRA03Determinism:
    def test_wall_clock_flagged(self):
        assert active(lint("import time\nstamp = time.time()\n")) == ["RA03"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nwhen = datetime.datetime.now()\n"
        assert active(lint(src)) == ["RA03"]

    def test_clock_exempt_in_main_and_testing(self):
        src = "import time\nstamp = time.time()\n"
        assert active(lint(src, path="src/repro/bench/__main__.py")) == []
        assert active(lint(src, path="src/repro/testing/synth.py")) == []

    def test_global_random_flagged_even_in_main(self):
        src = "import random\nx = random.random()\n"
        assert active(lint(src)) == ["RA03"]
        assert active(lint(src, path="src/repro/bench/__main__.py")) == ["RA03"]

    def test_unseeded_random_instance_flagged_seeded_passes(self):
        assert active(lint("rng = random.Random()\n")) == ["RA03"]
        assert active(lint("rng = random.Random(1234)\n")) == []
        assert active(lint("rng = random.Random(seed)\n")) == []

    def test_set_literal_iteration_flagged(self):
        assert active(lint("for x in {1, 2, 3}:\n    emit(x)\n")) == ["RA03"]

    def test_sorted_set_iteration_passes(self):
        assert active(lint("for x in sorted({1, 2, 3}):\n    emit(x)\n")) == []

    def test_local_set_binding_tracked(self):
        src = """\
            def report(xs):
                devices = set(xs)
                for d in devices:
                    emit(d)
        """
        assert active(lint(src)) == ["RA03"]

    def test_order_insensitive_consumers_pass(self):
        src = """\
            def report(xs):
                devices = set(xs)
                total = sum(v for v in devices)
                low = min(devices)
                ordered = sorted(devices)
        """
        assert active(lint(src)) == []

    def test_set_names_do_not_leak_across_functions(self):
        # ``items`` is a set in one function and a list in another; only
        # the set-typed one may be flagged.
        src = """\
            def a(xs):
                items = set(xs)
                return sorted(items)

            def b(xs):
                items = list(xs)
                for i in items:
                    emit(i)
        """
        assert active(lint(src)) == []

    def test_set_comprehension_iteration_flagged(self):
        src = "out = [f(x) for x in {1, 2}]\n"
        assert active(lint(src)) == ["RA03"]


class TestRA04TypedErrors:
    def test_bare_runtime_error_flagged(self):
        src = """\
            def pump(self):
                raise RuntimeError("worker died")
        """
        findings = lint(src)
        assert active(findings) == ["RA04"]
        assert "ShardCrashError" in findings[0].message

    def test_unguarded_value_error_flagged(self):
        src = """\
            def decode(self):
                raise ValueError("corrupt frame")
        """
        assert active(lint(src)) == ["RA04"]

    def test_argument_validation_exempt(self):
        src = """\
            def ingest(self, count):
                if count < 0:
                    raise ValueError(f"negative count: {count}")
        """
        assert active(lint(src)) == []

    def test_derived_value_validation_exempt(self):
        src = """\
            def ingest(self, fixes):
                total = len(fixes)
                if total == 0:
                    raise ValueError("empty batch")
        """
        assert active(lint(src)) == []

    def test_init_validation_exempt(self):
        src = """\
            class Engine:
                def __init__(self, shards):
                    raise ValueError("bad shards")
        """
        assert active(lint(src)) == []

    def test_typed_taxonomy_passes(self):
        src = """\
            def pump(self):
                raise ShardCrashError("worker died", shard=0)
        """
        assert active(lint(src)) == []

    def test_out_of_scope_paths_unchecked(self):
        src = """\
            def anything():
                raise RuntimeError("fine outside the data plane")
        """
        assert active(lint(src, path="src/repro/model/point.py")) == []
        assert active(lint(src, path="src/repro/engine/testing/helper.py")) == []


class TestRA05FloatBitExactness:
    def test_float_of_fstring_flagged(self):
        src = 'x = float(f"{value}")\n'
        findings = lint(src, path="src/repro/storage/codec.py")
        assert active(findings) == ["RA05"]

    def test_float_of_str_call_flagged(self):
        src = "x = float(str(value))\n"
        assert active(lint(src, path="src/repro/engine/journal.py")) == ["RA05"]

    def test_plain_float_conversion_passes(self):
        src = "x = float(raw)\ny = float(3)\n"
        assert active(lint(src, path="src/repro/storage/codec.py")) == []

    def test_out_of_scope_file_unchecked(self):
        src = "x = float(str(value))\n"
        assert active(lint(src, path="src/repro/model/point.py")) == []


class TestRA06ShmLifecycle:
    def test_attach_outside_helper_flagged(self):
        src = """\
            from multiprocessing import shared_memory

            def reader(name):
                shm = shared_memory.SharedMemory(name=name)
        """
        findings = lint(src, path="src/repro/engine/transport.py")
        assert active(findings) == ["RA06"]
        assert "bpo-38119" in findings[0].message

    def test_create_true_passes(self):
        src = """\
            from multiprocessing import shared_memory

            def writer(name, size):
                shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        """
        assert active(lint(src, path="src/repro/engine/transport.py")) == []

    def test_attach_inside_helper_passes(self):
        src = """\
            from multiprocessing import shared_memory
            from multiprocessing import resource_tracker

            def attach_shared_memory(name):
                original = resource_tracker.register
                resource_tracker.register = lambda *a, **k: None
                try:
                    return shared_memory.SharedMemory(name=name)
                finally:
                    resource_tracker.register = original
        """
        assert active(lint(src, path="src/repro/engine/transport.py")) == []

    def test_helper_name_outside_transport_still_flagged(self):
        src = """\
            from multiprocessing import shared_memory

            def attach_shared_memory(name):
                return shared_memory.SharedMemory(name=name)
        """
        assert active(lint(src, path="src/repro/engine/other.py")) == ["RA06"]

    def test_tracker_monkeypatch_outside_helper_flagged(self):
        src = """\
            from multiprocessing import resource_tracker

            def sneaky():
                resource_tracker.register = lambda *a, **k: None
        """
        assert active(lint(src, path="src/repro/engine/transport.py")) == [
            "RA06"
        ]


class TestSuppressions:
    def test_same_line_suppression(self):
        src = "os.unlink(p)  # repro: ignore[RA01] foreign file, not ours\n"
        findings = lint(src)
        assert active(findings) == []
        (f,) = findings
        assert f.suppressed and f.rule == "RA01"
        assert f.justification == "foreign file, not ours"

    def test_standalone_comment_governs_next_line(self):
        src = (
            "# repro: ignore[RA01] cleanup of a path outside the store\n"
            "os.unlink(p)\n"
        )
        findings = lint(src)
        assert active(findings) == []
        assert findings[0].suppressed

    def test_suppression_is_rule_specific(self):
        # an RA02 ignore does not silence an RA01 finding
        src = "os.unlink(p)  # repro: ignore[RA02] wrong rule\n"
        assert active(lint(src)) == ["RA01"]

    def test_multi_rule_suppression(self):
        src = "import time\nt = time.time()  # repro: ignore[RA01, RA03] both\n"
        assert active(lint(src)) == []

    def test_marker_inside_string_is_inert(self):
        src = 'doc = "# repro: ignore[RA01] not a comment"\nos.unlink(p)\n'
        assert active(lint(src)) == ["RA01"]

    def test_strict_flags_missing_justification(self):
        src = "os.unlink(p)  # repro: ignore[RA01]\n"
        findings = lint(src, strict=True)
        assert active(findings) == [META_RULE_ID]
        assert "justification" in findings[0].message

    def test_strict_flags_unused_suppression(self):
        src = "x = 1  # repro: ignore[RA01] nothing here needs this\n"
        findings = lint(src, strict=True)
        assert active(findings) == [META_RULE_ID]
        assert "unused" in findings[0].message

    def test_strict_flags_unknown_rule_id(self):
        src = "x = 1  # repro: ignore[RA99] bogus\n"
        findings = lint(src, strict=True)
        assert active(findings) == [META_RULE_ID]
        assert "RA99" in findings[0].message

    def test_non_strict_tolerates_suppression_hygiene(self):
        src = "os.unlink(p)  # repro: ignore[RA01]\n"
        assert active(lint(src, strict=False)) == []


class TestRunner:
    def test_findings_sorted_and_files_counted(self, tmp_path):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "b.py").write_text("h = open(p, 'wb')\n")
        (pkg / "a.py").write_text("import os\nos.unlink(p)\nos.replace(a, b)\n")
        findings, checked = run_paths([str(tmp_path)])
        assert checked == 2
        keys = [f.sort_key() for f in findings]
        assert keys == sorted(keys)
        assert [f.rule for f in findings] == ["RA01", "RA01", "RA01"]

    def test_registry_has_all_six_rules(self):
        assert sorted(RULES) == ["RA01", "RA02", "RA03", "RA04", "RA05", "RA06"]


class TestCLI:
    @pytest.fixture()
    def bad_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import os\nos.unlink(p)\n\ndef pump(self):\n"
            "    raise RuntimeError('x')\n"
        )
        return tmp_path

    def test_exit_zero_on_clean_tree(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 0, proc.stderr

    def test_exit_one_on_findings(self, bad_tree):
        proc = run_cli(str(bad_tree))
        assert proc.returncode == 1
        assert "RA01" in proc.stdout and "RA04" in proc.stdout

    def test_exit_two_on_missing_path(self, tmp_path):
        proc = run_cli(str(tmp_path / "nope.py"))
        assert proc.returncode == 2

    def test_exit_two_on_syntax_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("RA00", "RA01", "RA02", "RA03", "RA04", "RA05", "RA06"):
            assert rule_id in proc.stdout

    def test_json_report_shape(self, bad_tree):
        proc = run_cli("--json", "--strict", str(bad_tree))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["tool"] == "repro.analysis"
        assert doc["version"] == 1
        assert doc["strict"] is True
        assert doc["checked_files"] == 1
        assert doc["exit_code"] == 1
        assert doc["counts"] == {"RA01": 1, "RA04": 1}
        assert len(doc["findings"]) == 2
        for f in doc["findings"]:
            assert set(f) == {
                "rule",
                "path",
                "line",
                "col",
                "message",
                "suppressed",
                "justification",
            }
            assert isinstance(f["line"], int) and f["line"] >= 1
            assert f["suppressed"] is False

    def test_json_includes_suppressed_findings_flagged(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import os\nos.unlink(p)  # repro: ignore[RA01] cleanup elsewhere\n"
        )
        proc = run_cli("--json", str(tmp_path))
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert doc["exit_code"] == 0
        assert doc["counts"] == {}
        (f,) = doc["findings"]
        assert f["suppressed"] is True
        assert f["justification"] == "cleanup elsewhere"

    def test_shipped_tree_is_strict_clean(self):
        """The gate CI enforces: the real src/ tree lints clean."""
        proc = run_cli("--strict", "src")
        assert proc.returncode == 0, f"\n{proc.stdout}\n{proc.stderr}"


class TestFixedViolations:
    """Regression tests for the violations the linter surfaced."""

    def test_fsio_unlink_routes_through_shim(self, tmp_path):
        target = tmp_path / "victim"
        target.write_bytes(b"x")
        shim = FaultyFS()
        with fsio.injected(shim):
            fsio.unlink(target)
        assert shim.unlinks == 1
        assert not target.exists()

    def test_fsio_unlink_falls_back_without_shim_support(self, tmp_path):
        class Minimal:
            def open(self, path, mode="rb", **kw):
                return open(path, mode, **kw)

            def replace(self, src, dst):
                raise AssertionError("unused")

            def fsync(self, fd):
                raise AssertionError("unused")

        target = tmp_path / "victim"
        target.write_bytes(b"x")
        with fsio.injected(Minimal()):
            fsio.unlink(target)
        assert not target.exists()

    def test_store_manifest_tmp_cleanup_goes_through_seam(self, tmp_path):
        # A manifest rename that fails must clean its .tmp via the seam
        # (visible to fault injection), not via a raw os.unlink.
        store = TrajectoryStore(tmp_path / "store")
        shim = FaultyFS(fail_replace_at=1)
        try:
            with fsio.injected(shim):
                with pytest.raises(OSError):
                    store._write_manifest()
            assert shim.unlinks >= 1
            assert not list((tmp_path / "store").glob("*.tmp"))
        finally:
            store.close()

    def test_unsupported_store_format_raises_typed_value_error(self, tmp_path):
        directory = tmp_path / "store"
        directory.mkdir()
        (directory / "manifest.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(StoreFormatError) as exc_info:
            TrajectoryStore(directory)
        assert isinstance(exc_info.value, ValueError)
        assert "format 99" in str(exc_info.value)
