"""Online statistics tests, including the empty-sample-set guard."""

import math
import statistics as stdlib_stats

import pytest

from repro.model import EmpiricalDistribution, OnlineGaussian, RunningStats


class TestRunningStats:
    def test_matches_stdlib(self):
        data = [1.5, 2.0, 2.5, 10.0, -3.0, 0.25]
        rs = RunningStats()
        rs.extend(data)
        assert rs.count == len(data)
        assert rs.mean == pytest.approx(stdlib_stats.fmean(data))
        assert rs.sample_variance == pytest.approx(stdlib_stats.variance(data))
        assert rs.minimum == min(data)
        assert rs.maximum == max(data)

    def test_rejects_non_finite(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            rs.push(math.nan)

    def test_merge_equals_sequential(self):
        a, b, merged = RunningStats(), RunningStats(), RunningStats()
        left = [1.0, 2.0, 3.0]
        right = [10.0, 20.0]
        a.extend(left)
        b.extend(right)
        merged.extend(left + right)
        a.merge(b)
        assert a.count == merged.count
        assert a.mean == pytest.approx(merged.mean)
        assert a.variance == pytest.approx(merged.variance)


class TestEmpiricalDistribution:
    def test_empty_samples_raise_value_error_at_construction(self):
        """Regression guard: [] must fail loudly, not IndexError later."""
        with pytest.raises(ValueError, match="at least one sample"):
            EmpiricalDistribution([])

    def test_non_finite_samples_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0, math.inf])

    def test_min_max_quantiles(self):
        d = EmpiricalDistribution([3.0, 1.0, 2.0])
        assert d.minimum == 1.0
        assert d.maximum == 3.0
        assert d.quantile(0.0) == 1.0
        assert d.quantile(0.5) == 2.0
        assert d.quantile(1.0) == 3.0
        with pytest.raises(ValueError):
            d.quantile(1.5)

    def test_sample_clamps_variate(self):
        d = EmpiricalDistribution([5.0, 6.0])
        assert d.sample(-0.2) == 5.0
        assert d.sample(1.7) == 6.0


class TestOnlineGaussian:
    def test_cdf_monotone(self):
        g = OnlineGaussian()
        for v in [0.0, 1.0, 2.0, 3.0, 4.0]:
            g.observe(v)
        values = [g.cdf(x / 2.0) for x in range(-4, 12)]
        assert values == sorted(values)
        assert g.cdf(g.mean) == pytest.approx(0.5)
