"""Data-model tests: trajectories, compressed output, reconstruction/SED."""

import pytest

from repro.model import (
    CompressedTrajectory,
    PlanePoint,
    Segment,
    Trajectory,
    iter_plane_points,
    max_synchronized_deviation,
    reconstruct_at,
    reconstruct_series,
    synchronized_deviation,
)


def pts(*coords):
    return tuple(PlanePoint(x, y, t) for x, y, t in coords)


class TestSegmentAndTrajectory:
    def test_segment_deviation_known_triangle(self):
        seg = Segment(pts((0, 0, 0), (1, 2, 1), (2, 0, 2)))
        assert seg.deviation() == pytest.approx(2.0)

    def test_time_order_enforced(self):
        with pytest.raises(ValueError):
            Segment(pts((0, 0, 1), (1, 1, 0)))

    def test_trajectory_deviation_is_max_over_segments(self):
        t = Trajectory(
            (
                Segment(pts((0, 0, 0), (1, 0.5, 1), (2, 0, 2))),
                Segment(pts((2, 0, 2), (3, 3, 3), (4, 0, 4))),
            )
        )
        assert t.deviation() == pytest.approx(3.0)
        assert t.point_count() == 6


class TestCompressedTrajectory:
    def test_records_algorithm_and_rates(self):
        ct = CompressedTrajectory(
            key_points=pts((0, 0, 0), (10, 0, 10)),
            original_count=10,
            algorithm="bqs",
        )
        assert ct.algorithm == "bqs"
        assert ct.compression_rate == pytest.approx(0.2)
        assert ct.compression_ratio == pytest.approx(5.0)

    def test_max_deviation_from_straight_chord(self):
        original = pts((0, 0, 0), (1, 1, 1), (2, 0, 2), (3, 0, 3))
        ct = CompressedTrajectory(pts((0, 0, 0), (3, 0, 3)), original_count=4)
        assert ct.max_deviation_from(original) == pytest.approx(1.0)

    def test_more_keys_than_originals_rejected(self):
        with pytest.raises(ValueError):
            CompressedTrajectory(pts((0, 0, 0), (1, 0, 1)), original_count=1)


class TestReconstruction:
    def test_uniform_midpoint(self):
        a = PlanePoint(0.0, 0.0, 0.0)
        b = PlanePoint(10.0, 20.0, 10.0)
        mid = reconstruct_at(a, b, 5.0)
        assert (mid.x, mid.y) == (5.0, 10.0)

    def test_series_walks_segments(self):
        ct = CompressedTrajectory(pts((0, 0, 0), (10, 0, 10), (10, 10, 20)), 3)
        series = reconstruct_series(ct, [0.0, 5.0, 15.0, 20.0])
        assert (series[1].x, series[1].y) == (5.0, 0.0)
        assert (series[2].x, series[2].y) == (10.0, 5.0)

    def test_synchronized_deviation_is_sed(self):
        a = PlanePoint(0.0, 0.0, 0.0)
        b = PlanePoint(10.0, 0.0, 10.0)
        p = PlanePoint(5.0, 3.0, 5.0)
        assert synchronized_deviation(p, a, b) == pytest.approx(3.0)
        # A point lagging behind schedule picks up longitudinal error too.
        late = PlanePoint(2.0, 0.0, 5.0)
        assert synchronized_deviation(late, a, b) == pytest.approx(3.0)

    def test_max_synchronized_deviation_over_track(self):
        original = pts((0, 0, 0), (4, 1, 5), (10, 0, 10))
        ct = CompressedTrajectory(pts((0, 0, 0), (10, 0, 10)), 3)
        # At t=5 the reconstruction sits at (5, 0); the point is at (4, 1).
        assert max_synchronized_deviation(ct, original) == pytest.approx(2.0 ** 0.5)

    def test_iter_plane_points_default_timestamps(self):
        points = list(iter_plane_points([0, 1], [2, 3]))
        assert [p.t for p in points] == [0.0, 1.0]
