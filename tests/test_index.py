"""Index sidecar tests: corruption fuzz, mmap-vs-scan parity, migration,
antimeridian wrap, stale concurrent readers.

The sidecars are an *accelerator*: the segment logs stay the source of
truth, so the load-bearing property is that no amount of sidecar damage
— truncation, bit flips, zeroing, staleness — ever changes an answer.
Every fuzz case here pins the indexed store's full query surface against
a store opened with ``index_sidecars=False`` (the pure legacy envelope
scan), and the parity class pins the mmap fast path bit-identical to the
scan on the geodetic fleet fixtures.
"""

import json
import math
import random
import struct
import zlib

import pytest

from repro.compression import BQSCompressor
from repro.engine import GeoStreamEngine, gps_fleet_fixes, iter_geo_fix_batches
from repro.model import CompressedTrajectory, PlanePoint
from repro.model.projection import UTMProjection
from repro.storage import (
    StaleStoreError,
    StoreSink,
    TrajectoryStore,
    geo_range_query,
    migrate_store,
    range_query,
    time_window_query,
)
from repro.storage.codec import _read_uvarint
from repro.storage.index import sidecar_path
from repro.storage.__main__ import main as storage_main

EPSILON = 10.0


def _trajectory(points, epsilon=EPSILON, frame=None):
    return CompressedTrajectory(
        key_points=tuple(points),
        original_count=len(points),
        tolerance=epsilon,
        algorithm="bqs",
        frame=frame,
    )


def _track(cx, cy, n=12, t0=0.0):
    """A deterministic short diagonal track starting at (cx, cy)."""
    return [
        PlanePoint(cx + 7.0 * k, cy + 3.0 * k, t0 + 60.0 * k) for k in range(n)
    ]


def _build_plain(path, n=100, segment_max_bytes=4096):
    """A multi-segment planar store with known contents, sealed on disk."""
    with TrajectoryStore(path, segment_max_bytes=segment_max_bytes) as s:
        for i in range(n):
            s.append(
                f"dev-{i % 7}",
                _trajectory(_track(i * 50.0, (i % 13) * 40.0, t0=float(i))),
            )
        segments = list(s.segment_names)
    if n >= 100:
        assert len(segments) >= 3, "fixture must span several segments"
    return segments


_RECT = (1000.0, 0.0, 2000.0, 600.0)
_WINDOW = (600.0, 3000.0)


def _answers(store):
    """The full query surface of a store, as comparable values."""
    return {
        "records": store.records(),
        "count": store.record_count,
        "devices": store.devices(),
        "manifests": {
            d: store.device_manifest(d) for d in sorted(store.devices())
        },
        "window": [
            (m.ref, m.definite) for m in time_window_query(store, *_WINDOW)
        ],
        "range_exact": [
            (m.ref, m.definite) for m in range_query(store, _RECT, mode="exact")
        ],
        "range_approx": [
            m.ref for m in range_query(store, _RECT, mode="approximate")
        ],
        "windowed_range": [
            (m.ref, m.definite)
            for m in range_query(
                store, _RECT, mode="exact", t0=_WINDOW[0], t1=_WINDOW[1]
            )
        ],
        "bbox": store.bbox(),
        "span": store.time_span(),
    }


def _scan_answers(path):
    with TrajectoryStore(path, index_sidecars=False) as scan:
        return _answers(scan)


class TestSidecarCorruption:
    """No corruption of a ``.idx`` file may change an answer — the worst
    it can cost is a rescan, after which the sidecar is regenerated."""

    def _check_matches_scan_and_heals(self, path, expected):
        with TrajectoryStore(path) as store:
            assert _answers(store) == expected
        # The fallback scan regenerated the sidecar: the next open is
        # served entirely from sidecars again.
        with TrajectoryStore(path) as store:
            report = store.index_report()
            assert report["scanned_segments"] == 0
            assert report["sidecar_rows"] == report["rows"]
            assert _answers(store) == expected

    def test_zero_length_sidecar(self, tmp_path):
        path = tmp_path / "s"
        segments = _build_plain(path)
        expected = _scan_answers(path)
        sidecar_path(path, segments[0]).write_bytes(b"")
        self._check_matches_scan_and_heals(path, expected)

    def test_truncated_sidecar(self, tmp_path):
        path = tmp_path / "s"
        segments = _build_plain(path)
        expected = _scan_answers(path)
        idx = sidecar_path(path, segments[1])
        data = idx.read_bytes()
        idx.write_bytes(data[: len(data) // 2])
        self._check_matches_scan_and_heals(path, expected)

    def test_footer_bitflip(self, tmp_path):
        path = tmp_path / "s"
        segments = _build_plain(path)
        expected = _scan_answers(path)
        idx = sidecar_path(path, segments[0])
        data = bytearray(idx.read_bytes())
        data[-40] ^= 0x10
        idx.write_bytes(bytes(data))
        self._check_matches_scan_and_heals(path, expected)

    def test_row_region_bitflip_caught_lazily(self, tmp_path):
        """A flip in the (lazily verified) row region opens fine but is
        caught by the row CRC before any row is served."""
        path = tmp_path / "s"
        segments = _build_plain(path)
        expected = _scan_answers(path)
        idx = sidecar_path(path, segments[0])
        data = bytearray(idx.read_bytes())
        data[8 + 16] ^= 0x01  # a row envelope double, past the header
        idx.write_bytes(bytes(data))
        with TrajectoryStore(path) as store:
            # The footer and metadata regions still validate...
            assert store.index_report()["scanned_segments"] == 0
            # ...but the first row access trips the CRC and falls back.
            assert _answers(store) == expected
            assert store.index_report()["scanned_segments"] == 1
        self._check_matches_scan_and_heals(path, expected)

    def test_stale_sidecar_rejected_on_size(self, tmp_path):
        """A sidecar describing yesterday's shorter log must not serve
        (it would silently hide the newer records)."""
        path = tmp_path / "s"
        segments = _build_plain(path)
        idx = sidecar_path(path, segments[-1])
        stale = idx.read_bytes()
        with TrajectoryStore(path) as store:  # grow the tail segment
            store.append("dev-late", _trajectory(_track(9000.0, 0.0)))
        expected = _scan_answers(path)
        assert any(r.device_id == "dev-late" for r in expected["records"])
        idx.write_bytes(stale)
        self._check_matches_scan_and_heals(path, expected)

    def test_random_corruption_fuzz(self, tmp_path):
        """Arbitrary mutations — truncations, bit flips, zeroed ranges —
        anywhere in any sidecar never escape as a wrong answer."""
        path = tmp_path / "s"
        segments = _build_plain(path)
        expected = _scan_answers(path)
        pristine = {
            name: sidecar_path(path, name).read_bytes() for name in segments
        }
        rng = random.Random(20260807)
        for case in range(24):
            name = segments[rng.randrange(len(segments))]
            idx = sidecar_path(path, name)
            data = bytearray(pristine[name])
            kind = case % 3
            if kind == 0:
                data = data[: rng.randrange(len(data))]
            elif kind == 1:
                data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            else:
                start = rng.randrange(len(data))
                end = min(len(data), start + rng.randrange(1, 256))
                data[start:end] = bytes(end - start)
            idx.write_bytes(bytes(data))
            with TrajectoryStore(path) as store:
                assert _answers(store) == expected, (case, name, kind)
            # The open (or close) regenerated it; restore the original
            # bytes anyway so every case mutates the same baseline.
            idx.write_bytes(pristine[name])

    def test_tombstones_survive_the_sidecar_round_trip(self, tmp_path):
        path = tmp_path / "s"
        _build_plain(path)
        with TrajectoryStore(path) as store:
            assert store.delete_device("dev-3") > 0
        expected = _scan_answers(path)
        assert all(r.device_id != "dev-3" for r in expected["records"])
        with TrajectoryStore(path) as store:
            assert store.index_report()["scanned_segments"] == 0
            assert _answers(store) == expected

    def test_reindex_rebuilds_every_sidecar(self, tmp_path):
        path = tmp_path / "s"
        segments = _build_plain(path)
        expected = _scan_answers(path)
        for name in segments:
            sidecar_path(path, name).write_bytes(b"garbage")
        with TrajectoryStore(path) as store:
            assert store.reindex() == len(segments)
            assert _answers(store) == expected
        with TrajectoryStore(path) as store:
            assert store.index_report()["scanned_segments"] == 0


class TestSidecarWriteFailure:
    """A sidecar that cannot be WRITTEN (full or read-only disk) must cost
    exactly what a corrupt one does: scan mode, correct answers, and a
    clean heal once the disk recovers.  Failures are simulated by
    monkeypatching because the suite may run as root, where chmod-based
    read-only directories are not enforced."""

    @staticmethod
    def _enospc(*args, **kwargs):
        raise OSError(28, "No space left on device")

    def test_regeneration_failure_degrades_to_scan(self, tmp_path, monkeypatch):
        import repro.storage.store as store_mod

        path = tmp_path / "s"
        segments = _build_plain(path)
        expected = _scan_answers(path)
        for name in segments:
            sidecar_path(path, name).unlink()

        monkeypatch.setattr(store_mod, "write_sidecar", self._enospc)
        with TrajectoryStore(path) as store:
            report = store.index_report()
            assert report["scanned_segments"] == len(segments)
            assert _answers(store) == expected  # scan mode, right answers
        # Close attempted regeneration and failed silently; nothing may
        # have been corrupted or half-written.
        for name in segments:
            assert not sidecar_path(path, name).exists()
            assert not sidecar_path(path, name).with_suffix(
                ".idx.tmp"
            ).exists()

        # Disk recovers: the next open rescans, heals every sidecar, and
        # the one after is served from sidecars alone.
        monkeypatch.undo()
        with TrajectoryStore(path) as store:
            assert _answers(store) == expected
        with TrajectoryStore(path) as store:
            report = store.index_report()
            assert report["scanned_segments"] == 0
            assert report["sidecar_rows"] == report["rows"]
            assert _answers(store) == expected

    def test_append_survives_sidecar_write_failure(self, tmp_path, monkeypatch):
        """Rolling a segment while the disk is full must not lose data:
        the log append sequence is unaffected, only the accelerator is."""
        import repro.storage.store as store_mod

        path = tmp_path / "s"
        monkeypatch.setattr(store_mod, "write_sidecar", self._enospc)
        with TrajectoryStore(path, segment_max_bytes=4096) as store:
            for i in range(60):
                store.append(
                    f"dev-{i % 5}",
                    _trajectory(_track(i * 30.0, i * 10.0, t0=float(i))),
                )
            assert store.record_count == 60
        expected = _scan_answers(path)
        assert len(expected["records"]) == 60

        monkeypatch.undo()
        with TrajectoryStore(path) as store:
            assert _answers(store) == expected
            store.reindex()
        with TrajectoryStore(path) as store:
            assert store.index_report()["scanned_segments"] == 0
            assert _answers(store) == expected

    def test_reindex_propagates_failure_without_corruption(
        self, tmp_path, monkeypatch
    ):
        """reindex() is an explicit repair: its failure must surface, and
        the store must keep answering correctly afterward."""
        import repro.storage.store as store_mod

        path = tmp_path / "s"
        _build_plain(path)
        expected = _scan_answers(path)
        with TrajectoryStore(path) as store:
            monkeypatch.setattr(store_mod, "write_sidecar", self._enospc)
            with pytest.raises(OSError):
                store.reindex()
            assert _answers(store) == expected

    def test_interrupted_write_leaves_no_tmp_file(self, tmp_path, monkeypatch):
        """write_sidecar's crash-safety: a failure after the tmp file was
        created removes it — a truncated .idx.tmp must never linger where
        a later rename could promote it."""
        import repro.storage.index as index_mod

        target = tmp_path / "seg-00000001.idx"

        def boom(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(index_mod.os, "replace", boom)
        with pytest.raises(OSError):
            index_mod.write_sidecar(
                target,
                "seg-00000001.log",
                [],
                [],
                segment_size=0,
                log_crc=0,
                head_crc=0,
            )
        assert not target.exists()
        assert not target.with_suffix(".idx.tmp").exists()


class TestMmapScanParity:
    """The pinned guarantee: the mmap'd sidecar fast path returns answers
    bit-identical to the in-memory envelope scan — same refs, same
    floats, same order — on the geodetic fleet fixtures."""

    @pytest.fixture(scope="class")
    def geo_store_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("parity") / "geo"
        ids, ts, lats, lons = gps_fleet_fixes(
            12, 90, seed=41, multi_zone=True, noise_m=2.0
        )
        sink = StoreSink(directory)
        engine = GeoStreamEngine(
            lambda device_id: BQSCompressor(EPSILON), collect=False, sink=sink
        )
        for batch in iter_geo_fix_batches(ids, ts, lats, lons, 211):
            engine.push_columns(*batch)
        engine.finish_all()
        sink.close()
        return directory, lats, lons

    def test_records_and_manifests_identical(self, geo_store_dir):
        directory = geo_store_dir[0]
        with TrajectoryStore(directory) as fast, TrajectoryStore(
            directory, index_sidecars=False
        ) as scan:
            assert fast.index_report()["scanned_segments"] == 0
            assert scan.index_report()["sidecar_segments"] == 0
            assert fast.records() == scan.records()
            assert fast.devices() == scan.devices()
            for device in scan.devices():
                assert fast.device_manifest(device) == scan.device_manifest(
                    device
                )
            assert fast.bbox() == scan.bbox()
            assert fast.time_span() == scan.time_span()
            assert fast.stamped_frames() == scan.stamped_frames()

    def test_geo_queries_bit_identical(self, geo_store_dir):
        directory, lats, lons = geo_store_dir
        north = [(la, lo) for la, lo in zip(lats, lons) if la >= 0.0]
        rects = [
            (
                min(p[0] for p in north),
                min(p[1] for p in north),
                max(p[0] for p in north),
                max(p[1] for p in north),
            )
        ]
        rng = random.Random(505)
        for _ in range(12):
            la0, lo0 = north[rng.randrange(len(north))]
            dla = rng.uniform(0.001, 0.05)
            dlo = rng.uniform(0.001, 0.05)
            rects.append((la0 - dla, lo0 - dlo, la0 + dla, lo0 + dlo))
        with TrajectoryStore(directory) as fast, TrajectoryStore(
            directory, index_sidecars=False
        ) as scan:
            for rect in rects:
                for mode in ("exact", "approximate"):
                    a = geo_range_query(fast, rect, mode=mode)
                    b = geo_range_query(scan, rect, mode=mode)
                    assert [
                        (m.ref, m.definite, m.geo_envelope) for m in a
                    ] == [(m.ref, m.definite, m.geo_envelope) for m in b], (
                        rect,
                        mode,
                    )

    def test_planar_candidates_bit_identical(self, geo_store_dir):
        directory = geo_store_dir[0]
        with TrajectoryStore(directory) as fast, TrajectoryStore(
            directory, index_sidecars=False
        ) as scan:
            x0, y0, x1, y1 = scan.bbox()
            rng = random.Random(606)
            for _ in range(20):
                cx = rng.uniform(x0, x1)
                cy = rng.uniform(y0, y1)
                w = rng.uniform(1.0, (x1 - x0) * 0.5)
                h = rng.uniform(1.0, (y1 - y0) * 0.5)
                rect = (cx - w, cy - h, cx + w, cy + h)
                t0, t1 = (None, None) if rng.random() < 0.5 else (20.0, 70.0)
                assert list(
                    fast.candidates(rect=rect, t0=t0, t1=t1)
                ) == list(scan.candidates(rect=rect, t0=t0, t1=t1)), rect


class TestAntimeridianWrap:
    """A lat/lon rectangle with ``lon_min > lon_max`` wraps the ±180°
    seam: two lobes, one union, no false negatives."""

    @pytest.fixture(scope="class")
    def dateline_store(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("wrap") / "store"
        sink = StoreSink(directory)
        engine = GeoStreamEngine(
            lambda device_id: BQSCompressor(EPSILON), collect=False, sink=sink
        )
        tracks = {
            # Hugging the seam from the west (zone 60N).
            "west": [(10.0 + 0.001 * k, 179.90 + 0.008 * k) for k in range(9)],
            # Hugging the seam from the east (zone 1N).
            "east": [(10.0 + 0.001 * k, -179.98 + 0.008 * k) for k in range(9)],
            # Same zone as "west" but clear of the wrap rectangle.
            "away": [(10.0 + 0.001 * k, 178.00 + 0.008 * k) for k in range(9)],
        }
        for device, fixes in tracks.items():
            for k, (lat, lon) in enumerate(fixes):
                engine.push_fix(device, float(k), lat, lon)
        engine.finish_all()
        sink.close()
        return directory, tracks

    def test_wrap_finds_both_sides_of_the_seam(self, dateline_store):
        directory, tracks = dateline_store
        rect = (9.0, 179.5, 11.0, -179.5)
        with TrajectoryStore(directory) as store:
            exact = geo_range_query(store, rect, mode="exact")
            assert {m.device_id for m in exact} == {"west", "east"}
            # Both devices have raw fixes inside the wrapped rectangle,
            # so both matches are definite.
            assert all(m.definite for m in exact)
            approx = geo_range_query(store, rect, mode="approximate")
            assert {"west", "east"} <= {m.device_id for m in approx}
            assert "away" not in {m.device_id for m in approx}

    def test_wrap_equals_union_of_lobes(self, dateline_store):
        directory = dateline_store[0]
        rect = (9.0, 179.5, 11.0, -179.5)
        with TrajectoryStore(directory) as store:
            wrapped = geo_range_query(store, rect, mode="exact")
            west = geo_range_query(
                store, (9.0, 179.5, 11.0, 180.0), mode="exact"
            )
            east = geo_range_query(
                store, (9.0, -180.0, 11.0, -179.5), mode="exact"
            )
            union = {
                (m.ref.segment, m.ref.offset) for m in west + east
            }
            assert {
                (m.ref.segment, m.ref.offset) for m in wrapped
            } == union

    def test_no_false_negatives_across_the_seam(self, dateline_store):
        directory, tracks = dateline_store
        lon_west, lon_east = 179.95, -179.93
        rect = (9.0, lon_west, 11.0, lon_east)
        truth = {
            device
            for device, fixes in tracks.items()
            if any(
                9.0 <= la <= 11.0 and (lo >= lon_west or lo <= lon_east)
                for la, lo in fixes
            )
        }
        assert truth  # the fixture genuinely straddles this rect
        with TrajectoryStore(directory) as store:
            exact = {
                m.device_id
                for m in geo_range_query(store, rect, mode="exact")
            }
            assert truth <= exact

    def test_wide_wrap_reports_each_record_once(self, dateline_store):
        """A rectangle wrapping nearly the whole globe covers every
        device; records must still be reported exactly once, in append
        order."""
        directory = dateline_store[0]
        rect = (9.0, 20.0, 11.0, 19.0)  # [20..180] U [-180..19]
        with TrajectoryStore(directory) as store:
            matches = geo_range_query(store, rect, mode="approximate")
            keys = [(m.ref.segment, m.ref.offset) for m in matches]
            assert len(keys) == len(set(keys))
            assert {m.device_id for m in matches} == {"west", "east", "away"}
            order = {n: i for i, n in enumerate(store.segment_names)}
            assert keys == sorted(
                keys, key=lambda k: (order[k[0]], k[1])
            )

    def test_wrap_respects_the_time_window(self, dateline_store):
        directory, tracks = dateline_store
        rect = (9.0, 179.5, 11.0, -179.5)
        with TrajectoryStore(directory) as store:
            late = geo_range_query(
                store, rect, mode="exact", t0=100.0, t1=200.0
            )
            assert late == []  # every fix is at t <= 8

    def test_validation_still_rejects_out_of_range_lons(self, dateline_store):
        directory = dateline_store[0]
        with TrajectoryStore(directory) as store:
            with pytest.raises(ValueError):
                geo_range_query(store, (0.0, 170.0, 1.0, 181.0))
            with pytest.raises(ValueError):
                geo_range_query(store, (0.0, -181.0, 1.0, 0.0))
            # But a wrapped rectangle is not an error any more.
            assert (
                geo_range_query(store, (0.0, 179.9, 0.1, -179.9)) == []
            )


def _downgrade_manifest(path, fmt):
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["format"] = fmt
    manifest.pop("generation", None)
    (path / "manifest.json").write_text(json.dumps(manifest))


def _downgrade_to_format1(path):
    """Rewrite a (frame-less) store as an honest format-1 directory:
    strip the two zone/hemisphere envelope bytes from every trajectory
    payload, stamp the manifest, drop the sidecars."""
    frame = struct.Struct("<II")
    manifest = json.loads((path / "manifest.json").read_text())
    for name in manifest["segments"]:
        data = (path / name).read_bytes()
        out = bytearray()
        pos = 0
        while pos + frame.size <= len(data):
            length, _crc = frame.unpack_from(data, pos)
            payload = data[pos + frame.size : pos + frame.size + length]
            pos += frame.size + length
            if payload[0] == 1:  # trajectory record: drop the frame bytes
                id_len, p = _read_uvarint(payload, 1)
                env_end = p + id_len + 56  # 7 doubles
                payload = payload[:env_end] + payload[env_end + 2 :]
            out += frame.pack(len(payload), zlib.crc32(payload))
            out += payload
        (path / name).write_bytes(bytes(out))
    _downgrade_manifest(path, 1)
    for idx in path.glob("seg-*.idx"):
        idx.unlink()


class TestMigrate:
    def _fingerprint(self, store):
        return [
            (
                r.device_id,
                r.t_min,
                r.t_max,
                r.x_min,
                r.x_max,
                r.y_min,
                r.y_max,
                r.epsilon,
                r.n_key_points,
            )
            for r in store.records()
        ]

    def test_old_format_open_points_at_migrate(self, tmp_path):
        path = tmp_path / "s"
        _build_plain(path, n=10)
        _downgrade_manifest(path, 2)
        with pytest.raises(ValueError, match="migrate"):
            TrajectoryStore(path)

    def test_migrate_format2(self, tmp_path):
        path = tmp_path / "s"
        _build_plain(path, n=30)
        with TrajectoryStore(path) as store:
            before = self._fingerprint(store)
        _downgrade_manifest(path, 2)
        summary = migrate_store(path)
        assert summary["from_format"] == 2
        assert summary["migrated"] == 1
        assert summary["records"] == 30
        assert summary["sidecars"] == summary["segments"]
        with TrajectoryStore(path) as store:
            assert self._fingerprint(store) == before
            assert store.index_report()["scanned_segments"] == 0

    def test_migrate_format1(self, tmp_path):
        path = tmp_path / "s"
        _build_plain(path, n=30)
        with TrajectoryStore(path) as store:
            before = self._fingerprint(store)
            decoded_before = [
                store.read(r).columns.xs for r in store.records()
            ]
        _downgrade_to_format1(path)
        summary = migrate_store(path)
        assert summary["from_format"] == 1
        assert summary["records"] == 30
        with TrajectoryStore(path) as store:
            assert self._fingerprint(store) == before
            refs = store.records()
            assert all(r.utm_zone is None for r in refs)
            assert [store.read(r).columns.xs for r in refs] == decoded_before
            # Range queries over the migrated store still answer.
            assert range_query(store, _RECT, mode="exact")

    def test_migrate_format1_with_tombstone(self, tmp_path):
        path = tmp_path / "s"
        _build_plain(path, n=20)
        with TrajectoryStore(path) as store:
            store.delete_device("dev-1")
            live = len(store.records())
        _downgrade_to_format1(path)
        summary = migrate_store(path)
        assert summary["records"] == live
        with TrajectoryStore(path) as store:
            assert all(r.device_id != "dev-1" for r in store.records())

    def test_migrate_current_format_is_a_noop(self, tmp_path):
        path = tmp_path / "s"
        _build_plain(path, n=10)
        summary = migrate_store(path)
        assert summary["migrated"] == 0
        assert summary["records"] == 10

    def test_unknown_format_refused(self, tmp_path):
        path = tmp_path / "s"
        _build_plain(path, n=5)
        _downgrade_manifest(path, 99)
        with pytest.raises(ValueError, match="format 99"):
            migrate_store(path)

    def test_not_a_store_refused(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            migrate_store(tmp_path / "empty")

    def test_migrate_cli(self, tmp_path, capsys):
        path = tmp_path / "s"
        _build_plain(path, n=12)
        _downgrade_manifest(path, 2)
        assert storage_main(["migrate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "format 2" in out
        _downgrade_manifest(path, 99)
        with pytest.raises(SystemExit):
            storage_main(["migrate", str(path)])


class TestStaleReader:
    def test_compaction_under_a_concurrent_reader(self, tmp_path):
        path = tmp_path / "s"
        _build_plain(path, n=40)
        reader = TrajectoryStore(path)
        try:
            victim = reader.device_manifest("dev-2")[0]
            survivors = {
                (r.segment, r.offset)
                for r in reader.records()
                if r.device_id != "dev-2"
            }
            with TrajectoryStore(path) as writer:
                writer.delete_device("dev-2")
                writer.compact()
            # The reader's cached index predates the compaction; its next
            # read of a reaped segment must fail loudly, not return stale
            # bytes — and reload the index so a re-query just works.
            with pytest.raises(StaleStoreError, match="re-run the query"):
                reader.read(victim)
            refreshed = reader.records()
            assert {r.device_id for r in refreshed} == {
                f"dev-{i}" for i in range(7) if i != 2
            }
            assert len(refreshed) == len(survivors)
            for ref in refreshed:
                reader.read(ref)  # every post-reload ref resolves
        finally:
            reader.close()

    def test_vanished_segment_without_compaction(self, tmp_path):
        """A segment file deleted out from under the store (no manifest
        change) raises instead of silently serving nothing."""
        path = tmp_path / "s"
        segments = _build_plain(path, n=40)
        reader = TrajectoryStore(path)
        try:
            ref = next(
                r for r in reader.records() if r.segment == segments[0]
            )
            (path / segments[0]).unlink()
            with pytest.raises(StaleStoreError):
                reader.read(ref)
        finally:
            reader.close()


class TestScaleSmokeCLI:
    def test_scale_smoke_passes_on_a_small_store(self, tmp_path, capsys):
        assert (
            storage_main(
                [
                    "scale-smoke",
                    str(tmp_path / "scale"),
                    "--records",
                    "1200",
                    "--devices",
                    "24",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "PASS" in out
