"""Fleet engine tests: determinism, bounded-memory policies, sharding.

The engine's contract is that multiplexing never changes compression
output: every device's trajectory must equal the one produced by running
that device's fixes through its own compressor sequentially, regardless of
how the interleaved stream is batched, which entry point is used, or how
many worker processes shard the fleet.
"""

import functools

import pytest

from repro.compression import BQSCompressor, FastBQSCompressor
from repro.engine import (
    BatchIngestError,
    SanitizePolicy,
    ShardedStreamEngine,
    StreamEngine,
    fleet_fixes,
    inject_disorder,
    iter_fix_batches,
    shard_of,
)


def _factory(device_id):
    return BQSCompressor(10.0)


def _fast_factory(epsilon, device_id):
    """Module-level (and partial-friendly): picklable for sharded workers."""
    return FastBQSCompressor(epsilon)


def _sequential_reference(ids, cols, make=_factory):
    per_device = {}
    for i, device_id in enumerate(ids):
        per_device.setdefault(device_id, ([], [], []))
        ts, xs, ys = per_device[device_id]
        ts.append(cols.ts[i])
        xs.append(cols.xs[i])
        ys.append(cols.ys[i])
    reference = {}
    for device_id, (ts, xs, ys) in per_device.items():
        compressor = make(device_id)
        compressor.push_xyt(ts, xs, ys)
        reference[device_id] = compressor.finish().key_points
    return reference


@pytest.fixture(scope="module")
def fleet():
    return fleet_fixes(30, 200, seed=5)


class TestSimulate:
    def test_deterministic_and_interleaved(self):
        ids_a, cols_a = fleet_fixes(8, 50, seed=2)
        ids_b, cols_b = fleet_fixes(8, 50, seed=2)
        _, cols_c = fleet_fixes(8, 50, seed=3)
        assert ids_a == ids_b and cols_a == cols_b
        assert cols_a != cols_c  # a different seed moves the fleet
        assert len(ids_a) == 8 * 50
        # Interleaved: consecutive fixes belong to different devices.
        assert ids_a[0] != ids_a[1]
        # Globally non-decreasing timestamps (shared 1 Hz clock).
        assert list(cols_a.ts) == sorted(cols_a.ts)

    def test_batch_iterator_covers_stream(self, fleet):
        ids, cols = fleet
        seen = 0
        for batch_ids, ts, xs, ys in iter_fix_batches(ids, cols, 999):
            assert len(batch_ids) == len(ts) == len(xs) == len(ys)
            seen += len(batch_ids)
        assert seen == len(ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            fleet_fixes(0, 10)
        with pytest.raises(ValueError):
            fleet_fixes(3, 0)
        ids, cols = fleet_fixes(2, 5)
        with pytest.raises(ValueError):
            list(iter_fix_batches(ids, cols, 0))


class TestStreamEngine:
    def test_matches_sequential_per_device_run(self, fleet):
        ids, cols = fleet
        reference = _sequential_reference(ids, cols)
        engine = StreamEngine(_factory)
        for batch in iter_fix_batches(ids, cols, 701):
            engine.push_columns(*batch)
        results = engine.finish_all()
        assert set(results) == set(reference)
        for device_id, expected in reference.items():
            assert len(results[device_id]) == 1
            assert results[device_id][0].key_points == expected, device_id
        assert engine.total_fixes == len(ids)
        assert engine.sealed_trajectories == len(reference)

    def test_batching_invariance(self, fleet):
        """One giant batch, odd chunks, and tuple-based push_batch agree."""
        ids, cols = fleet
        one = StreamEngine(_factory)
        one.push_columns(ids, cols.ts, cols.xs, cols.ys)
        res_one = one.finish_all()

        tup = StreamEngine(_factory)
        fixes = list(zip(ids, cols.ts, cols.xs, cols.ys))
        for start in range(0, len(fixes), 333):
            tup.push_batch(fixes[start:start + 333])
        res_tup = tup.finish_all()

        fix_by_fix = StreamEngine(_factory)
        for device_id, t, x, y in fixes[:600]:
            fix_by_fix.push_fix(device_id, t, x, y)

        assert {d: v[0].key_points for d, v in res_one.items()} == {
            d: v[0].key_points for d, v in res_tup.items()
        }
        assert fix_by_fix.total_fixes == 600

    def test_max_devices_lru_eviction(self, fleet):
        ids, cols = fleet
        engine = StreamEngine(_factory, max_devices=7)
        for batch in iter_fix_batches(ids, cols, 500):
            engine.push_columns(*batch)
        assert engine.active_devices <= 7
        assert engine.evictions > 0
        results = engine.finish_all()
        # Every sealed segment is still a valid error-bounded trajectory.
        total = sum(len(v) for v in results.values())
        assert total == engine.sealed_trajectories
        assert total > len(set(ids))  # eviction split streams

    def test_idle_timeout_eviction(self):
        engine = StreamEngine(_factory, idle_timeout=50.0)
        # Device a reports continuously; device b goes quiet at t=10.
        engine.push_batch([("a", float(t), float(t), 0.0) for t in range(10)])
        engine.push_batch([("b", float(t), 0.0, float(t)) for t in range(10)])
        assert engine.active_devices == 2
        engine.push_batch([("a", 100.0, 100.0, 0.0)])
        assert engine.active_devices == 1
        assert engine.evictions == 1
        assert "b" in engine.results  # sealed trajectory delivered

    def test_on_finish_callback_without_collect(self):
        sealed = []
        engine = StreamEngine(
            _factory,
            collect=False,
            on_finish=lambda device_id, traj: sealed.append((device_id, len(traj))),
        )
        engine.push_batch([("x", 0.0, 0.0, 0.0), ("x", 1.0, 5.0, 0.0)])
        results = engine.finish_all()
        assert results == {}
        assert sealed == [("x", 2)]

    def test_finish_device_and_unknown_device(self):
        engine = StreamEngine(_factory)
        engine.push_fix("a", 0.0, 0.0, 0.0)
        trajectory = engine.finish_device("a")
        assert len(trajectory) == 1
        with pytest.raises(KeyError):
            engine.finish_device("a")

    def test_column_length_validation(self):
        engine = StreamEngine(_factory)
        with pytest.raises(ValueError, match="length mismatch"):
            engine.push_columns(["a"], [0.0, 1.0], [0.0], [0.0])

    def test_zero_consuming_batch_does_not_refresh_lru(self):
        """A device spamming invalid fixes must not promote itself over
        healthy quiet devices in the eviction order."""
        engine = StreamEngine(_factory, max_devices=2)
        engine.push_batch([("a", 10.0, 0.0, 0.0), ("b", 10.0, 0.0, 0.0)])
        with pytest.raises(ValueError):
            engine.push_batch([("a", 1.0, 0.0, 0.0)])  # consumes nothing
        assert engine.device_ids() == ["a", "b"]  # "a" stays least recent
        engine.push_batch([("c", 11.0, 0.0, 0.0)])  # cap evicts "a"
        assert engine.device_ids() == ["b", "c"]
        assert engine.evictions == 1

    def test_mid_batch_error_keeps_accounting_consistent(self):
        """A device whose columns fail mid-ingest keeps its valid prefix,
        and the engine's clock/counters match what was actually consumed —
        so eviction policies keep working after the error."""
        engine = StreamEngine(_factory, idle_timeout=50.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            engine.push_batch(
                [
                    ("a", 0.0, 0.0, 0.0),
                    ("a", 1.0, 1.0, 0.0),
                    ("b", 10.0, 0.0, 0.0),
                    ("b", 5.0, 0.0, 0.0),  # travels back in time
                ]
            )
        assert engine.total_fixes == 3  # a: 2, b: valid prefix of 1
        assert engine.clock == 10.0
        # Device b's recency reflects its consumed prefix: it is NOT
        # spuriously idle-evicted by the next nearby batch...
        engine.push_batch([("a", 30.0, 2.0, 0.0)])
        assert engine.active_devices == 2
        # ...but a genuinely idle device still ages out.
        engine.push_batch([("a", 100.0, 3.0, 0.0)])
        assert engine.active_devices == 1
        assert engine.evictions == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            StreamEngine(_factory, max_devices=0)
        with pytest.raises(ValueError):
            StreamEngine(_factory, idle_timeout=0.0)

    def test_mid_batch_error_reports_consumption(self):
        """The trusted path's mid-batch failure is a BatchIngestError (a
        ValueError, so existing handlers keep working) that names the
        device, the failing fix index within the device's columns, and
        how much of the batch WAS consumed — the caller's resume point."""
        engine = StreamEngine(_factory)
        with pytest.raises(BatchIngestError) as info:
            engine.push_batch(
                [
                    ("a", 0.0, 0.0, 0.0),
                    ("a", 1.0, 1.0, 0.0),
                    ("b", 10.0, 0.0, 0.0),
                    ("b", 5.0, 0.0, 0.0),
                ]
            )
        err = info.value
        assert isinstance(err, ValueError)
        assert err.device_id == "b"
        assert err.device_consumed == 1  # b's valid prefix
        assert err.consumed == 3  # a: 2, b: 1 — matches engine.total_fixes
        assert engine.total_fixes == 3
        assert "consumed 3 fixes" in str(err)
        assert "'b'" in str(err)


class TestShardedStreamEngine:
    def test_shard_of_is_stable_and_total(self):
        assert shard_of("dev-0001", 4) == shard_of("dev-0001", 4)
        assert {shard_of(f"dev-{i}", 3) for i in range(50)} <= {0, 1, 2}
        assert shard_of(b"raw", 2) in (0, 1)
        assert shard_of(42, 2) in (0, 1)

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_single_process_engine(self, fleet, workers):
        ids, cols = fleet
        factory = functools.partial(_fast_factory, 10.0)
        single = StreamEngine(factory)
        single.push_columns(ids, cols.ts, cols.xs, cols.ys)
        expected = {d: v[0].key_points for d, v in single.finish_all().items()}

        sharded = ShardedStreamEngine(factory, workers=workers)
        try:
            for batch in iter_fix_batches(ids, cols, 777):
                sharded.push_columns(*batch)
            results = sharded.finish_all()
        finally:
            sharded.close()
        assert {d: v[0].key_points for d, v in results.items()} == expected

    def test_push_batch_tuples(self, fleet):
        ids, cols = fleet
        factory = functools.partial(_fast_factory, 10.0)
        with ShardedStreamEngine(factory, workers=2) as sharded:
            n = sharded.push_batch(list(zip(ids, cols.ts, cols.xs, cols.ys)))
            assert n == len(ids)
            results = sharded.finish_all()
        assert len(results) == len(set(ids))

    def test_worker_error_surfaces_at_finish(self):
        factory = functools.partial(_fast_factory, 10.0)
        sharded = ShardedStreamEngine(factory, workers=2)
        try:
            sharded.push_batch([("a", 5.0, 0.0, 0.0), ("a", 1.0, 0.0, 0.0)])
            with pytest.raises(RuntimeError, match="non-decreasing"):
                sharded.finish_all()
        finally:
            sharded.close()

    def test_dead_worker_surfaces_as_runtime_error(self):
        """A worker killed mid-stream must not escape as a raw EOFError,
        and the remaining processes must still be torn down."""
        import os
        import signal
        import time

        factory = functools.partial(_fast_factory, 10.0)
        sharded = ShardedStreamEngine(factory, workers=2)
        sharded.push_batch([("a", 0.0, 0.0, 0.0), ("b", 0.0, 1.0, 1.0)])
        os.kill(sharded._procs[0].pid, signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises(RuntimeError, match="sharded ingestion failed"):
            sharded.finish_all()
        assert sharded._procs == [] and sharded._conns == []

    def test_finish_twice_rejected(self):
        factory = functools.partial(_fast_factory, 10.0)
        sharded = ShardedStreamEngine(factory, workers=1)
        sharded.finish_all()
        with pytest.raises(RuntimeError):
            sharded.finish_all()

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ShardedStreamEngine(functools.partial(_fast_factory, 10.0), workers=0)


class TestEngineCLI:
    def test_main_single_process(self, capsys):
        from repro.engine.__main__ import main

        assert main(["--devices", "5", "--fixes", "40"]) == 0
        out = capsys.readouterr().out
        assert "fixes/s" in out
        assert "200 fixes -> 5 trajectories" in out

    def test_main_sharded(self, capsys):
        from repro.engine.__main__ import main

        assert main(["--devices", "5", "--fixes", "40", "--workers", "2"]) == 0
        assert "trajectories" in capsys.readouterr().out

    def test_main_dirty_check_feed(self, capsys):
        """The CI smoke path: inject known disorder, sanitize, and demand
        the ledger equals the injection ground truth exactly."""
        from repro.engine.__main__ import main

        assert main(
            [
                "--devices", "6", "--fixes", "60", "--dirty",
                "--swaps", "4", "--dups", "3", "--teleports", "2",
                "--gaps", "1", "--check-feed",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "duplicate=3" in out
        assert "out_of_order=4" in out
        assert "teleport=2" in out
        assert "gap=1" in out
        assert "feed report matches injection ground truth" in out

    def test_main_dirty_check_feed_reorder_mode(self, capsys):
        from repro.engine.__main__ import main

        assert main(
            [
                "--devices", "5", "--fixes", "50", "--dirty",
                "--swaps", "5", "--max-lateness", "2.0", "--check-feed",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "reordered 5" in out
        assert "out_of_order" not in out  # repaired, not dropped

    def test_main_dirty_flag_validation(self, capsys):
        from repro.engine.__main__ import main

        with pytest.raises(SystemExit):
            main(["--devices", "5", "--fixes", "40", "--swaps", "3"])
        with pytest.raises(SystemExit):
            main(["--devices", "5", "--fixes", "40", "--check-feed"])
        assert "--dirty" in capsys.readouterr().err

    def test_ingest_csv(self, tmp_path, capsys):
        from repro.engine.__main__ import main

        csv_path = tmp_path / "feed.csv"
        csv_path.write_text(
            "device_id,t,x,y\n"
            "a,0.0,0.0,0.0\n"
            "a,1.0,1.0,0.0\n"
            "a,1.0,9.0,0.0\n"  # duplicate timestamp
            "a,0.5,0.5,0.0\n"  # out of order
            "b,0.0,5.0,5.0\n"
            "b,1.0,6.0,5.0\n"
            "b,5000.0,7.0,5.0\n"  # gap -> split
        )
        assert main(["ingest-csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "7 rows" in out
        assert "3 trajectories" in out  # a, b before gap, b after gap
        assert "duplicate=1" in out and "out_of_order=1" in out
        assert "gap=1" in out

    def test_ingest_csv_to_store(self, tmp_path, capsys):
        from repro.engine.__main__ import main
        from repro.storage import TrajectoryStore

        csv_path = tmp_path / "feed.csv"
        csv_path.write_text(
            "device_id,t,x,y\n"
            + "\n".join(f"a,{i}.0,{i}.0,0.0" for i in range(20))
            + "\n"
        )
        store_dir = tmp_path / "store"
        assert main(
            ["ingest-csv", str(csv_path), "--store", str(store_dir)]
        ) == 0
        with TrajectoryStore(store_dir) as store:
            assert list(store.devices()) == ["a"]
            assert store.record_count == 1

    def test_ingest_csv_malformed_row_fails_loudly(self, tmp_path, capsys):
        from repro.engine.__main__ import main

        csv_path = tmp_path / "feed.csv"
        csv_path.write_text("device_id,t,x,y\na,0.0,0.0,0.0\na,not-a-number,1.0,0.0\n")
        assert main(["ingest-csv", str(csv_path)]) == 1
        err = capsys.readouterr().err
        assert "line 3" in err


class TestSinks:
    """Sealed streams flow through the Sink protocol — eviction included."""

    def test_eviction_cannot_be_dropped(self):
        """The satellite guarantee: with collect off and no callback, a
        sink still receives every LRU- and idle-evicted trajectory."""
        from repro.engine import ListSink

        sink = ListSink()
        engine = StreamEngine(
            _factory, collect=False, sink=sink, max_devices=2
        )
        for i in range(5):
            engine.push_fix(f"d{i}", float(i), float(i), 0.0)
        assert engine.evictions == 3
        assert engine.results == {}  # engine retains nothing itself
        assert sorted(sink.results) == ["d0", "d1", "d2"]  # evicted, delivered
        engine.finish_all()
        assert sorted(sink.results) == [f"d{i}" for i in range(5)]
        assert len(sink) == 5

    def test_idle_eviction_reaches_sink(self):
        from repro.engine import ListSink

        sink = ListSink()
        engine = StreamEngine(
            _factory, collect=False, sink=sink, idle_timeout=10.0
        )
        engine.push_fix("quiet", 0.0, 0.0, 0.0)
        engine.push_fix("chatty", 5.0, 1.0, 1.0)
        engine.push_fix("chatty", 100.0, 2.0, 2.0)  # clock jumps past horizon
        assert engine.evictions == 1
        assert list(sink.results) == ["quiet"]

    def test_all_delivery_paths_agree(self, fleet):
        """collect ledger, on_finish callback and sink see identical output."""
        from repro.engine import ListSink

        ids, cols = fleet
        sink = ListSink()
        calls = []
        engine = StreamEngine(
            _factory,
            sink=sink,
            on_finish=lambda d, t: calls.append((d, t)),
        )
        for batch in iter_fix_batches(ids, cols, 512):
            engine.push_columns(*batch)
        results = engine.finish_all()
        assert sink.results == results
        assert dict((d, [t]) for d, t in calls) == results

    def test_callback_sink_adapts_plain_function(self):
        from repro.engine import CallbackSink

        seen = []
        sink = CallbackSink(lambda d, t: seen.append(d))
        engine = StreamEngine(_factory, collect=False, sink=sink)
        engine.push_fix("x", 0.0, 0.0, 0.0)
        engine.finish_all()
        sink.close()
        assert seen == ["x"]

    def test_list_sink_shares_caller_dict(self):
        from repro.engine import ListSink

        target = {}
        sink = ListSink(target)
        engine = StreamEngine(_factory, collect=False, sink=sink)
        engine.push_fix("x", 0.0, 0.0, 0.0)
        engine.finish_all()
        assert list(target) == ["x"]

    def test_sink_protocol_runtime_checkable(self):
        from repro.engine import CallbackSink, ListSink, Sink

        assert isinstance(ListSink(), Sink)
        assert isinstance(CallbackSink(lambda d, t: None), Sink)


class TestSanitizedEngine:
    """The policy path: FeedSanitizer in front of every compressor."""

    def test_clean_input_output_matches_trusted_path(self, fleet):
        """Transparency: on clean input a sanitizing engine produces the
        same trajectories as the trusted path (the bench pins the digest
        version of this fleet-wide)."""
        ids, cols = fleet
        trusted = StreamEngine(_factory)
        trusted.push_columns(ids, cols.ts, cols.xs, cols.ys)
        expected = {d: [t.key_points for t in v] for d, v in trusted.finish_all().items()}

        policy = SanitizePolicy(max_speed_mps=50.0, gap_seconds=600.0)
        sanitized = StreamEngine(_factory, policy=policy)
        for batch in iter_fix_batches(ids, cols, 701):
            sanitized.push_columns(*batch)
        results = sanitized.finish_all()
        assert {d: [t.key_points for t in v] for d, v in results.items()} == expected
        report = sanitized.feed_report()
        assert report.fixes_in == report.fixes_out == len(ids)
        assert report.dropped == {} and report.splits == {}

    def test_gap_split_produces_separate_trajectories(self):
        policy = SanitizePolicy(gap_seconds=60.0)
        engine = StreamEngine(_factory, policy=policy)
        engine.push_batch(
            [("a", 0.0, 0.0, 0.0), ("a", 1.0, 1.0, 0.0)]
            + [("a", 5000.0, 50.0, 0.0), ("a", 5001.0, 51.0, 0.0)]
        )
        results = engine.finish_all()
        assert len(results["a"]) == 2
        assert [len(t) for t in results["a"]] == [2, 2]
        assert engine.sealed_trajectories == 2
        report = engine.feed_report()
        assert report.splits == {"gap": 1}
        assert report.reconciles

    def test_dirty_stream_drops_are_ledgered(self):
        ids, cols = fleet_fixes(6, 60, seed=17)
        out_ids, ts, xs, ys, summary = inject_disorder(
            ids, cols.ts, cols.xs, cols.ys, swaps=4, dups=3, teleports=2, gaps=1
        )
        policy = SanitizePolicy(max_speed_mps=50.0, gap_seconds=60.0)
        engine = StreamEngine(_factory, policy=policy)
        engine.push_columns(out_ids, ts, xs, ys)
        results = engine.finish_all()
        report = engine.feed_report()
        assert report.reconciles
        assert report.dropped == {
            "out_of_order": summary.swaps,
            "duplicate": summary.dups,
            "teleport": summary.teleports,
        }
        assert report.splits == {"gap": summary.gaps}
        # Every sealed trajectory is non-empty and per-device reports
        # roll up to the fleet report.
        assert all(len(t) > 0 for v in results.values() for t in v)
        per_device = engine.device_feed_reports()
        assert sum(r.fixes_in for r in per_device.values()) == report.fixes_in
        assert sum(r.dropped_total for r in per_device.values()) == report.dropped_total

    def test_reorder_mode_preserves_output_across_eviction(self):
        """A lateness window survives engine eviction: the sanitizer's
        buffer is flushed into the stream before the device is sealed, so
        no fix is silently lost."""
        policy = SanitizePolicy(max_lateness=5.0)
        engine = StreamEngine(_factory, policy=policy, max_devices=2)
        engine.push_batch([("a", 0.0, 0.0, 0.0), ("a", 1.0, 1.0, 0.0)])
        engine.push_batch([("b", 2.0, 0.0, 0.0), ("c", 3.0, 0.0, 0.0)])
        engine.finish_all()
        report = engine.feed_report()
        assert report.reconciles
        assert report.buffered == 0
        assert report.fixes_out == 4  # every buffered fix reached a compressor

    def test_empty_stream_after_drops_emits_nothing(self):
        """A device whose every fix is dropped must not seal an empty
        trajectory."""
        policy = SanitizePolicy(max_speed_mps=10.0)
        engine = StreamEngine(_factory, policy=policy)
        # One good fix, then only duplicates of it.
        engine.push_batch(
            [("a", 0.0, 0.0, 0.0), ("b", 0.0, 0.0, 0.0), ("b", 0.0, 0.0, 0.0)]
        )
        results = engine.finish_all()
        assert len(results["a"]) == 1 and len(results["b"]) == 1
        # Now a device with zero surviving fixes: all non-finite.
        engine2 = StreamEngine(_factory, policy=policy)
        engine2.push_batch([("z", float("nan"), 0.0, 0.0)])
        assert engine2.finish_all() == {}
        assert engine2.sealed_trajectories == 0
        assert engine2.feed_report().dropped == {"non_finite": 1}

    def test_sharded_policy_transport(self):
        """The policy ships to workers; sharded output and ledger match
        the single-process sanitizing engine."""
        ids, cols = fleet_fixes(8, 50, seed=23)
        out_ids, ts, xs, ys, summary = inject_disorder(
            ids, cols.ts, cols.xs, cols.ys, swaps=3, dups=3, teleports=2, gaps=1
        )
        policy = SanitizePolicy(max_speed_mps=50.0, gap_seconds=60.0)
        factory = functools.partial(_fast_factory, 10.0)

        single = StreamEngine(factory, policy=policy)
        single.push_columns(out_ids, ts, xs, ys)
        expected = {
            d: [t.key_points for t in v] for d, v in single.finish_all().items()
        }
        expected_report = single.feed_report()

        with ShardedStreamEngine(factory, workers=2, policy=policy) as sharded:
            sharded.push_columns(out_ids, ts, xs, ys)
            results = sharded.finish_all()
            report = sharded.feed_report()
        assert {
            d: [t.key_points for t in v] for d, v in results.items()
        } == expected
        assert report.to_json() == expected_report.to_json()
        assert report.reconciles
