"""Geometry kernel tests: distances, hulls, wedge/box bound helpers."""

import math
import random

import pytest

from repro.geometry import (
    convex_hull,
    max_distance_to_line_origin,
    min_distance_on_segment_to_line_origin,
    point_in_convex_polygon,
    point_line_distance,
    point_line_distance_origin,
    point_segment_distance,
    wedge_box_polygon,
)
from repro.geometry.planar import angle_of, cross


class TestPointLineDistance:
    def test_horizontal_line(self):
        assert point_line_distance((0.0, 3.0), (-1.0, 0.0), (1.0, 0.0)) == pytest.approx(3.0)

    def test_point_on_line(self):
        assert point_line_distance((5.0, 5.0), (0.0, 0.0), (1.0, 1.0)) == pytest.approx(0.0)

    def test_degenerate_line_is_point_distance(self):
        assert point_line_distance((3.0, 4.0), (0.0, 0.0), (0.0, 0.0)) == pytest.approx(5.0)

    def test_origin_variant_matches_general(self):
        rng = random.Random(1)
        for _ in range(100):
            p = (rng.uniform(-10, 10), rng.uniform(-10, 10))
            d = (rng.uniform(-10, 10), rng.uniform(-10, 10))
            assert point_line_distance_origin(p, d) == pytest.approx(
                point_line_distance(p, (0.0, 0.0), d), abs=1e-9
            )


class TestPointSegmentDistance:
    def test_projection_inside(self):
        assert point_segment_distance((0.5, 2.0), (0.0, 0.0), (1.0, 0.0)) == pytest.approx(2.0)

    def test_clamped_to_endpoint(self):
        assert point_segment_distance((2.0, 0.0), (0.0, 0.0), (1.0, 0.0)) == pytest.approx(1.0)

    def test_never_below_line_distance(self):
        rng = random.Random(2)
        for _ in range(200):
            p = (rng.uniform(-5, 5), rng.uniform(-5, 5))
            a = (rng.uniform(-5, 5), rng.uniform(-5, 5))
            b = (rng.uniform(-5, 5), rng.uniform(-5, 5))
            assert point_segment_distance(p, a, b) >= point_line_distance(p, a, b) - 1e-9


class TestConvexHull:
    def test_square_with_interior_points(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5), (0.2, 0.8)]
        hull = convex_hull(pts)
        assert sorted(hull) == [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)]

    def test_hull_contains_all_points(self):
        rng = random.Random(3)
        pts = [(rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(200)]
        hull = convex_hull(pts)
        for p in pts:
            assert point_in_convex_polygon(p, hull)

    def test_hull_is_counter_clockwise(self):
        rng = random.Random(4)
        pts = [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(50)]
        hull = convex_hull(pts)
        n = len(hull)
        for i in range(n):
            o, a, b = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
            assert cross((a[0] - o[0], a[1] - o[1]), (b[0] - o[0], b[1] - o[1])) > 0

    def test_collinear_and_tiny_inputs(self):
        assert convex_hull([(0, 0)]) == [(0.0, 0.0)]
        assert convex_hull([(0, 0), (1, 1), (2, 2)]) == [(0.0, 0.0), (2.0, 2.0)]


class TestWedgeBoxHelpers:
    def test_wedge_box_polygon_contains_conforming_points(self):
        """Points inside both box and wedge stay inside the clipped polygon."""
        rng = random.Random(5)
        box = (1.0, 0.5, 6.0, 4.0)
        for _ in range(20):
            pts = [
                (rng.uniform(box[0], box[2]), rng.uniform(box[1], box[3]))
                for _ in range(30)
            ]
            angles = [angle_of(p) for p in pts]
            lo, hi = min(angles), max(angles)
            poly = wedge_box_polygon(*box, lo, hi)
            for p in pts:
                assert point_in_convex_polygon(p, poly)

    def test_polygon_bound_dominates_member_points(self):
        """Max vertex distance upper-bounds every member point's distance."""
        rng = random.Random(6)
        for _ in range(50):
            pts = [(rng.uniform(0.1, 9), rng.uniform(0.1, 9)) for _ in range(25)]
            min_x = min(p[0] for p in pts)
            max_x = max(p[0] for p in pts)
            min_y = min(p[1] for p in pts)
            max_y = max(p[1] for p in pts)
            angles = [angle_of(p) for p in pts]
            poly = wedge_box_polygon(min_x, min_y, max_x, max_y, min(angles), max(angles))
            direction = (rng.uniform(-1, 1), rng.uniform(-1, 1))
            bound = max_distance_to_line_origin(poly, direction)
            actual = max_distance_to_line_origin(pts, direction)
            assert bound >= actual - 1e-9

    def test_min_distance_on_segment_crossing_line_is_zero(self):
        assert min_distance_on_segment_to_line_origin(
            (1.0, -1.0), (1.0, 1.0), (1.0, 0.0)
        ) == pytest.approx(0.0)

    def test_min_distance_on_parallel_segment(self):
        assert min_distance_on_segment_to_line_origin(
            (0.0, 2.0), (5.0, 2.0), (1.0, 0.0)
        ) == pytest.approx(2.0)

    def test_min_distance_degenerate_direction(self):
        assert min_distance_on_segment_to_line_origin(
            (3.0, 4.0), (6.0, 8.0), (0.0, 0.0)
        ) == pytest.approx(5.0)


class TestProjectionRoundTrip:
    def test_utm_round_trip_is_submillimetre(self):
        from repro.model import UTMProjection

        proj = UTMProjection.for_coordinate(-37.8136, 144.9631)  # Melbourne
        rng = random.Random(7)
        for _ in range(50):
            lat = -37.8136 + rng.uniform(-0.05, 0.05)
            lon = 144.9631 + rng.uniform(-0.05, 0.05)
            x, y = proj.forward(lat, lon)
            lat2, lon2 = proj.inverse(x, y)
            assert lat2 == pytest.approx(lat, abs=1e-8)
            assert lon2 == pytest.approx(lon, abs=1e-8)

    def test_local_tangent_round_trip(self):
        from repro.model import LocalTangentProjection

        proj = LocalTangentProjection(48.8566, 2.3522)  # Paris
        x, y = proj.forward(48.8600, 2.3600)
        lat, lon = proj.inverse(x, y)
        assert lat == pytest.approx(48.8600, abs=1e-9)
        assert lon == pytest.approx(2.3600, abs=1e-9)

    def test_utm_distances_match_haversine(self):
        from repro.model import UTMProjection, haversine_m

        proj = UTMProjection.for_coordinate(40.7128, -74.0060)  # New York
        a = (40.7128, -74.0060)
        b = (40.7300, -73.9900)
        xa, ya = proj.forward(*a)
        xb, yb = proj.forward(*b)
        planar = math.hypot(xb - xa, yb - ya)
        great_circle = haversine_m(*a, *b)
        # UTM scale distortion is bounded by ~0.1% within a zone.
        assert planar == pytest.approx(great_circle, rel=2e-3)


class TestSegmentRectDistance:
    """The range-query workhorse: segment vs axis-aligned rectangle."""

    def test_segment_inside_and_crossing(self):
        from repro.geometry.planar import segment_rect_distance

        assert segment_rect_distance((1, 1), (2, 2), 0, 0, 3, 3) == 0.0
        # endpoints outside, segment pierces the rect
        assert segment_rect_distance((-5, 1), (5, 1), 0, 0, 3, 3) == 0.0
        # touching a corner counts as contact
        assert segment_rect_distance((3, 3), (5, 5), 0, 0, 3, 3) == 0.0

    def test_separated_distances(self):
        from repro.geometry.planar import segment_rect_distance

        # parallel to the right edge, 2 m away
        assert segment_rect_distance((5, 0), (5, 3), 0, 0, 3, 3) == pytest.approx(2.0)
        # diagonal to the corner
        d = segment_rect_distance((4, 4), (6, 6), 0, 0, 3, 3)
        assert d == pytest.approx(math.sqrt(2.0))
        # degenerate (point) segment
        assert segment_rect_distance((0, 7), (0, 7), 0, 0, 3, 3) == pytest.approx(4.0)

    def test_matches_point_sampling(self):
        """Brute-force sampling along segment and rect never beats it."""
        import random

        from repro.geometry.planar import (
            point_segment_distance,
            segment_rect_distance,
        )

        rng = random.Random(3)
        for _ in range(200):
            a = (rng.uniform(-10, 10), rng.uniform(-10, 10))
            b = (rng.uniform(-10, 10), rng.uniform(-10, 10))
            x0, y0 = rng.uniform(-10, 0), rng.uniform(-10, 0)
            x1, y1 = x0 + rng.uniform(0.1, 8), y0 + rng.uniform(0.1, 8)
            d = segment_rect_distance(a, b, x0, y0, x1, y1)
            corners = [(x0, y0), (x1, y0), (x1, y1), (x0, y1)]
            edges = list(zip(corners, corners[1:] + corners[:1]))
            sampled = min(
                point_segment_distance(
                    (
                        a[0] + (b[0] - a[0]) * k / 60.0,
                        a[1] + (b[1] - a[1]) * k / 60.0,
                    ),
                    p,
                    q,
                )
                for k in range(61)
                for p, q in edges
            )
            inside = any(
                x0 <= a[0] + (b[0] - a[0]) * k / 60.0 <= x1
                and y0 <= a[1] + (b[1] - a[1]) * k / 60.0 <= y1
                for k in range(61)
            )
            if inside:
                assert d <= sampled + 1e-9
                # sampling hit the interior: true distance is 0
                assert d == 0.0
            else:
                assert d <= sampled + 1e-9

    def test_segments_intersect_cases(self):
        from repro.geometry.planar import segments_intersect

        assert segments_intersect((0, 0), (4, 0), (2, -1), (2, 1))
        assert segments_intersect((0, 0), (1, 0), (1, 0), (1, 1))  # touch
        assert segments_intersect((0, 0), (4, 0), (1, 0), (3, 0))  # collinear overlap
        assert not segments_intersect((0, 0), (1, 0), (3, 0), (4, 0))  # collinear gap
        assert not segments_intersect((0, 0), (1, 0), (5, -1), (5, 1))
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (2, 1))  # beyond end
